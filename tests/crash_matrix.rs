//! The deterministic crash-point matrix (README "Durability & crash
//! recovery", DESIGN.md §7).
//!
//! A scripted market session is first run to completion against a durable
//! ledger, checkpointing every buyer balance (bit-exact) after every
//! committed operation. The matrix then re-runs the same session once per
//! byte of the resulting write-ahead log, arming the fault layer's crash
//! budget so the simulated process dies after exactly that many durable
//! bytes — mid-magic, mid-header, mid-payload, and on every record
//! boundary. Each crashed market is recovered and must match the
//! checkpoint of its last fully-durable record: balances and coverage to
//! the last bit, re-bought history free (no arbitrage through a crash),
//! and the database probe query priced identically.
//!
//! Record-granular failpoints (`LEDGER_APPEND`, `LEDGER_SNAPSHOT`) cover
//! the non-byte crash shapes: an append aborted before any write must be
//! atomic (no memory/disk divergence), and a crash during the snapshot
//! cadence must leave a market that recovers and compacts later.
//!
//! Every test holds [`fault::serialize_tests`]: the fault registry and
//! crash budget are process-global.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::core::fault;
use qirana::core::ledger::scan_log;
use qirana::sqlengine::{CellWrite, ColumnDef, DataType, TableSchema};
use qirana::{
    BrokerError, Database, LedgerConfig, LedgerError, PricingFunction, Qirana, QiranaConfig,
    SupportConfig, Value,
};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn db() -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Str),
                ColumnDef::new("v", DataType::Int),
            ],
            &["id"],
        ),
        (0..10i64)
            .map(|i| {
                vec![
                    i.into(),
                    ["a", "b", "c"][i as usize % 3].into(),
                    (i * 7 % 13).into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    db
}

fn cfg(function: PricingFunction) -> QiranaConfig {
    QiranaConfig {
        function,
        support: SupportConfig {
            size: 40,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Priced against the stored rows, so it witnesses replayed updates too.
const PROBE: &str = "SELECT sum(v) FROM T";

/// One scripted market operation; each committed op appends one record.
enum Op {
    Buy(&'static str, &'static str),
    Update(&'static str),
    Writes(&'static [(usize, usize, usize, i64)]),
}

fn apply_op(broker: &mut Qirana, op: &Op) -> Result<(), BrokerError> {
    match op {
        Op::Buy(buyer, sql) => broker.buy(buyer, sql).map(|_| ()),
        Op::Update(sql) => broker.commit_update(sql).map(|_| ()),
        Op::Writes(cells) => {
            let writes: Vec<CellWrite> = cells
                .iter()
                .map(|&(table, row, col, v)| CellWrite {
                    table,
                    row,
                    col,
                    value: Value::Int(v),
                })
                .collect();
            broker.commit_writes(&writes)
        }
    }
}

/// The always-run session: both pricing-relevant event kinds around buys.
const SESSION: [Op; 5] = [
    Op::Buy("alice", "SELECT v FROM T WHERE v > 4"),
    Op::Buy("bob", "SELECT grp, count(*) FROM T GROUP BY grp"),
    Op::Update("UPDATE T SET v = 11 WHERE id = 3"),
    Op::Buy("alice", "SELECT sum(v) FROM T"),
    Op::Writes(&[(0, 1, 2, 42)]),
];

/// The release-mode sweep: longer, three buyers, repeated queries.
const LONG_SESSION: [Op; 9] = [
    Op::Buy("alice", "SELECT v FROM T WHERE v > 4"),
    Op::Buy("bob", "SELECT grp, count(*) FROM T GROUP BY grp"),
    Op::Buy("carol", "SELECT sum(v) FROM T"),
    Op::Update("UPDATE T SET v = 11 WHERE id = 3"),
    Op::Buy("alice", "SELECT sum(v) FROM T"),
    Op::Writes(&[(0, 1, 2, 42), (0, 4, 1, 0)]),
    Op::Buy("carol", "SELECT grp FROM T WHERE v <= 6"),
    Op::Buy("bob", "SELECT v FROM T WHERE v > 4"),
    Op::Update("UPDATE T SET grp = 'z' WHERE id = 7"),
];

/// Every buyer's `(paid, coverage)` as raw bits plus the probe quote:
/// crash recovery is held to bitwise equality, not tolerance.
type Checkpoint = (BTreeMap<String, (u64, u64)>, u64);

fn checkpoint(broker: &mut Qirana) -> Checkpoint {
    let state = broker
        .buyer_names()
        .into_iter()
        .map(|name| {
            let paid = broker.buyer_paid(&name).unwrap().to_bits();
            let cov = broker.buyer_coverage(&name).unwrap().to_bits();
            (name, (paid, cov))
        })
        .collect();
    let probe = broker.quote(PROBE).unwrap().to_bits();
    (state, probe)
}

fn matrix_base(tag: &str) -> PathBuf {
    let base = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(tag);
    fs::remove_dir_all(&base).ok();
    fs::create_dir_all(&base).unwrap();
    base
}

/// Runs the never-crashed session in `dir` (pure WAL, no snapshots) and
/// returns one checkpoint per committed record, index 0 = genesis.
fn control_run(function: PricingFunction, session: &[Op], dir: &Path) -> Vec<Checkpoint> {
    let ledger_cfg = LedgerConfig::new(dir).with_snapshot_every(0);
    let mut broker = Qirana::open(db(), cfg(function), ledger_cfg).unwrap();
    let mut checkpoints = vec![checkpoint(&mut broker)];
    for op in session {
        apply_op(&mut broker, op).unwrap();
        checkpoints.push(checkpoint(&mut broker));
    }
    checkpoints
}

/// The matrix proper: kill the session once per durable byte, recover,
/// and hold the rebuilt market to its checkpoint.
fn run_matrix(function: PricingFunction, session: &[Op], tag: &str) {
    let base = matrix_base(tag);
    let control_dir = base.join("control");
    let checkpoints = control_run(function, session, &control_dir);
    let control_log = fs::read(LedgerConfig::new(&control_dir).log_path()).unwrap();
    let control_scan = scan_log(&control_log).unwrap();
    assert_eq!(
        control_scan.records.len(),
        session.len(),
        "each op must commit exactly one record"
    );

    let crash_dir = base.join("crashed");
    let crash_ledger_cfg = || LedgerConfig::new(&crash_dir).with_snapshot_every(0);
    let mut boundaries_seen = vec![false; session.len()];
    for c in 0..control_log.len() as u64 {
        fs::remove_dir_all(&crash_dir).ok();
        fault::arm_ledger_crash(c);
        let outcome =
            Qirana::open(db(), cfg(function), crash_ledger_cfg()).and_then(|mut broker| {
                for op in session {
                    apply_op(&mut broker, op)?;
                }
                Ok(())
            });
        fault::disarm_ledger_crash();
        let err = outcome.expect_err("the crash budget must kill the session");
        assert!(
            matches!(err, BrokerError::Ledger(LedgerError::Crashed { .. })),
            "byte {c}: expected LedgerError::Crashed, got {err}"
        );

        // Exactly `c` bytes reached the disk — the budget is the file.
        let crashed = fs::read(LedgerConfig::new(&crash_dir).log_path()).unwrap();
        assert_eq!(
            crashed.len() as u64,
            c,
            "durable bytes must equal the budget"
        );
        let k = scan_log(&crashed).unwrap().records.len();
        boundaries_seen[k.min(session.len() - 1)] = true;

        let mut recovered =
            Qirana::recover(db(), cfg(function), LedgerConfig::new(&crash_dir)).unwrap();
        let got = checkpoint(&mut recovered);
        assert_eq!(
            got, checkpoints[k],
            "byte {c}: recovered market diverges from checkpoint {k} ({function:?})"
        );
        // No arbitrage through a crash: a recovered buyer still owns their
        // history, so re-buying it is free — for purchases made since the
        // last committed data mutation. (An UPDATE legitimately re-prices
        // owned queries: the data changed, the answer may reveal new
        // information.)
        let unmutated_from = session[..k]
            .iter()
            .rposition(|op| !matches!(op, Op::Buy(..)))
            .map_or(0, |i| i + 1);
        for op in &session[unmutated_from..k] {
            if let Op::Buy(buyer, sql) = op {
                let p = recovered.buy(buyer, sql).unwrap();
                assert_eq!(
                    p.price, 0.0,
                    "byte {c}: {buyer} re-charged for owned history {sql:?}"
                );
            }
        }
    }
    assert!(
        boundaries_seen.iter().all(|&s| s),
        "the sweep must exercise every record boundary"
    );

    // The exact-budget edge: a budget of the full log length lets every
    // append through and the completed market recovers to the final
    // checkpoint.
    fs::remove_dir_all(&crash_dir).ok();
    fault::arm_ledger_crash(control_log.len() as u64);
    {
        let mut broker = Qirana::open(db(), cfg(function), crash_ledger_cfg()).unwrap();
        for op in session {
            apply_op(&mut broker, op).unwrap();
        }
    }
    fault::disarm_ledger_crash();
    let mut recovered =
        Qirana::recover(db(), cfg(function), LedgerConfig::new(&crash_dir)).unwrap();
    assert_eq!(checkpoint(&mut recovered), checkpoints[session.len()]);

    fs::remove_dir_all(&base).ok();
}

#[test]
fn crash_at_every_byte_recovers_to_a_checkpoint() {
    let _guard = fault::serialize_tests();
    fault::reset();
    run_matrix(
        PricingFunction::WeightedCoverage,
        &SESSION,
        "crash-matrix-coverage",
    );
    fault::reset();
}

/// The full sweep over the longer session and the entropy family — run
/// release-mode in CI: `cargo test --release --test crash_matrix -- --ignored`.
#[test]
#[ignore = "full release-mode sweep; CI runs it with --ignored"]
fn crash_matrix_full_sweep_entropy_family() {
    let _guard = fault::serialize_tests();
    fault::reset();
    run_matrix(
        PricingFunction::ShannonEntropy,
        &LONG_SESSION,
        "crash-matrix-entropy",
    );
    run_matrix(
        PricingFunction::WeightedCoverage,
        &LONG_SESSION,
        "crash-matrix-coverage-long",
    );
    fault::reset();
}

// ---------------------------------------------------------------------------
// Record-granular crash shapes
// ---------------------------------------------------------------------------

/// An append aborted *before* any byte is written (the failpoint fires at
/// the top of `Ledger::append`) must be perfectly atomic: the operation
/// reports the injected fault, memory and disk both exclude it, and the
/// session — not poisoned, nothing torn — simply continues.
#[test]
fn aborted_append_is_atomic_and_the_session_continues() {
    let _guard = fault::serialize_tests();
    fault::reset();
    let base = matrix_base("append-abort");

    // Control: the same session with the third op (the UPDATE) left out.
    let control_dir = base.join("control");
    let skipped: Vec<&Op> = SESSION
        .iter()
        .enumerate()
        .filter_map(|(i, op)| (i != 2).then_some(op))
        .collect();
    let mut control = Qirana::open(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&control_dir).with_snapshot_every(0),
    )
    .unwrap();
    for &op in &skipped {
        apply_op(&mut control, op).unwrap();
    }
    let expected = checkpoint(&mut control);

    // Faulted run: the third append (1-based hit 3) aborts.
    let faulted_dir = base.join("faulted");
    fault::arm(fault::LEDGER_APPEND, fault::Trigger::Nth(3));
    let mut broker = Qirana::open(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&faulted_dir).with_snapshot_every(0),
    )
    .unwrap();
    for (i, op) in SESSION.iter().enumerate() {
        let res = apply_op(&mut broker, op);
        if i == 2 {
            let err = res.unwrap_err();
            assert!(
                matches!(err, BrokerError::Ledger(LedgerError::Injected(_))),
                "expected the injected abort, got {err}"
            );
        } else {
            res.unwrap();
        }
    }
    assert!(
        !broker.ledger().unwrap().is_poisoned(),
        "an abort before any write must not poison the handle"
    );
    assert_eq!(checkpoint(&mut broker), expected, "live session diverged");
    drop(broker);

    let mut recovered = Qirana::recover(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&faulted_dir),
    )
    .unwrap();
    assert_eq!(checkpoint(&mut recovered), expected, "recovery diverged");
    fault::reset();
    fs::remove_dir_all(&base).ok();
}

/// A crash during the snapshot cadence: the purchase that triggered the
/// snapshot is already durable in the WAL, so recovery keeps it — and the
/// recovered market still owes a snapshot, which the next committed event
/// takes (compacting the log) without further ado.
#[test]
fn crash_during_snapshot_recovers_and_compacts_later() {
    let _guard = fault::serialize_tests();
    fault::reset();
    let base = matrix_base("snapshot-crash");

    let control_dir = base.join("control");
    let checkpoints = control_run(
        PricingFunction::WeightedCoverage,
        &SESSION[..3],
        &control_dir,
    );

    let faulted_dir = base.join("faulted");
    let faulted_cfg = || LedgerConfig::new(&faulted_dir).with_snapshot_every(2);
    fault::arm(fault::LEDGER_SNAPSHOT, fault::Trigger::Once);
    {
        let mut broker =
            Qirana::open(db(), cfg(PricingFunction::WeightedCoverage), faulted_cfg()).unwrap();
        apply_op(&mut broker, &SESSION[0]).unwrap();
        // The second commit trips the cadence; the snapshot dies, but the
        // purchase record itself is already on disk.
        let err = apply_op(&mut broker, &SESSION[1]).unwrap_err();
        assert!(
            matches!(err, BrokerError::Ledger(LedgerError::Injected(_))),
            "expected the injected snapshot crash, got {err}"
        );
    }
    fault::reset();

    let mut recovered =
        Qirana::recover(db(), cfg(PricingFunction::WeightedCoverage), faulted_cfg()).unwrap();
    assert_eq!(
        checkpoint(&mut recovered),
        checkpoints[2],
        "both purchases must survive the snapshot crash"
    );

    // The owed snapshot is taken on the next committed event, compacting
    // the log down to its marker.
    apply_op(&mut recovered, &SESSION[2]).unwrap();
    drop(recovered);
    let bytes = fs::read(faulted_cfg().log_path()).unwrap();
    let scan = scan_log(&bytes).unwrap();
    assert_eq!(scan.records.len(), 1, "compaction must have run");

    let mut reopened =
        Qirana::recover(db(), cfg(PricingFunction::WeightedCoverage), faulted_cfg()).unwrap();
    assert_eq!(
        checkpoint(&mut reopened),
        checkpoints[3],
        "the snapshot-only market must match the never-crashed control"
    );
    fs::remove_dir_all(&base).ok();
}

/// A SIGKILLed writer leaves its lockfile behind — `Drop` never ran. The
/// in-process crash simulation above cannot show this (dropping the dead
/// broker releases the lock), so this case plants the leftover by hand:
/// recovery must refuse while the recorded holder is alive, reclaim the
/// lock once the holder is provably dead, and still rebuild the exact
/// checkpoint.
#[test]
fn stale_lock_from_a_killed_process_is_reclaimed_on_recovery() {
    let _guard = fault::serialize_tests();
    fault::reset();
    let base = matrix_base("stale-lock");

    let control_dir = base.join("control");
    let checkpoints = control_run(
        PricingFunction::WeightedCoverage,
        &SESSION[..3],
        &control_dir,
    );
    let control_log = fs::read(LedgerConfig::new(&control_dir).log_path()).unwrap();

    // Kill the session mid-log.
    let crashed_dir = base.join("crashed");
    let crash_cfg = || LedgerConfig::new(&crashed_dir).with_snapshot_every(0);
    let budget = control_log.len() as u64 / 2;
    fault::arm_ledger_crash(budget);
    let outcome = Qirana::open(db(), cfg(PricingFunction::WeightedCoverage), crash_cfg()).and_then(
        |mut broker| {
            for op in &SESSION[..3] {
                apply_op(&mut broker, op)?;
            }
            Ok(())
        },
    );
    fault::disarm_ledger_crash();
    outcome.expect_err("the crash budget must kill the session");
    let k = scan_log(&fs::read(crash_cfg().log_path()).unwrap())
        .unwrap()
        .records
        .len();

    let lock_path = crashed_dir.join("ledger.lock");
    // While the lock names a live process (pid 1 always is), the
    // directory stays closed.
    fs::write(&lock_path, b"1").unwrap();
    let err = Qirana::recover(db(), cfg(PricingFunction::WeightedCoverage), crash_cfg())
        .expect_err("a live holder must keep recovery out");
    assert!(
        matches!(err, BrokerError::Ledger(LedgerError::Locked { .. })),
        "expected LedgerError::Locked, got {err}"
    );
    assert!(lock_path.exists(), "a refused open must not break the lock");

    // The killed writer's own lock names a dead pid (999999999 exceeds
    // any real pid_max): recovery reclaims it and rebuilds the market.
    fs::write(&lock_path, b"999999999").unwrap();
    let mut recovered =
        Qirana::recover(db(), cfg(PricingFunction::WeightedCoverage), crash_cfg()).unwrap();
    assert_eq!(
        checkpoint(&mut recovered),
        checkpoints[k],
        "recovery through a stale lock diverges from checkpoint {k}"
    );
    fs::remove_dir_all(&base).ok();
}
