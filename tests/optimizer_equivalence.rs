//! Property-based cross-check of the §4 optimizer: for *every* query shape
//! and every engine configuration, the disagreement bits must equal the
//! naive engine's (Theorems 4.1 / 4.2 made executable).
//!
//! Random databases, random support sets, and a query pool spanning the
//! SPJ shape (static checks, probes, batching), the aggregate shape (delta
//! analysis, group movement, fallbacks), and opaque queries.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use qirana::core::{
    bundle_disagreements, generate_support, prepare_query, EngineOptions, Prepared, SupportConfig,
    SupportSet,
};
use qirana::sqlengine::{ColumnDef, DataType, Database, TableSchema, Value};

/// Builds a two-table database whose content is driven by the proptest
/// parameters.
fn build_db(users: &[(i64, u8, i64)], tweets: &[(i64, i64, u8)]) -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "User",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("gender", DataType::Str),
                ColumnDef::new("age", DataType::Int),
            ],
            &["uid"],
        ),
        users
            .iter()
            .enumerate()
            .map(|(i, (_, g, a))| {
                vec![
                    Value::Int(i as i64 + 1),
                    Value::str(if *g == 0 { "m" } else { "f" }),
                    Value::Int(*a),
                ]
            })
            .collect::<Vec<_>>(),
    );
    db.add_table(
        TableSchema::new(
            "Tweet",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("location", DataType::Str),
            ],
            &["tid"],
        ),
        tweets
            .iter()
            .enumerate()
            .map(|(i, (_, u, l))| {
                vec![
                    Value::Int(i as i64 + 1),
                    Value::Int((*u % users.len().max(1) as i64) + 1),
                    Value::str(["CA", "WA", "OR"][*l as usize % 3]),
                ]
            })
            .collect::<Vec<_>>(),
    );
    db
}

/// The query pool: every optimizer path appears.
const QUERIES: &[&str] = &[
    // SPJ: single relation, identity projections, selections.
    "select gender, age from User",
    "select age from User where gender = 'f'",
    "select uid from User where age between 20 and 40",
    // SPJ: expression projection (excluded from the exact B∩A static).
    "select age + 1 from User where age > 15",
    // SPJ: join with local + join conditions.
    "select gender, location from User, Tweet where User.uid = Tweet.uid and age > 18",
    "select location from User U, Tweet T where U.uid = T.uid and T.location = 'CA' and U.gender = 'm'",
    // Aggregates: COUNT(*), delta-analysis paths, group movement.
    "select gender, count(*) from User group by gender",
    "select count(*) from User where age > 21",
    "select gender, avg(age) from User group by gender",
    "select sum(age) from User",
    "select min(age), max(age) from User",
    "select gender, avg(age), count(*) from User group by gender",
    // Aggregate over a join.
    "select location, count(*) from User, Tweet where User.uid = Tweet.uid group by location",
    "select gender, sum(age) from User, Tweet where User.uid = Tweet.uid group by gender",
    // Expression group key (slot overlap is not key movement).
    "select age % 2, count(*) from User group by age % 2",
    // Opaque shapes: DISTINCT, LIMIT, HAVING, subqueries.
    "select distinct gender from User",
    "select age from User order by age limit 2",
    "select gender, count(*) as c from User group by gender having c > 1",
    "select uid from User where uid in (select uid from Tweet where location = 'CA')",
    "select count(*) from User U where exists (select 1 from Tweet T where T.uid = U.uid)",
];

fn check_all_configs(db: &mut Database, support: &SupportSet) {
    let prepared: Vec<Prepared> = QUERIES
        .iter()
        .map(|q| prepare_query(db, q).expect("prepare"))
        .collect();
    for q in &prepared {
        let bundle = [q];
        let naive =
            bundle_disagreements(db, &bundle, support, &EngineOptions::naive(), None).unwrap();
        for opts in [
            EngineOptions::default(),
            EngineOptions::no_batching(),
            EngineOptions {
                optimize: false,
                batch: false,
                reduce: true,
                ..Default::default()
            },
        ] {
            let got = bundle_disagreements(db, &bundle, support, &opts, None).unwrap();
            assert_eq!(got, naive, "engine mismatch for {:?} under {opts:?}", q.sql);
        }
    }
    // Whole pool as one bundle, too.
    let bundle: Vec<&Prepared> = prepared.iter().collect();
    let naive = bundle_disagreements(db, &bundle, support, &EngineOptions::naive(), None).unwrap();
    let opt = bundle_disagreements(db, &bundle, support, &EngineOptions::default(), None).unwrap();
    assert_eq!(opt, naive, "bundle mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn optimizer_equals_naive(
        users in prop::collection::vec((0i64..10, 0u8..2, 10i64..60), 3..10),
        tweets in prop::collection::vec((0i64..10, 0i64..10, 0u8..3), 2..12),
        seed in 0u64..1000,
        swap_fraction in 0.0f64..1.0,
    ) {
        let mut db = build_db(&users, &tweets);
        let support = SupportSet::Neighborhood(generate_support(
            &db,
            &SupportConfig {
                size: 120,
                swap_fraction,
                seed,
                ..Default::default()
            },
        ));
        check_all_configs(&mut db, &support);
    }
}

#[test]
fn optimizer_equals_naive_fixed_corpus() {
    // A deterministic, larger run for CI stability.
    let users: Vec<(i64, u8, i64)> = (0..12)
        .map(|i| (i, (i % 2) as u8, 12 + (i * 7) % 50))
        .collect();
    let tweets: Vec<(i64, i64, u8)> = (0..20).map(|i| (i, i * 3 % 12, (i % 3) as u8)).collect();
    let mut db = build_db(&users, &tweets);
    for seed in [1, 2, 3] {
        for swap_fraction in [0.0, 0.5, 1.0] {
            let support = SupportSet::Neighborhood(generate_support(
                &db,
                &SupportConfig {
                    size: 250,
                    swap_fraction,
                    seed,
                    ..Default::default()
                },
            ));
            check_all_configs(&mut db, &support);
        }
    }
}

#[test]
fn skip_bitmap_consistency() {
    // With a skip mask, evaluated bits must match the unmasked run on the
    // non-skipped positions and be false elsewhere.
    let users: Vec<(i64, u8, i64)> = (0..8).map(|i| (i, (i % 2) as u8, 20 + i)).collect();
    let tweets: Vec<(i64, i64, u8)> = (0..10).map(|i| (i, i, (i % 3) as u8)).collect();
    let mut db = build_db(&users, &tweets);
    let support = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: 200,
            ..Default::default()
        },
    ));
    let q = prepare_query(&db, "select gender, avg(age) from User group by gender").unwrap();
    let full =
        bundle_disagreements(&mut db, &[&q], &support, &EngineOptions::default(), None).unwrap();
    let skip: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
    let masked = bundle_disagreements(
        &mut db,
        &[&q],
        &support,
        &EngineOptions::default(),
        Some(&skip),
    )
    .unwrap();
    for i in 0..200 {
        if skip[i] {
            assert!(!masked[i], "skipped position {i} must stay false");
        } else {
            assert_eq!(masked[i], full[i], "position {i}");
        }
    }
}
