//! Empirical verification of the arbitrage-freeness guarantees of Table 1.
//!
//! These tests exercise the broker on concrete determinacy pairs
//! (`Q1 ↠ Q2` instances built from projection/selection/aggregation
//! containment) and on bundle decompositions, checking:
//!
//! * **information arbitrage-freeness**: `Q1 ↠ Q2 ⇒ p(Q2) ≤ p(Q1)` for all
//!   four functions under the `nbrs` support set;
//! * **bundle arbitrage-freeness**: `p(Q1∥Q2) ≤ p(Q1) + p(Q2)` for weighted
//!   coverage, Shannon, and q-entropy (the paper's Table 1 shows uniform
//!   entropy gain exhibits bundle arbitrage, so it is excluded);
//! * **monotonicity**: extending a bundle never lowers its price.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::datagen::world;
use qirana::{PricingFunction, Qirana, QiranaConfig, SupportConfig};

fn broker(f: PricingFunction, size: usize) -> Qirana {
    Qirana::new(
        world::generate(1234),
        QiranaConfig {
            total_price: 100.0,
            function: f,
            support: SupportConfig {
                size,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("broker")
}

/// Determinacy pairs `(finer, coarser)`: the first query's answer computes
/// the second's (`Q1 ↠ Q2`), so `p(Q2) ≤ p(Q1)` is required.
fn determinacy_pairs() -> Vec<(&'static str, &'static str)> {
    vec![
        // Wider projection determines narrower projection.
        (
            "SELECT ID, Name, Continent, Population FROM Country",
            "SELECT ID, Name FROM Country",
        ),
        // Full table determines any projection of it.
        ("SELECT * FROM Country", "SELECT Region FROM Country"),
        // Full table determines any selection over it.
        (
            "SELECT * FROM Country",
            "SELECT * FROM Country WHERE Continent = 'Asia'",
        ),
        // Wider selection range determines narrower one.
        (
            "SELECT * FROM Country WHERE ID < 200",
            "SELECT * FROM Country WHERE ID < 100",
        ),
        // Group-by counts determine a filtered count.
        (
            "SELECT Continent, count(*) FROM Country GROUP BY Continent",
            "SELECT count(*) FROM Country WHERE Continent = 'Asia'",
        ),
        // Raw column determines its aggregates.
        (
            "SELECT ID, Population FROM Country",
            "SELECT AVG(Population) FROM Country",
        ),
        (
            "SELECT ID, Population FROM Country",
            "SELECT MAX(Population) FROM Country",
        ),
        // Counts by a finer grouping determine the coarser aggregate.
        (
            "SELECT Continent, Region, count(*) FROM Country GROUP BY Continent, Region",
            "SELECT Continent, count(*) FROM Country GROUP BY Continent",
        ),
    ]
}

#[test]
fn information_arbitrage_free_all_functions() {
    for f in PricingFunction::ALL {
        // Entropy partitions are priced naively; keep the support modest.
        let size = if f.needs_partition() { 300 } else { 1500 };
        let q = broker(f, size);
        for (finer, coarser) in determinacy_pairs() {
            let p_fine = q.quote(finer).unwrap();
            let p_coarse = q.quote(coarser).unwrap();
            assert!(
                p_coarse <= p_fine + 1e-9,
                "{f:?}: information arbitrage — p({coarser}) = {p_coarse} > \
                 p({finer}) = {p_fine}"
            );
        }
    }
}

#[test]
fn bundle_arbitrage_free_functions() {
    let bundles = [
        (
            "SELECT Name FROM Country WHERE Continent = 'Asia'",
            "SELECT Name FROM Country WHERE Continent = 'Europe'",
        ),
        (
            "SELECT Region, AVG(LifeExpectancy) FROM Country GROUP BY Region",
            "SELECT * FROM CountryLanguage",
        ),
        (
            "SELECT ID, Population FROM Country",
            "SELECT ID, GNP FROM Country",
        ),
    ];
    for f in [
        PricingFunction::WeightedCoverage,
        PricingFunction::ShannonEntropy,
        PricingFunction::QEntropy,
    ] {
        let size = if f.needs_partition() { 250 } else { 1500 };
        let q = broker(f, size);
        for (q1, q2) in bundles {
            let p1 = q.quote(q1).unwrap();
            let p2 = q.quote(q2).unwrap();
            let pb = q.quote_bundle(&[q1, q2]).unwrap();
            assert!(
                pb <= p1 + p2 + 1e-6,
                "{f:?}: bundle arbitrage — p(Q1∥Q2) = {pb} > {p1} + {p2}"
            );
        }
    }
}

#[test]
fn bundle_monotone_for_coverage() {
    let q = broker(PricingFunction::WeightedCoverage, 1500);
    let base = "SELECT Name FROM Country WHERE Continent = 'Asia'";
    let extra = "SELECT * FROM City WHERE Population > 1000000";
    let p_base = q.quote(base).unwrap();
    let p_both = q.quote_bundle(&[base, extra]).unwrap();
    assert!(
        p_both + 1e-9 >= p_base,
        "monotonicity violated: {p_both} < {p_base}"
    );
}

#[test]
fn uniform_entropy_gain_has_bundle_arbitrage_room() {
    // Table 1 marks pueg as NOT bundle-arbitrage-free. We don't assert a
    // violation exists for this workload (it depends on the sample), but we
    // do check the function is at least well-behaved on the ends.
    let q = broker(PricingFunction::UniformEntropyGain, 1500);
    let all = q
        .quote_bundle(&[
            "SELECT * FROM Country",
            "SELECT * FROM City",
            "SELECT * FROM CountryLanguage",
        ])
        .unwrap();
    assert!((all - 100.0).abs() < 1e-6, "Q_all must price at P: {all}");
    let tiny = q.quote("SELECT Name FROM Country WHERE ID = 1").unwrap();
    assert!(tiny < all);
}

#[test]
fn constant_queries_are_free() {
    // Queries whose answers are fixed by public knowledge (cardinalities)
    // must cost nothing under every function.
    for f in PricingFunction::ALL {
        let size = if f.needs_partition() { 200 } else { 800 };
        let q = broker(f, size);
        for sql in [
            "SELECT count(*) FROM Country",
            "SELECT count(*) FROM City",
            "SELECT 1",
        ] {
            let p = q.quote(sql).unwrap();
            assert!(p.abs() < 1e-9, "{f:?}: constant query {sql} priced at {p}");
        }
    }
}

#[test]
fn price_scales_with_selectivity() {
    // The Figure 2 sanity property: Qσ_u prices grow with u.
    let q = broker(PricingFunction::WeightedCoverage, 2000);
    let mut last = -1.0;
    for u in [1, 60, 120, 180, 240] {
        let p = q
            .quote(&format!("SELECT * FROM Country WHERE ID < {u}"))
            .unwrap();
        assert!(
            p + 1e-9 >= last,
            "price not monotone in selectivity at u={u}: {p} < {last}"
        );
        last = p;
    }
    assert!(last > 20.0, "the widest selection should carry real price");
}

#[test]
fn uniform_entropy_gain_bundle_arbitrage_witness() {
    // Table 1 marks pueg as NOT bundle-arbitrage-free. Constructive
    // witness: craft a support set where Q1 and Q2 each rule out exactly
    // ONE instance, disjointly. Then p(Q1) = p(Q2) = P·ln(1)/ln(S) = 0,
    // while the bundle rules out two instances and prices
    // P·ln(2)/ln(S) > 0 — strictly more than buying the parts.
    use qirana::core::pricing::uniform_entropy_gain;
    use qirana::core::{
        bundle_disagreements, prepare_query, EngineOptions, SupportSet, SupportUpdate,
    };
    use qirana::sqlengine::{ColumnDef, DataType, Database, TableSchema};

    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
                ColumnDef::new("w", DataType::Int),
            ],
            &["id"],
        ),
        (0..50i64)
            .map(|i| vec![i.into(), (i * 2).into(), (i * 3).into()])
            .collect::<Vec<_>>(),
    );
    // One v-update on row 0, one on row 1, and 98 w-updates elsewhere.
    let mut updates = vec![
        SupportUpdate::Row {
            table: 0,
            row: 0,
            changes: vec![(1, 999.into())],
        },
        SupportUpdate::Row {
            table: 0,
            row: 1,
            changes: vec![(1, 998.into())],
        },
    ];
    for i in 0..98usize {
        updates.push(SupportUpdate::Row {
            table: 0,
            row: 2 + i % 48,
            changes: vec![(2, (1000 + i as i64).into())],
        });
    }
    let support = SupportSet::Neighborhood(updates);

    let q1 = prepare_query(&db, "select v from T where id = 0").unwrap();
    let q2 = prepare_query(&db, "select v from T where id = 1").unwrap();
    let b1 =
        bundle_disagreements(&mut db, &[&q1], &support, &EngineOptions::default(), None).unwrap();
    let b2 =
        bundle_disagreements(&mut db, &[&q2], &support, &EngineOptions::default(), None).unwrap();
    assert_eq!(b1.iter().filter(|&&b| b).count(), 1, "Q1 hits exactly one");
    assert_eq!(b2.iter().filter(|&&b| b).count(), 1, "Q2 hits exactly one");
    assert!(b1.iter().zip(&b2).all(|(a, b)| !(a & b)), "disjoint hits");

    let both: Vec<bool> = b1.iter().zip(&b2).map(|(a, b)| a | b).collect();
    let p1 = uniform_entropy_gain(100.0, &b1);
    let p2 = uniform_entropy_gain(100.0, &b2);
    let pb = uniform_entropy_gain(100.0, &both);
    assert_eq!(p1, 0.0);
    assert_eq!(p2, 0.0);
    assert!(
        pb > p1 + p2 + 1e-9,
        "bundle arbitrage witnessed: pb = {pb} vs {p1} + {p2}"
    );

    // Weighted coverage on the same configuration stays subadditive.
    use qirana::core::pricing::weighted_coverage;
    let w = vec![1.0; 100];
    assert!(
        weighted_coverage(&w, &both)
            <= weighted_coverage(&w, &b1) + weighted_coverage(&w, &b2) + 1e-12
    );
}
