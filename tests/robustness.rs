//! End-to-end robustness: execution budgets, solver deadlines, and
//! injected faults must surface as structured errors — never panics, never
//! unbounded runtime — and the broker must degrade or recover exactly as
//! documented (README "Robustness & degradation").
//!
//! Every test that arms a failpoint holds the [`fault::serialize_tests`]
//! guard: the fault registry is process-global and `cargo test` runs tests
//! concurrently.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::core::fault;
use qirana::core::WeightError;
use qirana::solver::AbortCause;
use qirana::sqlengine::{BudgetResource, ColumnDef, DataType, EngineError, TableSchema};
use qirana::{
    BrokerError, Database, EngineOptions, ExecBudget, PricePoint, PricingFunction, Qirana,
    QiranaConfig, RetryPolicy, SupportConfig,
};
use std::time::{Duration, Instant};

fn twitter_db() -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "User",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("gender", DataType::Str),
                ColumnDef::new("age", DataType::Int),
            ],
            &["uid"],
        ),
        (1..=8i64)
            .map(|i| {
                vec![
                    i.into(),
                    if i % 2 == 0 { "f" } else { "m" }.into(),
                    (10 + i * 3).into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    db.add_table(
        TableSchema::new(
            "Tweet",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("uid", DataType::Int),
            ],
            &["tid"],
        ),
        (1..=10i64)
            .map(|i| vec![i.into(), (i % 8 + 1).into()])
            .collect::<Vec<_>>(),
    );
    db
}

fn small_support() -> SupportConfig {
    SupportConfig {
        size: 60,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Failure mode 1: execution budget trips mid-join
// ---------------------------------------------------------------------------

#[test]
fn row_budget_trips_mid_join_as_structured_error() {
    let broker = Qirana::new(
        twitter_db(),
        QiranaConfig {
            support: small_support(),
            engine: EngineOptions::default().with_budget(ExecBudget::UNLIMITED.with_max_rows(3)),
            ..Default::default()
        },
    )
    .unwrap();
    // The join materializes more than 3 rows, so pricing must stop
    // cooperatively with the typed budget error — not garbage, not a panic.
    let err = broker
        .quote("SELECT gender FROM User, Tweet WHERE User.uid = Tweet.uid")
        .unwrap_err();
    match err {
        BrokerError::Engine(EngineError::BudgetExceeded { resource, limit }) => {
            assert_eq!(resource, BudgetResource::Rows);
            assert_eq!(limit, 3);
        }
        other => panic!("expected a rows budget trip, got {other}"),
    }
    // A trip is per-call, not a poisoned state: the same quote fails the
    // same way again (budgets reset per context), no panic, no wedging.
    let again = broker
        .quote("SELECT gender FROM User, Tweet WHERE User.uid = Tweet.uid")
        .unwrap_err();
    assert!(
        matches!(again, BrokerError::Engine(e) if e.is_budget_exceeded()),
        "deterministic repeat trip expected"
    );
}

#[test]
fn expired_deadline_trips_immediately_and_is_bounded() {
    let broker = Qirana::new(
        twitter_db(),
        QiranaConfig {
            support: small_support(),
            engine: EngineOptions::default()
                .with_budget(ExecBudget::UNLIMITED.with_timeout(Duration::ZERO)),
            ..Default::default()
        },
    )
    .unwrap();
    let start = Instant::now();
    let err = broker.quote("SELECT * FROM User").unwrap_err();
    assert!(
        matches!(
            err,
            BrokerError::Engine(EngineError::BudgetExceeded {
                resource: BudgetResource::WallClock,
                ..
            })
        ),
        "got {err}"
    );
    assert!(start.elapsed() < Duration::from_secs(5), "must fail fast");
}

#[test]
fn failed_purchase_does_not_charge_the_buyer() {
    let mut broker = Qirana::new(
        twitter_db(),
        QiranaConfig {
            support: small_support(),
            engine: EngineOptions::default().with_budget(ExecBudget::UNLIMITED.with_max_rows(2)),
            ..Default::default()
        },
    )
    .unwrap();
    let err = broker.buy("alice", "SELECT * FROM User").unwrap_err();
    assert!(
        matches!(err, BrokerError::Engine(e) if e.is_budget_exceeded()),
        "budget trip expected"
    );
    assert_eq!(
        broker.buyer_paid("alice"),
        None,
        "no account is opened on failure"
    );
    assert_eq!(broker.buyer_coverage("alice"), None);
}

// ---------------------------------------------------------------------------
// Failure mode 2: solver deadline mid-quote → graceful degradation
// ---------------------------------------------------------------------------

#[test]
fn solver_timeout_degrades_to_uniform_weights() {
    let cfg = QiranaConfig {
        support: small_support(),
        price_points: vec![PricePoint::new("SELECT * FROM User", 70.0)],
        solver: qirana::solver::SolverOptions::default().with_time_limit(Duration::ZERO),
        ..Default::default()
    };
    let start = Instant::now();
    let mut broker = Qirana::new(twitter_db(), cfg).unwrap();
    assert!(
        broker.is_degraded(),
        "every solve attempt hits the zero deadline, so the broker must \
         fall back to uniform weights"
    );
    // Quotes carry the flag and stay arbitrage-free: Q_all still prices at P.
    let q = broker
        .quote_bundle_ex(&["SELECT * FROM User", "SELECT * FROM Tweet"])
        .unwrap();
    assert!(q.degraded);
    assert!((q.price - 100.0).abs() < 1e-9, "Q_all = P even degraded");
    // Purchases carry it too.
    let p = broker
        .buy("bob", "SELECT count(*) FROM User WHERE gender = 'f'")
        .unwrap();
    assert!(p.degraded);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "retries are bounded"
    );
}

#[test]
fn solver_timeout_without_fallback_is_a_typed_error() {
    let cfg = QiranaConfig {
        support: small_support(),
        price_points: vec![PricePoint::new("SELECT * FROM User", 70.0)],
        solver: qirana::solver::SolverOptions::default().with_time_limit(Duration::ZERO),
        retry: RetryPolicy {
            max_attempts: 2,
            fallback_to_uniform: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let err = Qirana::new(twitter_db(), cfg).unwrap_err();
    match err {
        BrokerError::Weights(WeightError::SolverAborted { cause, .. }) => {
            assert_eq!(cause, AbortCause::TimeLimit);
        }
        other => panic!("expected SolverAborted, got {other}"),
    }
}

#[test]
fn infeasible_price_points_degrade_with_flag() {
    // A subset priced above the whole dataset: infeasible on every support
    // set, so after the retry/backoff ladder the broker must degrade.
    let cfg = QiranaConfig {
        support: small_support(),
        price_points: vec![PricePoint::new("SELECT * FROM User", 170.0)],
        ..Default::default()
    };
    let broker = Qirana::new(twitter_db(), cfg).unwrap();
    assert!(broker.is_degraded());
    let q = broker.quote_ex("SELECT * FROM User").unwrap();
    assert!(q.degraded);
    assert!(q.price > 0.0 && q.price <= 100.0 + 1e-9);
}

// ---------------------------------------------------------------------------
// Failure mode 3: injected support-generation failure
// ---------------------------------------------------------------------------

#[test]
fn injected_support_failure_exhausts_retries_as_typed_error() {
    let _guard = fault::serialize_tests();
    fault::reset();
    fault::arm(fault::SUPPORT_GENERATE, fault::Trigger::Always);
    let start = Instant::now();
    let err = Qirana::new(
        twitter_db(),
        QiranaConfig {
            support: small_support(),
            ..Default::default()
        },
    )
    .unwrap_err();
    fault::reset();
    assert!(
        matches!(err, BrokerError::Support(_)),
        "support failure must surface typed, got {err}"
    );
    assert!(start.elapsed() < Duration::from_secs(5), "retries bounded");
}

#[test]
fn injected_support_failure_recovers_on_retry() {
    let _guard = fault::serialize_tests();
    fault::reset();
    // First generation attempt fails; the reseeded retry succeeds — the
    // §3.3 reaction loop absorbs a transient failure.
    fault::arm(fault::SUPPORT_GENERATE, fault::Trigger::Once);
    let broker = Qirana::new(
        twitter_db(),
        QiranaConfig {
            support: small_support(),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(fault::fired_count(fault::SUPPORT_GENERATE), 1);
    fault::reset();
    assert!(!broker.is_degraded(), "a clean retry is not a degradation");
    let p = broker.quote("SELECT * FROM User").unwrap();
    assert!(p > 0.0);
}

// ---------------------------------------------------------------------------
// Failure mode 4: injected engine failure mid-quote
// ---------------------------------------------------------------------------

#[test]
fn injected_engine_failure_fails_one_quote_then_recovers() {
    let _guard = fault::serialize_tests();
    fault::reset();
    let broker = Qirana::new(
        twitter_db(),
        QiranaConfig {
            support: small_support(),
            ..Default::default()
        },
    )
    .unwrap();
    fault::arm(fault::ENGINE_EXECUTE, fault::Trigger::Once);
    let err = broker.quote("SELECT * FROM User").unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "engine fault must carry its provenance: {err}"
    );
    let p = broker.quote("SELECT * FROM User").unwrap();
    fault::reset();
    assert!(p > 0.0, "the failpoint disarmed; pricing works again");
}

// ---------------------------------------------------------------------------
// Failure mode 5: injected fault during buy
// ---------------------------------------------------------------------------

#[test]
fn injected_buy_failure_charges_nothing_then_recovers() {
    let _guard = fault::serialize_tests();
    fault::reset();
    let mut broker = Qirana::new(
        twitter_db(),
        QiranaConfig {
            support: small_support(),
            ..Default::default()
        },
    )
    .unwrap();
    fault::arm(fault::BROKER_BUY, fault::Trigger::Once);
    let sql = "SELECT gender, count(*) FROM User GROUP BY gender";
    let err = broker.buy("carol", sql).unwrap_err();
    assert!(matches!(err, BrokerError::Injected(_)), "got {err}");
    assert_eq!(
        broker.buyer_paid("carol"),
        None,
        "failed buy opens no account"
    );
    // The retry goes through and history-aware accounting is intact.
    let first = broker.buy("carol", sql).unwrap();
    assert!(first.price > 0.0);
    let second = broker.buy("carol", sql).unwrap();
    fault::reset();
    assert_eq!(second.price, 0.0, "repeat purchase still free after fault");
}

// ---------------------------------------------------------------------------
// Failure mode 6: failed purchases are atomic for BOTH pricing families
// ---------------------------------------------------------------------------

/// A purchase that fails partway must leave the buyer's account, history,
/// and charged bitmap exactly as they were — for the coverage family and
/// the entropy family alike, whether the fault fires at the broker entry
/// point (`BROKER_BUY`) or inside pricing itself (`ENGINE_EXECUTE`; the
/// cached entry points check the same failpoint at their head, so an armed
/// fault aborts cached buys exactly like uncached ones). Solver weights are
/// fixed at broker construction and cannot abort mid-buy, so the engine
/// abort stands in for every mid-purchase failure source.
///
/// Atomicity is verified two ways: the visible account is unchanged after
/// the fault, and every subsequent buy prices bitwise-identically to a
/// never-faulted control broker — a corrupted history vector, entropy
/// `paid` accumulator, or charged bitmap would diverge here.
#[test]
fn failed_purchase_is_atomic_for_both_families() {
    let _guard = fault::serialize_tests();
    for function in [
        PricingFunction::WeightedCoverage,
        PricingFunction::ShannonEntropy,
    ] {
        for failpoint in [fault::BROKER_BUY, fault::ENGINE_EXECUTE] {
            fault::reset();
            let make = || {
                Qirana::new(
                    twitter_db(),
                    QiranaConfig {
                        function,
                        support: small_support(),
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let mut broker = make();
            let mut control = make();
            let q1 = "SELECT gender, count(*) FROM User GROUP BY gender";
            let q2 = "SELECT count(*) FROM Tweet WHERE uid = 3";

            let first = broker.buy("carol", q1).unwrap();
            let first_control = control.buy("carol", q1).unwrap();
            assert_eq!(first.price.to_bits(), first_control.price.to_bits());
            let paid_before = broker.buyer_paid("carol").unwrap();
            let coverage_before = broker.buyer_coverage("carol").unwrap();

            fault::arm(failpoint, fault::Trigger::Once);
            let err = broker.buy("carol", q2).unwrap_err();
            assert_eq!(
                fault::fired_count(failpoint),
                1,
                "{failpoint}: the armed failpoint must be the failure cause"
            );
            assert!(
                err.to_string().contains("injected fault")
                    || matches!(err, BrokerError::Injected(_)),
                "{failpoint}: fault provenance lost: {err}"
            );
            assert_eq!(
                broker.buyer_paid("carol").unwrap().to_bits(),
                paid_before.to_bits(),
                "{failpoint}/{function:?}: failed buy must not charge"
            );
            assert_eq!(
                broker.buyer_coverage("carol").unwrap().to_bits(),
                coverage_before.to_bits(),
                "{failpoint}/{function:?}: failed buy must not mark coverage"
            );

            // Recovery: the faulted broker now tracks the control broker
            // bit-for-bit, including the free repeat of q1.
            for sql in [q2, q1, q2] {
                let got = broker.buy("carol", sql).unwrap();
                let want = control.buy("carol", sql).unwrap();
                assert_eq!(
                    got.price.to_bits(),
                    want.price.to_bits(),
                    "{failpoint}/{function:?}: post-fault price diverges on {sql}"
                );
                assert_eq!(
                    got.total_paid.to_bits(),
                    want.total_paid.to_bits(),
                    "{failpoint}/{function:?}: post-fault account diverges"
                );
            }
            fault::reset();
        }
    }
}
