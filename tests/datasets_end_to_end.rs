//! End-to-end pricing over the evaluation datasets (scaled), checking the
//! qualitative price structure the paper reports in Table 3 and §5.4.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::datagen::{carcrash, dblp, queries, ssb, world};
use qirana::{PricingFunction, Qirana, QiranaConfig, SupportConfig};

fn broker(db: qirana::Database, size: usize, f: PricingFunction) -> Qirana {
    Qirana::new(
        db,
        QiranaConfig {
            total_price: 100.0,
            function: f,
            support: SupportConfig {
                size,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("broker")
}

#[test]
fn world_workload_prices_in_range() {
    let q = broker(world::generate(3), 800, PricingFunction::WeightedCoverage);
    for (i, sql) in queries::WORLD_QUERIES.iter().enumerate() {
        let p = q
            .quote(sql)
            .unwrap_or_else(|e| panic!("Qw{} failed: {e}", i + 1));
        assert!(
            (0.0..=100.0 + 1e-9).contains(&p),
            "Qw{}: price {p} out of range",
            i + 1
        );
    }
    // Qw10 is all of Country: it must carry a substantial share of P.
    let p_full_country = q.quote(queries::WORLD_QUERIES[9]).unwrap();
    assert!(
        p_full_country > 20.0,
        "full Country priced at {p_full_country}"
    );
}

#[test]
fn dblp_prices_follow_table3_shape() {
    let nodes = 3000;
    let db = dblp::generate(nodes, 5);
    let q = broker(db, 800, PricingFunction::WeightedCoverage);
    let qs = queries::dblp_queries(nodes);

    // Qd2 (average degree) is determined by publicly-known node and edge
    // counts up to distinct-source fluctuations: near-free.
    let p2 = q.quote(&qs[1]).unwrap();
    assert!(p2 < 10.0, "Qd2 should be (near) free, got {p2}");

    // Qd6 (authors with exactly one collaborator) touches the majority of
    // the graph: the paper prices it at $58.82. Expect a dominant price.
    let p6 = q.quote(&qs[5]).unwrap();
    assert!(p6 > 30.0, "Qd6 should be expensive, got {p6}");

    // Qd7 (edges of one author) touches a sliver: cheap.
    let p7 = q.quote(&qs[6]).unwrap();
    assert!(p7 < 15.0, "Qd7 should be cheap, got {p7}");
    assert!(p7 < p6);
}

#[test]
fn carcrash_prices_follow_table3_shape() {
    let db = carcrash::generate(6000, 7);
    let q = broker(db, 1000, PricingFunction::WeightedCoverage);
    let prices: Vec<f64> = queries::CARCRASH_QUERIES
        .iter()
        .map(|sql| q.quote(sql).unwrap())
        .collect();
    // Qc1 (group by State) is the most informative of the four (paper: $8
    // vs. $0.60/$0.70/$0).
    assert!(
        prices[0] > prices[1] && prices[0] > prices[2] && prices[0] > prices[3],
        "Qc1 should dominate: {prices:?}"
    );
    // Qc4 is ultra-selective: at this support size it prices at (near) 0.
    assert!(prices[3] < 1.0, "Qc4 should be ~0, got {}", prices[3]);
}

#[test]
fn ssb_queries_price_under_all_engines() {
    let db = ssb::generate(0.001, 9);
    let q = broker(db, 400, PricingFunction::WeightedCoverage);
    for (name, sql) in queries::ssb_queries() {
        let p = q.quote(sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            (0.0..=100.0 + 1e-9).contains(&p),
            "{name}: price {p} out of range"
        );
    }
}

#[test]
fn tpch_queries_price_without_error() {
    let sf = 0.001;
    let db = qirana::datagen::tpch::generate(sf, 11);
    let q = broker(db, 200, PricingFunction::WeightedCoverage);
    for (name, sql) in queries::tpch_queries(sf) {
        let p = q.quote(&sql).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            (0.0..=100.0 + 1e-9).contains(&p),
            "{name}: price {p} out of range"
        );
    }
}

#[test]
fn history_aware_ssb_session_saves_money() {
    // Figure 4e's claim: pricing the 13 SSB queries history-aware costs
    // noticeably less than summing the 13 oblivious prices.
    let db = ssb::generate(0.001, 13);
    let oblivious = broker(db.clone(), 300, PricingFunction::WeightedCoverage);
    let mut aware = broker(db, 300, PricingFunction::WeightedCoverage);
    let mut sum_oblivious = 0.0;
    let mut sum_aware = 0.0;
    for (_, sql) in queries::ssb_queries() {
        sum_oblivious += oblivious.quote(sql).unwrap();
        sum_aware += aware.buy("analyst", sql).unwrap().price;
    }
    assert!(
        sum_aware <= sum_oblivious + 1e-9,
        "aware {sum_aware} > oblivious {sum_oblivious}"
    );
    assert!(sum_aware > 0.0);
}

#[test]
fn support_updates_stay_inside_possible_worlds() {
    // §3.1: every support-set instance must satisfy the same constraints as
    // D — keys untouched, cardinality fixed, values in-domain. Apply each
    // update, validate, roll back.
    use qirana::core::{generate_support, SupportConfig};
    use qirana::sqlengine::{apply_writes, check_database};

    let mut db = world::generate(6);
    assert!(check_database(&db).is_empty());
    let updates = generate_support(
        &db,
        &SupportConfig {
            size: 150,
            ..Default::default()
        },
    );
    let rows_before = db.total_rows();
    for up in &updates {
        let undo = up.apply(&mut db);
        let violations = check_database(&db);
        assert!(
            violations.is_empty(),
            "update {up:?} left I: {violations:?}"
        );
        assert_eq!(db.total_rows(), rows_before, "cardinality must be fixed");
        apply_writes(&mut db, &undo);
    }
}
