//! SQL-engine integration tests: cross-check query results over the
//! generated datasets against independent formulations, so the executor's
//! joins, aggregation, and subqueries validate each other.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::datagen::{ssb, tpch, world};
use qirana::sqlengine::{query, Value};

#[test]
fn count_equals_sum_of_ones() {
    let db = world::generate(21);
    let a = query(&db, "select count(*) from City where Population > 500000").unwrap();
    let b = query(&db, "select sum(1) from City where Population > 500000").unwrap();
    assert_eq!(a.rows[0][0], b.rows[0][0]);
}

#[test]
fn group_by_totals_match_global_count() {
    let db = world::generate(22);
    let total = query(&db, "select count(*) from Country").unwrap().rows[0][0]
        .as_i64()
        .unwrap();
    let grouped = query(
        &db,
        "select Continent, count(*) from Country group by Continent",
    )
    .unwrap();
    let sum: i64 = grouped.rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
    assert_eq!(sum, total);
}

#[test]
fn join_count_matches_in_subquery_per_row_semantics() {
    let db = world::generate(23);
    // Countries having at least one language row: via join-distinct and via
    // IN-subquery.
    let a = query(
        &db,
        "select count(distinct Code) from Country, CountryLanguage where Code = CountryCode",
    )
    .unwrap();
    let b = query(
        &db,
        "select count(*) from Country where Code in (select CountryCode from CountryLanguage)",
    )
    .unwrap();
    assert_eq!(a.rows[0][0], b.rows[0][0]);
}

#[test]
fn exists_equals_in_for_uncorrelated_membership() {
    let db = world::generate(24);
    let a = query(
        &db,
        "select count(*) from Country C where exists (select 1 from City T where T.CountryCode = C.Code and T.Population > 1000000)",
    )
    .unwrap();
    let b = query(
        &db,
        "select count(*) from Country where Code in (select CountryCode from City where Population > 1000000)",
    )
    .unwrap();
    assert_eq!(a.rows[0][0], b.rows[0][0]);
}

#[test]
fn avg_equals_sum_over_count() {
    let db = world::generate(25);
    let avg = query(&db, "select avg(Population) from Country")
        .unwrap()
        .rows[0][0]
        .as_f64()
        .unwrap();
    let sum = query(&db, "select sum(Population) from Country")
        .unwrap()
        .rows[0][0]
        .as_f64()
        .unwrap();
    let cnt = query(&db, "select count(Population) from Country")
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    assert!((avg - sum / cnt as f64).abs() < 1e-9);
}

#[test]
fn ssb_q1_1_matches_manual_filter() {
    let db = ssb::generate(0.002, 31);
    let revenue = query(
        &db,
        "select sum(lo_extendedprice * lo_discount) from lineorder, dwdate \
         where lo_orderdate = d_datekey and d_year = 1993 \
         and lo_discount between 1 and 3 and lo_quantity < 25",
    )
    .unwrap();
    // Same computation with the date filter expressed on the fact table's
    // encoded key (d_datekey = yyyymmdd, so 1993 is a key range).
    let alt = query(
        &db,
        "select sum(lo_extendedprice * lo_discount) from lineorder \
         where lo_orderdate >= 19930101 and lo_orderdate <= 19931231 \
         and lo_discount between 1 and 3 and lo_quantity < 25",
    )
    .unwrap();
    assert_eq!(revenue.rows[0][0], alt.rows[0][0]);
}

#[test]
fn tpch_q6_matches_decomposed_sum() {
    let sf = 0.002;
    let db = tpch::generate(sf, 32);
    let q6 = query(
        &db,
        "select sum(l_extendedprice * l_discount) from lineitem \
         where l_shipdate >= date '1994-01-01' \
         and l_shipdate < date '1994-01-01' + interval '1' year \
         and l_discount between 0.05 and 0.07 and l_quantity < 24",
    )
    .unwrap();
    // Decompose by the three admissible discount values.
    let mut total = 0.0;
    for d in ["0.05", "0.06", "0.07"] {
        let part = query(
            &db,
            &format!(
                "select sum(l_extendedprice * l_discount) from lineitem \
                 where l_shipdate >= date '1994-01-01' \
                 and l_shipdate < date '1995-01-01' \
                 and l_discount = {d} and l_quantity < 24"
            ),
        )
        .unwrap();
        total += part.rows[0][0].as_f64().unwrap_or(0.0);
    }
    let got = q6.rows[0][0].as_f64().unwrap();
    assert!(
        (got - total).abs() < 1e-6 * got.abs().max(1.0),
        "q6 {got} != decomposed {total}"
    );
}

#[test]
fn tpch_q4_exists_matches_join_distinct() {
    let db = tpch::generate(0.002, 33);
    let q4 = query(
        &db,
        "select count(*) from orders \
         where o_orderdate >= date '1993-07-01' \
         and o_orderdate < date '1993-07-01' + interval '3' month \
         and exists (select 1 from lineitem where l_orderkey = o_orderkey \
                     and l_commitdate < l_receiptdate)",
    )
    .unwrap();
    let alt = query(
        &db,
        "select count(distinct o_orderkey) from orders, lineitem \
         where o_orderkey = l_orderkey and l_commitdate < l_receiptdate \
         and o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-10-01'",
    )
    .unwrap();
    assert_eq!(q4.rows[0][0], alt.rows[0][0]);
}

#[test]
fn tpch_q17_correlated_subquery_sane() {
    let db = tpch::generate(0.003, 34);
    // Q17 restricts to items whose quantity is below 20% of the part's
    // average quantity; the unrestricted revenue must be an upper bound.
    let restricted = query(
        &db,
        "select sum(l_extendedprice) from lineitem, part \
         where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX' \
         and l_quantity < (select 0.2 * avg(l2.l_quantity) from lineitem l2 \
                           where l2.l_partkey = p_partkey)",
    )
    .unwrap();
    let unrestricted = query(
        &db,
        "select sum(l_extendedprice) from lineitem, part \
         where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX'",
    )
    .unwrap();
    let r = restricted.rows[0][0].as_f64().unwrap_or(0.0);
    let u = unrestricted.rows[0][0].as_f64().unwrap_or(0.0);
    assert!(r <= u, "restricted {r} > unrestricted {u}");
    // With quantities uniform on 1..=50, the 20%-of-average cutoff (~5) is
    // rarely but not never met at this scale; both bounds are plausible.
}

#[test]
fn derived_table_average_matches_direct() {
    let db = world::generate(26);
    let via_derived = query(
        &db,
        "select avg(c) from (select CountryCode, count(*) as c from City group by CountryCode) as t",
    )
    .unwrap();
    let cities = query(&db, "select count(*) from City").unwrap().rows[0][0]
        .as_i64()
        .unwrap();
    let countries = query(&db, "select count(distinct CountryCode) from City")
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    let expect = cities as f64 / countries as f64;
    let got = via_derived.rows[0][0].as_f64().unwrap();
    assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
}

#[test]
fn nulls_propagate_through_aggregates() {
    let mut db = world::generate(27);
    // Null out some LifeExpectancy cells and verify AVG skips them.
    let le = db
        .table("Country")
        .unwrap()
        .schema
        .column_index("LifeExpectancy")
        .unwrap();
    for r in 0..10 {
        db.table_mut("Country")
            .unwrap()
            .set_cell(r, le, Value::Null);
    }
    let cnt_all = query(&db, "select count(*) from Country").unwrap().rows[0][0]
        .as_i64()
        .unwrap();
    let cnt_le = query(&db, "select count(LifeExpectancy) from Country")
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(cnt_le, cnt_all - 10);
    let avg = query(&db, "select avg(LifeExpectancy) from Country")
        .unwrap()
        .rows[0][0]
        .as_f64()
        .unwrap();
    assert!((40.0..=85.0).contains(&avg), "avg over non-nulls: {avg}");
}
