//! Offline stand-in for the `criterion` crate, vendored so the benchmark
//! harness builds without network access. Implements the subset of the 0.5
//! API `benches/pricing.rs` uses: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — each benchmark runs a fixed number
//! of timed iterations and reports min/mean — but timings are real, so the
//! harness remains useful for relative comparisons in this repository.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then `samples` timed runs.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.timings.push(start.elapsed());
        }
    }
}

fn report(label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = timings.iter().min().unwrap();
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    println!(
        "{label:<50} min {:>12.3?}  mean {:>12.3?}  ({} samples)",
        min,
        mean,
        timings.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            timings: Vec::new(),
        };
        f(&mut b);
        report(&name.to_string(), &b.timings);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.bench_function(label, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .bench_function(label, |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group runner, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
