//! Offline stand-in for the `rand` crate, vendored so the workspace builds
//! without network access. Implements the subset of the 0.8 API this
//! repository uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and statistically more than adequate for support-set sampling and
//! synthetic data generation. It is NOT the upstream ChaCha12 `StdRng`, so
//! streams differ from real `rand`; within this repository all seeds are
//! self-consistent, which is all the tests and generators rely on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Seeds from a single `u64` (the only entry point this repo uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// A type that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = f64::generate(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let unit = f64::generate(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::generate(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline `StdRng` substitute).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
