//! Offline stand-in for the `loom` crate, vendored so the concurrency
//! models build without network access.
//!
//! **What this is and is not.** Real loom is an exhaustive permutation
//! tester: it runs a model under a cooperative scheduler and explores
//! every distinguishable interleaving (DPOR). This stand-in is *not* that.
//! [`model`] runs the closure a few hundred times on real OS threads,
//! injecting deterministic, seeded yields and spin-delays before and after
//! every atomic operation. Each iteration uses a different perturbation
//! seed, so the runs sample a far wider range of interleavings than a
//! plain stress test — including the "worker stalls mid-chunk" and
//! "spawn completes before first steal" schedules that a free-running
//! loop almost never hits — but coverage is probabilistic, not exhaustive.
//!
//! The API mirrors the subset of loom the models use (`loom::model`,
//! `loom::thread::spawn`, `loom::sync::Arc`,
//! `loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering}`), so swapping
//! in the real crate later requires only a Cargo.toml change.
//!
//! Determinism: every delay decision derives from a per-iteration seed and
//! a per-thread spawn index via SplitMix64/xorshift — no wall clock, no
//! OS entropy — so a failing iteration number reproduces its schedule
//! pressure (subject to the OS scheduler, which real loom replaces).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering as O};

/// Seed of the iteration currently executing inside [`model`].
static ITER_SEED: AtomicU64 = AtomicU64::new(0);
/// Spawn counter: gives each model thread a distinct perturbation stream.
static SPAWN_IDX: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread xorshift state; 0 means "not yet derived".
    static SCHED: Cell<u64> = const { Cell::new(0) };
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic preemption point: sometimes yields the OS slice,
/// sometimes spins, mostly does nothing — the mix varies per seed.
fn perturb() {
    SCHED.with(|s| {
        let mut x = s.get();
        if x == 0 {
            x = splitmix(ITER_SEED.load(O::Relaxed) ^ SPAWN_IDX.fetch_add(1, O::Relaxed)) | 1;
        }
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        s.set(x);
        match x % 13 {
            0 | 1 => std::thread::yield_now(),
            2 => {
                for _ in 0..(x >> 32) % 256 {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    });
}

/// Runs `f` repeatedly under varied schedule perturbation. The iteration
/// count defaults to 200 and can be overridden with `LOOM_ITERS` (the CI
/// loom lane raises it; local quick runs can lower it).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for it in 0..iters {
        ITER_SEED.store(splitmix(it.wrapping_add(1)), O::Relaxed);
        SPAWN_IDX.store(0, O::Relaxed);
        SCHED.with(|s| s.set(0));
        f();
    }
}

pub mod thread {
    use super::{perturb, SCHED};

    /// A join handle mirroring `loom::thread::JoinHandle`.
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns a model thread with its own perturbation stream.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle(std::thread::spawn(move || {
            // Fresh stream: derived lazily from ITER_SEED + spawn index on
            // the first perturbation point this thread hits.
            SCHED.with(|s| s.set(0));
            perturb();
            f()
        }))
    }

    pub fn yield_now() {
        std::thread::yield_now();
    }
}

pub mod sync {
    pub use std::sync::Arc;
    pub use std::sync::Mutex;

    pub mod atomic {
        use super::super::perturb;
        pub use std::sync::atomic::Ordering;

        /// `AtomicUsize` with perturbation points around every access.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            pub fn new(v: usize) -> Self {
                AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
            }

            pub fn load(&self, order: Ordering) -> usize {
                perturb();
                self.0.load(order)
            }

            pub fn store(&self, v: usize, order: Ordering) {
                perturb();
                self.0.store(v, order);
                perturb();
            }

            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                perturb();
                let out = self.0.fetch_add(v, order);
                perturb();
                out
            }

            #[allow(clippy::result_unit_err)] // mirrors std's CAS signature shape
            pub fn compare_exchange(
                &self,
                current: usize,
                new: usize,
                success: Ordering,
                failure: Ordering,
            ) -> Result<usize, usize> {
                perturb();
                let out = self.0.compare_exchange(current, new, success, failure);
                perturb();
                out
            }
        }

        /// `AtomicBool` with perturbation points around every access.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub fn new(v: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            pub fn load(&self, order: Ordering) -> bool {
                perturb();
                self.0.load(order)
            }

            pub fn store(&self, v: bool, order: Ordering) {
                perturb();
                self.0.store(v, order);
                perturb();
            }
        }
    }
}
