//! Offline stand-in for the `proptest` crate, vendored so the workspace
//! builds without network access. Implements the subset of the v1 API this
//! repository's property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) and `prop_assert!` / `prop_assert_eq!`;
//! * [`Strategy`] with `prop_map` and `boxed`, [`Just`], [`any`],
//!   [`prop_oneof!`], tuple strategies, numeric-range strategies, and a
//!   small `[class]{m,n}`-style string-regex strategy;
//! * `prop::collection::vec` and `prop::option::of`.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics with the generated inputs via the normal assert message. Case
//! generation is deterministic per test (seeded from the test name), so
//! failures reproduce exactly on re-run.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Test-case RNG (self-contained; independent of the vendored `rand` stub)
// ---------------------------------------------------------------------------

/// Deterministic generator driving test-case production.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a hash used to derive per-test seeds from test names.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Runner configuration (field-compatible subset of proptest's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of [`Strategy`], for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally weighted alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].sample(rng)
    }
}

// --- numeric ranges ---------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// --- tuples -----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// --- string regex subset ----------------------------------------------------

/// `&str` as a strategy: a tiny regex subset — a sequence of literal chars
/// or `[...]` classes (with `a-z` ranges), each optionally quantified by
/// `{n}`, `{m,n}`, `*` (0..=8), or `+` (1..=8).
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = *lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(chars[rng.below(chars.len())]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let class: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in a..=b {
                            set.push(char::from_u32(c).unwrap());
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!class.is_empty(), "empty character class in {pat:?}");
        // Quantifier.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().expect("bad quantifier"),
                    b.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else {
            (1, 1)
        };
        assert!(lo <= hi, "bad quantifier in {pat:?}");
        atoms.push((class, lo, hi));
    }
    atoms
}

// --- any --------------------------------------------------------------------

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix finite magnitudes with the special values proptest exercises.
        match rng.next_u64() % 16 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            _ => {
                let mag = (rng.unit_f64() - 0.5) * 2.0;
                let exp = (rng.next_u64() % 61) as i32 - 30;
                mag * 10f64.powi(exp)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // ASCII printable, mostly; occasionally something wider.
        if rng.below(8) == 0 {
            char::from_u32(0xA0 + (rng.next_u64() % 0x500) as u32).unwrap_or('¿')
        } else {
            (0x20u8 + (rng.next_u64() % 0x5F) as u8) as char
        }
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Same bias as upstream's default: None one time in four.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// A strategy for `Option<T>` from a strategy for `T`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Each declared function runs `cases` times with
/// freshly sampled inputs; a panic (from `prop_assert!` et al.) fails the
/// test and the message includes the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x2545F4914F6CDD1D));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($strat)),+] }
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = crate::TestRng::new(5);
        for _ in 0..200 {
            let s = crate::Strategy::sample(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0i64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn oneof_and_map_work(x in prop_oneof![Just(1i64), (10i64..20).prop_map(|v| v * 2)]) {
            prop_assert!(x == 1 || (20..40).contains(&x));
        }

        #[test]
        fn options_sometimes_none(o in prop::option::of(0u8..5)) {
            if let Some(v) = o { prop_assert!(v < 5); }
        }
    }
}
