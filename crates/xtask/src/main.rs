//! `cargo xtask` — workspace automation CLI.
//!
//! Subcommands:
//! * `lint [FILE…]` — run the qirana-lint pass (QL001–QL009) over the
//!   whole workspace, or over the given files only. Exits nonzero when
//!   any diagnostic is emitted.
//! * `lint --explain QLxxx` — print one lint's rationale, example, and
//!   waiver syntax.
//! * `graph [OUT_DIR]` — build the workspace call graph and write
//!   deterministic `graph.dot` + `graph.json` artifacts (default
//!   `target/qirana-graph`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("graph") => graph(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask lint [FILE…]\n\
         \x20      cargo xtask lint --explain QLxxx\n\
         \x20      cargo xtask graph [OUT_DIR]\n\n\
         `lint` runs the qirana-lint determinism/correctness passes —\n\
         per-file QL001–QL006 plus the interprocedural QL007–QL009 over the\n\
         workspace call graph — on every library source file (default) or\n\
         on the listed files. Diagnostics are `path:line: [QLxxx] message`;\n\
         waive a site with `// qirana-lint::allow(QLxxx): <reason>`.\n\
         `lint --explain QLxxx` prints one rule's rationale and waiver\n\
         syntax. `graph` emits the call graph as deterministic DOT + JSON\n\
         artifacts (default `target/qirana-graph`).\n\
         See DESIGN.md §6 (per-file rules) and §10 (interprocedural)."
    );
}

fn lint(args: &[String]) -> ExitCode {
    if args.first().map(String::as_str) == Some("--explain") {
        return explain(args.get(1).map(String::as_str));
    }
    let root = workspace_root();
    let diags = if args.is_empty() {
        match xtask::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("xtask lint: cannot walk workspace: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut sources = Vec::new();
        for f in args {
            let path = PathBuf::from(f);
            match std::fs::read_to_string(&path) {
                Ok(src) => sources.push((xtask::walk::display_path(&root, &path), src)),
                Err(e) => {
                    eprintln!("xtask lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        xtask::lint_sources(sources)
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("qirana-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("qirana-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn explain(code: Option<&str>) -> ExitCode {
    match code.and_then(xtask::lints::Lint::parse) {
        Some(lint) => {
            println!("{}", lint.explain());
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<&str> = xtask::lints::Lint::ALL.iter().map(|l| l.code()).collect();
            eprintln!(
                "xtask lint --explain: expected a lint code ({})",
                known.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

fn graph(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let out_dir = args
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| root.join("target/qirana-graph"));
    let g = match xtask::build_workspace_graph(&root) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("xtask graph: cannot build workspace graph: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask graph: cannot create {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    let dot = out_dir.join("graph.dot");
    let json = out_dir.join("graph.json");
    if let Err(e) =
        std::fs::write(&dot, g.to_dot()).and_then(|()| std::fs::write(&json, g.to_json()))
    {
        eprintln!("xtask graph: cannot write artifacts: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "qirana-graph: {} nodes, {} edges -> {} + {}",
        g.nodes.len(),
        g.edges.len(),
        dot.display(),
        json.display()
    );
    ExitCode::SUCCESS
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
