//! `cargo xtask` — workspace automation CLI.
//!
//! Subcommands:
//! * `lint [FILE…]` — run the qirana-lint pass (QL001–QL006) over the
//!   whole workspace, or over the given files only. Exits nonzero when
//!   any diagnostic is emitted.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`\n");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask lint [FILE…]\n\n\
         Runs the qirana-lint determinism/correctness pass (QL001–QL006)\n\
         over every library source file in the workspace (default) or over\n\
         the listed files. Diagnostics are `path:line: [QLxxx] message`;\n\
         waive a site with `// qirana-lint::allow(QLxxx): <reason>`.\n\
         See DESIGN.md §6."
    );
}

fn lint(files: &[String]) -> ExitCode {
    let root = workspace_root();
    let diags = if files.is_empty() {
        match xtask::lint_workspace(&root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("xtask lint: cannot walk workspace: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut out = Vec::new();
        for f in files {
            let path = PathBuf::from(f);
            match std::fs::read_to_string(&path) {
                Ok(src) => out.extend(xtask::lint_source(
                    &xtask::walk::display_path(&root, &path),
                    &src,
                )),
                Err(e) => {
                    eprintln!("xtask lint: cannot read {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        out.sort();
        out
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("qirana-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("qirana-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
