//! Path-insensitive name resolution: call expressions → graph edges.
//!
//! Full Rust name resolution needs type inference; the lint graph
//! deliberately settles for a conservative over-approximation that can
//! only err toward *more* edges (a lint that walks extra edges reports a
//! superset, never a miss):
//!
//! * **Bare calls** `f(…)` resolve in narrowing tiers — same file, then
//!   same crate, then whole workspace — to every non-method `fn` named
//!   `f` in the first non-empty tier. Imports are not chased; the crate
//!   tier covers the overwhelmingly common `use crate::…` case.
//! * **Path calls** `q::f(…)` keep only the last qualifier segment and
//!   match it against a candidate's impl/trait scope, file module, or
//!   crate name (`Self`/`self` resolve within the caller's own impl
//!   scope, `crate::` within the caller's crate). Same-crate candidates
//!   win over cross-crate ones when both match.
//! * **Method calls** `recv.f(…)` have no receiver type available, so
//!   they resolve to **every** workspace method named `f` that takes
//!   `self`. This is the big over-approximation; DESIGN.md §10 discusses
//!   the tradeoff.
//!
//! Calls that match nothing (std/vendored callees) produce no edge.

use crate::graph::{AnalyzedFile, Edge, FnNode};
use crate::parser::CallKind;
use std::collections::BTreeMap;

/// Resolves every call in every node to zero or more edges.
pub fn resolve_calls(files: &[AnalyzedFile], nodes: &[FnNode]) -> Vec<Edge> {
    // Name → node indices, in node order (deterministic).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name
            .entry(files[n.file].parsed.items[n.item].name.as_str())
            .or_default()
            .push(i);
    }

    let mut edges = Vec::new();
    for (from, n) in nodes.iter().enumerate() {
        let item = &files[n.file].parsed.items[n.item];
        for call in &item.calls {
            let candidates = by_name
                .get(call.name.as_str())
                .map_or(&[][..], Vec::as_slice);
            let resolved: Vec<usize> = match call.kind {
                CallKind::Method => candidates
                    .iter()
                    .copied()
                    .filter(|&c| nodes[c].has_self)
                    .collect(),
                CallKind::Path => {
                    resolve_path(files, nodes, from, call.qualifier.as_deref(), candidates)
                }
                CallKind::Bare => resolve_bare(nodes, from, candidates),
            };
            for to in resolved {
                edges.push(Edge {
                    from,
                    to,
                    call_tok: call.tok,
                    line: call.line,
                });
            }
        }
    }
    edges
}

/// `q::f(…)`: match the qualifier against scope/module/crate names.
fn resolve_path(
    files: &[AnalyzedFile],
    nodes: &[FnNode],
    from: usize,
    qualifier: Option<&str>,
    candidates: &[usize],
) -> Vec<usize> {
    let caller = &nodes[from];
    let q = match qualifier {
        Some(q) => q,
        // A leading-`::` or macro-mangled path: fall back to bare rules.
        None => return resolve_bare(nodes, from, candidates),
    };
    if q == "Self" || q == "self" {
        // Associated call within the caller's own impl/trait scope.
        let caller_scope = &files[caller.file].parsed.items[caller.item].scope;
        return candidates
            .iter()
            .copied()
            .filter(|&c| {
                nodes[c].file == caller.file
                    && &files[nodes[c].file].parsed.items[nodes[c].item].scope == caller_scope
            })
            .collect();
    }
    let matched: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| {
            let node = &nodes[c];
            if q == "crate" {
                return node.krate == caller.krate;
            }
            let scope = &files[node.file].parsed.items[node.item].scope;
            scope.last().is_some_and(|s| s == q)
                || node.module.last().is_some_and(|s| s == q)
                || node.krate == q
                || qualifier_names_crate(q, &node.krate)
        })
        .collect();
    // Same-crate candidates shadow cross-crate ones.
    let local: Vec<usize> = matched
        .iter()
        .copied()
        .filter(|&c| nodes[c].krate == caller.krate)
        .collect();
    if local.is_empty() {
        matched
    } else {
        local
    }
}

/// True when path qualifier `q` is the package-style name of crate
/// directory `krate` (`qirana_core` names `crates/core`).
fn qualifier_names_crate(q: &str, krate: &str) -> bool {
    q.strip_prefix("qirana_")
        .is_some_and(|rest| rest == krate || rest.replace('_', "-") == krate)
}

/// `f(…)`: same file, then same crate, then workspace; methods excluded.
fn resolve_bare(nodes: &[FnNode], from: usize, candidates: &[usize]) -> Vec<usize> {
    let caller = &nodes[from];
    let free: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| !nodes[c].has_self)
        .collect();
    let same_file: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&c| nodes[c].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&c| nodes[c].krate == caller.krate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    free
}

#[cfg(test)]
mod tests {
    use crate::graph::build;

    fn edge_fqns(g: &crate::graph::WorkspaceGraph) -> Vec<(String, String)> {
        g.edges
            .iter()
            .map(|e| (g.nodes[e.from].fqn.clone(), g.nodes[e.to].fqn.clone()))
            .collect()
    }

    #[test]
    fn bare_calls_prefer_same_file_then_crate() {
        let g = build(vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub fn caller() { helper(); }\nfn helper() {}\n".to_string(),
            ),
            (
                "crates/core/src/b.rs".to_string(),
                "pub fn helper() {}\n".to_string(),
            ),
        ]);
        assert_eq!(
            edge_fqns(&g),
            vec![("core::a::caller".to_string(), "core::a::helper".to_string())]
        );
    }

    #[test]
    fn bare_calls_fall_through_to_other_crates() {
        let g = build(vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub fn caller() { shared(); }\n".to_string(),
            ),
            (
                "crates/sqlengine/src/b.rs".to_string(),
                "pub fn shared() {}\n".to_string(),
            ),
        ]);
        assert_eq!(
            edge_fqns(&g),
            vec![(
                "core::a::caller".to_string(),
                "sqlengine::b::shared".to_string()
            )]
        );
    }

    #[test]
    fn path_qualifier_selects_module_and_crate() {
        let g = build(vec![
            (
                "crates/core/src/a.rs".to_string(),
                "pub fn caller() { ledger::open(); qirana_sqlengine::run(); }\n".to_string(),
            ),
            (
                "crates/core/src/ledger.rs".to_string(),
                "pub fn open() {}\n".to_string(),
            ),
            (
                "crates/sqlengine/src/lib.rs".to_string(),
                "pub fn run() {}\npub fn open() {}\n".to_string(),
            ),
        ]);
        assert_eq!(
            edge_fqns(&g),
            vec![
                (
                    "core::a::caller".to_string(),
                    "core::ledger::open".to_string()
                ),
                ("core::a::caller".to_string(), "sqlengine::run".to_string()),
            ]
        );
    }

    #[test]
    fn self_paths_stay_in_the_impl_scope() {
        let src = "impl A { pub fn f(&self) { Self::g(); } fn g() {} }\n\
                   impl B { fn g() {} }\n";
        let g = build(vec![("crates/core/src/a.rs".to_string(), src.to_string())]);
        assert_eq!(
            edge_fqns(&g),
            vec![("core::a::A::f".to_string(), "core::a::A::g".to_string())]
        );
    }

    #[test]
    fn method_calls_over_approximate_by_name() {
        let src = "impl A { pub fn run(&self) { self.step(); } fn step(&self) {} }\n\
                   impl B { fn step(&self) {} }\nfn step() {}\n";
        let g = build(vec![("crates/core/src/a.rs".to_string(), src.to_string())]);
        // Both `A::step` and `B::step` (self-taking) are candidates; the
        // free fn `step` is not.
        assert_eq!(
            edge_fqns(&g),
            vec![
                (
                    "core::a::A::run".to_string(),
                    "core::a::A::step".to_string()
                ),
                (
                    "core::a::A::run".to_string(),
                    "core::a::B::step".to_string()
                ),
            ]
        );
    }

    #[test]
    fn unresolved_std_calls_produce_no_edges() {
        let g = build(vec![(
            "crates/core/src/a.rs".to_string(),
            "pub fn f() { Vec::new(); format(); }\n".to_string(),
        )]);
        assert!(g.edges.is_empty());
    }
}
