//! Workspace file discovery for the lint pass.
//!
//! The pass covers every `src/**/*.rs` of every workspace crate (including
//! this one — the linter must keep itself clean) plus the root facade's
//! `src/`. Integration tests, benches, examples, fixtures, and the
//! `vendor/` stand-ins are out of scope: QL001–QL006 guard *library code
//! paths*, and vendored third-party stand-ins follow upstream's API, not
//! our invariants.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// All lintable source files under `root` (a workspace root), sorted so
/// diagnostics are stable across runs and platforms.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repo-relative, `/`-separated display path for diagnostics.
pub fn display_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
