//! Workspace-wide call graph for the interprocedural lints.
//!
//! [`build`] lexes and parses every given file ([`crate::parser`]),
//! assigns each `fn` item a [`FnNode`] with a fully-qualified display name
//! (`crate::module::Impl::name`), scans each body for the *sites* the
//! graph lints care about (panic sites for QL007, hash-iteration sites
//! for QL008, broker mutation/ledger-append sites for QL009), and resolves
//! call expressions into edges ([`crate::resolve`]).
//!
//! Everything here is deterministic by construction — files arrive sorted,
//! nodes follow file/parse order, edges are sorted and deduplicated — so
//! the DOT/JSON artifacts emitted by `cargo xtask graph` are byte-identical
//! across runs (CI diffs two consecutive runs to enforce this).

use crate::analysis::FileContext;
use crate::lexer::{Tok, TokKind};
use crate::parser::{self, ParsedFile, Vis};
use crate::resolve;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// One analyzed source file: lint context plus parsed items.
pub struct AnalyzedFile {
    pub ctx: FileContext,
    pub parsed: ParsedFile,
}

/// A token position a graph lint may report, with a short description of
/// what sits there (`.unwrap()`, `buyers.insert`, …).
#[derive(Debug, Clone)]
pub struct Site {
    /// Code-token index (into the owning file's code view).
    pub tok: usize,
    pub line: u32,
    pub what: String,
}

/// One function in the workspace graph.
pub struct FnNode {
    /// Index into [`WorkspaceGraph::files`].
    pub file: usize,
    /// Index into that file's `parsed.items`.
    pub item: usize,
    /// Display name: `crate::module::Scope::name`.
    pub fqn: String,
    /// Crate directory name (`core`, `sqlengine`, …; root facade `qirana`).
    pub krate: String,
    /// Module path derived from the file path (not inline `mod`s — those
    /// live in the item's scope).
    pub module: Vec<String>,
    pub vis: Vis,
    pub has_self: bool,
    /// Code-token index of the `fn` keyword.
    pub decl: usize,
    pub line: u32,
    /// QL003-pattern sites in the body (QL007 raw material).
    pub panic_sites: Vec<Site>,
    /// QL001-pattern sites in the body (QL008 raw material).
    pub hash_sites: Vec<Site>,
    /// Broker account/database mutation sites (QL009 raw material);
    /// empty outside the broker module.
    pub mutation_sites: Vec<Site>,
    /// Code-token indices of `ledger.append(…)` calls in the body.
    pub append_sites: Vec<usize>,
}

impl FnNode {
    /// All addressing segments: file-derived module path followed by the
    /// in-file scope (inline mods, impl/trait self-types, enclosing fns).
    pub fn segments<'a>(&'a self, files: &'a [AnalyzedFile]) -> Vec<&'a str> {
        let scope = &files[self.file].parsed.items[self.item].scope;
        self.module
            .iter()
            .map(String::as_str)
            .chain(scope.iter().map(String::as_str))
            .collect()
    }

    /// True when any addressing segment equals `seg`.
    pub fn in_module(&self, files: &[AnalyzedFile], seg: &str) -> bool {
        self.segments(files).contains(&seg)
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    /// Code-token index of the call site in `from`'s file.
    pub call_tok: usize,
    /// Line of the call site.
    pub line: u32,
}

/// The workspace call graph.
pub struct WorkspaceGraph {
    pub files: Vec<AnalyzedFile>,
    pub nodes: Vec<FnNode>,
    /// Sorted by `(from, to, call_tok)`, deduplicated.
    pub edges: Vec<Edge>,
    /// Outgoing edge indices per node, in `edges` order.
    pub adj: Vec<Vec<usize>>,
}

/// Builds the graph from `(display_path, source)` pairs. Callers pass
/// paths sorted (the workspace walker already does) so node ids are
/// stable; fixture tests pass a single file.
pub fn build(sources: Vec<(String, String)>) -> WorkspaceGraph {
    let files: Vec<AnalyzedFile> = sources
        .into_iter()
        .map(|(path, src)| {
            let ctx = FileContext::new(&path, &src);
            let parsed = parser::parse_file(&ctx);
            AnalyzedFile { ctx, parsed }
        })
        .collect();

    let mut nodes = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let (krate, module) = crate_and_module(&file.ctx.path);
        let hash_names = hash_typed_names(&file.ctx.code);
        for (ii, item) in file.parsed.items.iter().enumerate() {
            let mut fqn = String::new();
            for seg in std::iter::once(krate.as_str())
                .chain(module.iter().map(String::as_str))
                .chain(item.scope.iter().map(String::as_str))
            {
                if !fqn.is_empty() {
                    fqn.push_str("::");
                }
                fqn.push_str(seg);
            }
            if !fqn.is_empty() {
                fqn.push_str("::");
            }
            fqn.push_str(&item.name);
            let mut node = FnNode {
                file: fi,
                item: ii,
                fqn,
                krate: krate.clone(),
                module: module.clone(),
                vis: item.vis,
                has_self: item.has_self,
                decl: item.decl,
                line: item.line,
                panic_sites: Vec::new(),
                hash_sites: Vec::new(),
                mutation_sites: Vec::new(),
                append_sites: Vec::new(),
            };
            if let Some(body) = item.body.clone() {
                scan_panic_sites(&file.ctx, body.clone(), &mut node.panic_sites);
                scan_hash_sites(&file.ctx, body.clone(), &hash_names, &mut node.hash_sites);
                // The WAL-discipline scan covers the broker itself and the
                // server's commit handlers: both layers may mutate market
                // state, so both must append before applying.
                let in_commit_scope = krate == "server"
                    || module.iter().any(|s| s == "broker" || s == "server")
                    || item.scope.iter().any(|s| s == "broker" || s == "server");
                if in_commit_scope {
                    scan_mutation_sites(&file.ctx, body.clone(), &mut node.mutation_sites);
                    node.append_sites = scan_append_sites(&file.ctx, body);
                }
            }
            nodes.push(node);
        }
    }

    let mut edges = resolve::resolve_calls(&files, &nodes);
    edges.sort();
    edges.dedup();
    let mut adj = vec![Vec::new(); nodes.len()];
    for (ei, e) in edges.iter().enumerate() {
        adj[e.from].push(ei);
    }
    WorkspaceGraph {
        files,
        nodes,
        edges,
        adj,
    }
}

/// Splits a display path into (crate name, module path). `crates/X/src/…`
/// belongs to crate `X`; the root facade `src/…` is crate `qirana`; bare
/// fixture paths become crate `fixture` with the file stem as module.
fn crate_and_module(path: &str) -> (String, Vec<String>) {
    let segs: Vec<&str> = path.split('/').collect();
    let (krate, rest): (&str, &[&str]) =
        if segs.len() > 3 && segs[0] == "crates" && segs[2] == "src" {
            (segs[1], &segs[3..])
        } else if segs.len() > 1 && segs[0] == "src" {
            ("qirana", &segs[1..])
        } else {
            ("fixture", &segs[segs.len().saturating_sub(1)..])
        };
    let mut module = Vec::new();
    for (i, seg) in rest.iter().enumerate() {
        if i + 1 == rest.len() {
            let stem = seg.strip_suffix(".rs").unwrap_or(seg);
            if !matches!(stem, "lib" | "main" | "mod") {
                module.push(stem.to_string());
            }
        } else {
            module.push((*seg).to_string());
        }
    }
    (krate.to_string(), module)
}

/// Names this file declares as `HashMap`/`HashSet` (same conservative
/// intra-file rule as QL001 in `lints.rs`).
fn hash_typed_names(code: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 2..code.len() {
        if (code[i].is_ident("HashMap") || code[i].is_ident("HashSet"))
            && (code[i - 1].is_punct(":") || code[i - 1].is_punct("="))
            && code[i - 2].kind == TokKind::Ident
        {
            names.insert(code[i - 2].text.clone());
        }
    }
    names
}

/// QL003 token patterns inside `range` (test regions skipped): the raw
/// panic sites QL007 propagates. QL003 waivers deliberately do **not**
/// remove a site here — a site may be locally sound yet still poison the
/// public API contract; QL007 has its own waiver channel.
fn scan_panic_sites(ctx: &FileContext, range: std::ops::Range<usize>, out: &mut Vec<Site>) {
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let code = &ctx.code;
    for i in range {
        if ctx.in_test(i) {
            continue;
        }
        let t = &code[i];
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!(".{}()", t.text),
            });
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && (i == 0 || !code[i - 1].is_punct("."))
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("{}!", t.text),
            });
        }
    }
}

/// QL001 token patterns inside `range`: hash-order iteration sites whose
/// values may flow into a fingerprint/price producer (QL008).
fn scan_hash_sites(
    ctx: &FileContext,
    range: std::ops::Range<usize>,
    hash_names: &BTreeSet<String>,
    out: &mut Vec<Site>,
) {
    const ORDER_DEPENDENT_METHODS: [&str; 8] = [
        "iter",
        "iter_mut",
        "into_iter",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
    ];
    if hash_names.is_empty() {
        return;
    }
    let code = &ctx.code;
    for i in range {
        if ctx.in_test(i) {
            continue;
        }
        if code[i].kind == TokKind::Ident
            && ORDER_DEPENDENT_METHODS.contains(&code[i].text.as_str())
            && i >= 2
            && code[i - 1].is_punct(".")
            && code[i - 2].kind == TokKind::Ident
            && hash_names.contains(code[i - 2].text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            out.push(Site {
                tok: i,
                line: code[i].line,
                what: format!("{}.{}()", code[i - 2].text, code[i].text),
            });
        }
        if code[i].is_ident("for") {
            if let Some((j, name)) = for_loop_target(code, i) {
                if hash_names.contains(name) {
                    out.push(Site {
                        tok: j,
                        line: code[j].line,
                        what: format!("for … in {name}"),
                    });
                }
            }
        }
    }
}

/// Mirrors `lints::for_loop_target` (kept private there; the shapes the
/// two passes accept must stay identical, pinned by the QL008 fixtures).
fn for_loop_target(code: &[Tok], i: usize) -> Option<(usize, &str)> {
    let mut j = i + 1;
    let mut guard = 0;
    while j < code.len() && !code[j].is_ident("in") {
        j += 1;
        guard += 1;
        if guard > 24 {
            return None;
        }
    }
    let mut k = j + 1;
    while k < code.len() && (code[k].is_punct("&") || code[k].is_ident("mut")) {
        k += 1;
    }
    if code.get(k).map(|t| t.kind) == Some(TokKind::Ident)
        && code.get(k + 1).is_some_and(|t| t.is_punct("{"))
    {
        return Some((k, &code[k].text));
    }
    None
}

/// Broker account/database mutation sites (QL009). The patterns encode
/// the broker's actual durable-state surface: applying a seller update or
/// write batch to the live database, and mutating per-buyer account state
/// (`buyers` map entries, `paid`/`charged` fields, purchase `history`).
fn scan_mutation_sites(ctx: &FileContext, range: std::ops::Range<usize>, out: &mut Vec<Site>) {
    let code = &ctx.code;
    for i in range {
        if ctx.in_test(i) {
            continue;
        }
        let t = &code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Applying updates/writes to the live database.
        if (t.is_ident("apply_update_sql") || t.is_ident("apply_writes"))
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("{}(…)", t.text),
            });
            continue;
        }
        let after_dot = i >= 1 && code[i - 1].is_punct(".");
        // `….buyers.insert/entry/remove/clear(…)`.
        if after_dot
            && matches!(t.text.as_str(), "insert" | "entry" | "remove" | "clear")
            && i >= 2
            && code[i - 2].is_ident("buyers")
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: format!("buyers.{}(…)", t.text),
            });
            continue;
        }
        // `….history.push(…)`.
        if after_dot
            && t.is_ident("push")
            && i >= 3
            && code[i - 1].is_punct(".")
            && code[i - 2].is_ident("history")
            && code[i - 3].is_punct(".")
            && code.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            out.push(Site {
                tok: i,
                line: t.line,
                what: "history.push(…)".to_string(),
            });
            continue;
        }
        // `….paid = / += …`, `….charged = …` (plain assignment, not `==`).
        if after_dot && (t.is_ident("paid") || t.is_ident("charged")) {
            let assigns = match (code.get(i + 1), code.get(i + 2)) {
                (Some(a), Some(b)) if a.is_punct("=") => !b.is_punct("="),
                (Some(a), Some(b)) if a.is_punct("+") => b.is_punct("="),
                _ => false,
            };
            if assigns {
                out.push(Site {
                    tok: i,
                    line: t.line,
                    what: format!("{} assignment", t.text),
                });
            }
        }
    }
}

/// `ledger.append(…)` sites inside `range`. Recognizes a direct
/// `ledger.append(…)`, plus `.append(…)` on a binding the body visibly
/// takes from `self.ledger` (`let led = self.ledger…` /
/// `if let Some(led) = self.ledger…` / `Ok(led) = …self.ledger…`).
fn scan_append_sites(ctx: &FileContext, range: std::ops::Range<usize>) -> Vec<usize> {
    let code = &ctx.code;
    let mut ledger_bindings: BTreeSet<&str> = BTreeSet::new();
    ledger_bindings.insert("ledger");
    for i in range.clone() {
        // `… = self . ledger …` — walk back over the `=` to the binding.
        if code[i].is_ident("ledger")
            && i >= 3
            && code[i - 1].is_punct(".")
            && code[i - 2].is_ident("self")
            && code[i - 3].is_punct("=")
        {
            let j = i - 3;
            if j >= 1 && code[j - 1].kind == TokKind::Ident {
                // `let led = self.ledger…`
                ledger_bindings.insert(&code[j - 1].text);
            } else if j >= 3
                && code[j - 1].is_punct(")")
                && code[j - 2].kind == TokKind::Ident
                && code[j - 3].is_punct("(")
            {
                // `Some(led) = self.ledger…` / `Ok(led) = …`
                ledger_bindings.insert(&code[j - 2].text);
            }
        }
    }
    let mut sites = Vec::new();
    for i in range {
        if ctx.in_test(i) {
            continue;
        }
        if code[i].is_ident("append")
            && i >= 2
            && code[i - 1].is_punct(".")
            && code[i - 2].kind == TokKind::Ident
            && ledger_bindings.contains(code[i - 2].text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            sites.push(i);
        }
    }
    sites
}

impl WorkspaceGraph {
    /// Deterministic Graphviz DOT rendering: node ids are stable indices,
    /// labels are fully-qualified names, public API nodes are boxed,
    /// panic-site carriers are marked.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph qirana_call_graph {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.vis == Vis::Pub { "box" } else { "ellipse" };
            let mark = if n.panic_sites.is_empty() { "" } else { " ⚠" };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}{}\", shape={}];",
                i,
                escape(&n.fqn),
                mark,
                shape
            );
        }
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if seen.insert((e.from, e.to)) {
                let _ = writeln!(out, "  n{} -> n{};", e.from, e.to);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Deterministic JSON rendering (schema `qirana-graph/v1`): node and
    /// edge arrays in stable order, no timestamps, hand-escaped strings.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"qirana-graph/v1\",\n  \"nodes\": [\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let vis = match n.vis {
                Vis::Pub => "pub",
                Vis::Scoped => "scoped",
                Vis::Private => "private",
            };
            let _ = write!(
                out,
                "    {{\"id\": {}, \"fqn\": \"{}\", \"crate\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"vis\": \"{}\", \"has_self\": {}, \"panic_sites\": {}, \
                 \"hash_iter_sites\": {}, \"mutation_sites\": {}, \"append_sites\": {}}}",
                i,
                escape(&n.fqn),
                escape(&n.krate),
                escape(&self.files[n.file].ctx.path),
                n.line,
                vis,
                n.has_self,
                n.panic_sites.len(),
                n.hash_sites.len(),
                n.mutation_sites.len(),
                n.append_sites.len(),
            );
            out.push_str(if i + 1 < self.nodes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"from\": {}, \"to\": {}, \"line\": {}}}",
                e.from, e.to, e.line
            );
            out.push_str(if i + 1 < self.edges.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for both DOT and JSON double-quoted contexts.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(path: &str, src: &str) -> WorkspaceGraph {
        build(vec![(path.to_string(), src.to_string())])
    }

    #[test]
    fn crate_and_module_paths() {
        assert_eq!(
            crate_and_module("crates/core/src/broker.rs"),
            ("core".to_string(), vec!["broker".to_string()])
        );
        assert_eq!(
            crate_and_module("crates/core/src/lib.rs"),
            ("core".to_string(), vec![])
        );
        assert_eq!(
            crate_and_module("src/lib.rs"),
            ("qirana".to_string(), vec![])
        );
        assert_eq!(
            crate_and_module("crates/sqlengine/src/exec/join.rs"),
            (
                "sqlengine".to_string(),
                vec!["exec".to_string(), "join".to_string()]
            )
        );
        assert_eq!(
            crate_and_module("ql007_fixture.rs"),
            ("fixture".to_string(), vec!["ql007_fixture".to_string()])
        );
    }

    #[test]
    fn nodes_carry_fqns_and_sites() {
        let g = graph_of(
            "crates/core/src/engine.rs",
            "pub fn price() -> f64 { helper().unwrap() }\nfn helper() -> Option<f64> { None }\n",
        );
        assert_eq!(g.nodes.len(), 2);
        assert_eq!(g.nodes[0].fqn, "core::engine::price");
        assert_eq!(g.nodes[0].panic_sites.len(), 1);
        assert_eq!(g.nodes[0].panic_sites[0].what, ".unwrap()");
        assert_eq!(g.nodes[1].fqn, "core::engine::helper");
    }

    #[test]
    fn edges_connect_caller_to_callee() {
        let g = graph_of(
            "crates/core/src/engine.rs",
            "pub fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        );
        let pairs: Vec<(usize, usize)> = g.edges.iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn broker_mutation_and_append_sites() {
        let src = "mod broker {\n  impl Qirana {\n    pub fn commit(&mut self) {\n      \
                   if let Some(led) = self.ledger.as_mut() { led.append(&ev).ok(); }\n      \
                   self.buyers.insert(k, v);\n      state.paid = total;\n      \
                   state.history.push(p);\n      apply_writes(&mut self.db, w);\n    }\n  }\n}\n";
        let g = graph_of("crates/core/src/lib.rs", src);
        let n = &g.nodes[0];
        assert_eq!(n.append_sites.len(), 1);
        let whats: Vec<&str> = n.mutation_sites.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(
            whats,
            vec![
                "buyers.insert(…)",
                "paid assignment",
                "history.push(…)",
                "apply_writes(…)"
            ]
        );
        // Every mutation here comes after the append.
        assert!(n.mutation_sites.iter().all(|s| s.tok > n.append_sites[0]));
    }

    #[test]
    fn artifacts_are_deterministic() {
        let src = "pub fn a() { b(); }\nfn b() {}\n";
        let g1 = graph_of("crates/core/src/engine.rs", src);
        let g2 = graph_of("crates/core/src/engine.rs", src);
        assert_eq!(g1.to_dot(), g2.to_dot());
        assert_eq!(g1.to_json(), g2.to_json());
        assert!(g1.to_json().contains("\"schema\": \"qirana-graph/v1\""));
    }

    #[test]
    fn comparison_is_not_a_paid_assignment() {
        let src = "mod broker {\n  fn check(&self) -> bool { self.paid == 1.0 }\n}\n";
        let g = graph_of("crates/core/src/lib.rs", src);
        assert!(g.nodes[0].mutation_sites.is_empty());
    }
}
