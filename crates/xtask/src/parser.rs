//! Item-level Rust parser on top of the lossless lexer.
//!
//! The interprocedural lints (QL007–QL009) need more than a token stream:
//! they need to know *which function* a token belongs to, how that
//! function is addressed (`crate::module::Type::name`), whether it is
//! public, and which other functions it calls. This module extracts
//! exactly that — a flat list of [`FnItem`]s per file, each carrying its
//! enclosing module/impl/trait scope, visibility, body token range, and
//! outgoing [`Call`] sites — and deliberately nothing more: expressions,
//! types, generics, and trait bounds are skipped over structurally (brace/
//! paren/angle matching) but never interpreted.
//!
//! The parser is a single linear pass over the non-comment token stream
//! with an explicit scope stack, so it is lossless in the sense that
//! matters for analysis: every `fn` item in the file — nested functions,
//! trait method signatures, functions inside `#[cfg(test)]` modules —
//! becomes exactly one [`FnItem`] (the round-trip test in
//! `tests/self_check.rs` pins this against the raw token stream for every
//! workspace source file).

use crate::analysis::FileContext;
use crate::lexer::{Tok, TokKind};
use std::ops::Range;

/// Item visibility, as far as the call-graph lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Vis {
    /// `pub` with no restriction: part of the crate's public API surface.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`: visible but not API.
    Scoped,
    /// No visibility qualifier.
    Private,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CallKind {
    /// `f(…)` — a bare name, resolved through the enclosing scopes.
    Bare,
    /// `a::b::f(…)` — a path; the last qualifier segment is kept.
    Path,
    /// `recv.f(…)` — a method; resolved conservatively by name.
    Method,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// The called name (last path segment).
    pub name: String,
    /// For [`CallKind::Path`], the segment before the name (`b` in
    /// `a::b::f`); `Self` is preserved verbatim.
    pub qualifier: Option<String>,
    pub kind: CallKind,
    /// Code-token index of the name token.
    pub tok: usize,
    pub line: u32,
}

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Enclosing in-file scope segments, outermost first: inline `mod`
    /// names, `impl` self-type names, `trait` names, and enclosing `fn`
    /// names (for nested functions).
    pub scope: Vec<String>,
    pub vis: Vis,
    /// Code-token index of the `fn` keyword.
    pub decl: usize,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// True when the first parameter is a `self` receiver.
    pub has_self: bool,
    /// Code-token range of the body between its braces; `None` for a
    /// bodyless trait-method signature.
    pub body: Option<Range<usize>>,
    /// Call expressions lexically inside this function's own body
    /// (excluding those inside nested `fn` items, which own theirs).
    pub calls: Vec<Call>,
}

/// Parse result for one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub items: Vec<FnItem>,
}

/// Keywords that look like calls when followed by `(` but never are.
const NON_CALL_KEYWORDS: [&str; 24] = [
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move",
    "ref", "mut", "where", "impl", "dyn", "use", "pub", "mod", "struct", "enum", "trait", "break",
];

#[derive(Debug)]
enum ScopeKind {
    /// `mod name { … }` — contributes a scope segment.
    Named(String),
    /// The body of the fn item at this index in `items`.
    Fn(usize),
    /// A brace construct we track only for nesting (e.g. `trait` with an
    /// unnamed header we could not interpret).
    Opaque,
}

struct Scope {
    kind: ScopeKind,
    /// Brace depth of the tokens *inside* this scope's body.
    body_depth: usize,
}

/// A scope whose opening `{` lies ahead at token index `open_tok`.
struct Pending {
    open_tok: usize,
    kind: ScopeKind,
}

/// Parses one analyzed file into its `fn` items and call sites.
pub fn parse_file(ctx: &FileContext) -> ParsedFile {
    Parser {
        code: &ctx.code,
        items: Vec::new(),
        scopes: Vec::new(),
        pending: Vec::new(),
        depth: 0,
    }
    .run()
}

struct Parser<'a> {
    code: &'a [Tok],
    items: Vec<FnItem>,
    scopes: Vec<Scope>,
    pending: Vec<Pending>,
    depth: usize,
}

impl Parser<'_> {
    fn run(mut self) -> ParsedFile {
        let code = self.code;
        let mut i = 0;
        while i < code.len() {
            let t = &code[i];
            if t.is_punct("{") {
                self.depth += 1;
                if let Some(pos) = self.pending.iter().position(|p| p.open_tok == i) {
                    let p = self.pending.remove(pos);
                    self.scopes.push(Scope {
                        kind: p.kind,
                        body_depth: self.depth,
                    });
                }
                i += 1;
                continue;
            }
            if t.is_punct("}") {
                self.depth = self.depth.saturating_sub(1);
                while self
                    .scopes
                    .last()
                    .is_some_and(|s| self.depth < s.body_depth)
                {
                    let closed = match self.scopes.pop() {
                        Some(s) => s,
                        None => break,
                    };
                    if let ScopeKind::Fn(item) = closed.kind {
                        // Close the body range at this `}` token.
                        if let Some(body) = &mut self.items[item].body {
                            body.end = i;
                        }
                    }
                }
                i += 1;
                continue;
            }
            if t.is_ident("mod")
                && code.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident)
                && code.get(i + 2).is_some_and(|n| n.is_punct("{"))
            {
                self.pending.push(Pending {
                    open_tok: i + 2,
                    kind: ScopeKind::Named(code[i + 1].text.clone()),
                });
                i += 2; // land on the `{`
                continue;
            }
            if t.is_ident("impl") {
                i = self.open_impl_or_trait(i, true);
                continue;
            }
            if t.is_ident("trait") && code.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) {
                i = self.open_impl_or_trait(i, false);
                continue;
            }
            if t.is_ident("fn") && code.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident) {
                i = self.fn_item(i);
                continue;
            }
            // A possible call site, attributed to the innermost open fn.
            if t.kind == TokKind::Ident
                && code.get(i + 1).is_some_and(|n| n.is_punct("("))
                && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            {
                if let Some(call) = self.classify_call(i) {
                    if let Some(item) = self.innermost_fn() {
                        self.items[item].calls.push(call);
                    }
                }
            }
            i += 1;
        }
        // Unterminated scopes (malformed input): close bodies at EOF so
        // downstream passes see a consistent view instead of panicking.
        while let Some(s) = self.scopes.pop() {
            if let ScopeKind::Fn(item) = s.kind {
                if let Some(body) = &mut self.items[item].body {
                    body.end = code.len();
                }
            }
        }
        ParsedFile { items: self.items }
    }

    /// Index of the innermost enclosing fn item, if any.
    fn innermost_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(item) => Some(item),
            _ => None,
        })
    }

    /// Current scope segments (module/impl/trait/fn names), outermost first.
    fn scope_path(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter_map(|s| match &s.kind {
                ScopeKind::Named(n) => Some(n.clone()),
                ScopeKind::Fn(item) => Some(self.items[*item].name.clone()),
                ScopeKind::Opaque => None,
            })
            .collect()
    }

    /// Handles an `impl`/`trait` header starting at `i`; registers the
    /// pending scope at the body `{` and returns the index to resume from.
    fn open_impl_or_trait(&mut self, i: usize, is_impl: bool) -> usize {
        let code = self.code;
        // Scan the header to its body `{` at bracket depth 0 (generics use
        // `<`/`>`, which the scan tracks so `Foo<{N}>`-free headers parse;
        // a `;` first means `impl Trait for Type;`-style nothing we track).
        let mut angle = 0i32;
        let mut j = i + 1;
        let mut self_ty: Option<String> = None;
        let mut after_for = false;
        let mut last_ident_at_top: Option<String> = None;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 {
                if t.is_punct("{") {
                    break;
                }
                if t.is_punct(";") {
                    return j + 1;
                }
                if t.is_ident("for") {
                    after_for = true;
                    last_ident_at_top = None;
                } else if t.is_ident("where") {
                    // Bounds follow; the self type is already known.
                    if self_ty.is_none() {
                        self_ty = last_ident_at_top.take();
                    }
                } else if t.kind == TokKind::Ident {
                    last_ident_at_top = Some(t.text.clone());
                    if after_for {
                        // First path: keep updating so `a::b::Type` ends on
                        // `Type`; `for` resets, so trait names are skipped.
                    }
                }
            }
            j += 1;
        }
        if self_ty.is_none() {
            self_ty = last_ident_at_top;
        }
        if j >= code.len() {
            return code.len();
        }
        let kind = match self_ty {
            Some(name) if is_impl || !name.is_empty() => ScopeKind::Named(name),
            _ => ScopeKind::Opaque,
        };
        self.pending.push(Pending { open_tok: j, kind });
        j // resume at the `{` so the main loop opens the scope
    }

    /// Handles a `fn` item starting at the `fn` keyword; records the item,
    /// registers its body scope, and returns the index to resume from.
    fn fn_item(&mut self, i: usize) -> usize {
        let code = self.code;
        let name = code[i + 1].text.clone();
        let vis = self.visibility_before(i);
        // Skip generics to the parameter list.
        let mut j = i + 2;
        if code.get(j).is_some_and(|t| t.is_punct("<")) {
            let mut angle = 0i32;
            while j < code.len() {
                if code[j].is_punct("<") {
                    angle += 1;
                } else if code[j].is_punct(">") {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Parameter list: match parens; detect a `self` receiver.
        let mut has_self = false;
        if code.get(j).is_some_and(|t| t.is_punct("(")) {
            let mut paren = 0i32;
            let open = j;
            while j < code.len() {
                if code[j].is_punct("(") {
                    paren += 1;
                } else if code[j].is_punct(")") {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                j += 1;
            }
            // First parameter: skip `&`, lifetimes, and `mut`.
            let mut k = open + 1;
            while code.get(k).is_some_and(|t| {
                t.is_punct("&") || t.is_ident("mut") || t.kind == TokKind::Lifetime
            }) {
                k += 1;
            }
            has_self = k <= j && code.get(k).is_some_and(|t| t.is_ident("self"));
            j += 1; // past the `)`
        }
        // Return type / where clause up to the body `{` or a `;`.
        let mut paren = 0i32;
        while j < code.len() {
            let t = &code[j];
            if t.is_punct("(") || t.is_punct("[") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                paren -= 1;
            } else if paren == 0 && t.is_punct("{") {
                break;
            } else if paren == 0 && t.is_punct(";") {
                // Bodyless signature (trait method / extern decl).
                self.items.push(FnItem {
                    name,
                    scope: self.scope_path(),
                    vis,
                    decl: i,
                    line: code[i].line,
                    has_self,
                    body: None,
                    calls: Vec::new(),
                });
                return j + 1;
            }
            j += 1;
        }
        let item = self.items.len();
        self.items.push(FnItem {
            name,
            scope: self.scope_path(),
            vis,
            decl: i,
            line: code[i].line,
            has_self,
            // The end is patched when the scope closes (EOF-tolerant).
            body: Some(j + 1..code.len()),
            calls: Vec::new(),
        });
        if j < code.len() {
            self.pending.push(Pending {
                open_tok: j,
                kind: ScopeKind::Fn(item),
            });
        }
        j // resume at the `{`
    }

    /// Visibility of the item whose defining keyword sits at `i`, read
    /// backwards over `const`/`async`/`unsafe`/`extern "C"` qualifiers.
    fn visibility_before(&self, i: usize) -> Vis {
        let code = self.code;
        let mut j = i;
        while j > 0 {
            let prev = &code[j - 1];
            if prev.is_ident("const")
                || prev.is_ident("async")
                || prev.is_ident("unsafe")
                || prev.is_ident("extern")
                || prev.kind == TokKind::Str
            {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            return Vis::Private;
        }
        if code[j - 1].is_ident("pub") {
            return Vis::Pub;
        }
        // `pub ( crate ) fn` — walk back over the parenthesized restriction.
        if code[j - 1].is_punct(")") {
            let mut k = j - 1;
            let mut paren = 0i32;
            loop {
                if code[k].is_punct(")") {
                    paren += 1;
                } else if code[k].is_punct("(") {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return Vis::Private;
                }
                k -= 1;
            }
            if k > 0 && code[k - 1].is_ident("pub") {
                return Vis::Scoped;
            }
        }
        Vis::Private
    }

    /// Classifies the identifier-before-`(` at `i` as a call site, or
    /// `None` for macro invocations (`name!(…)`, where the `!` follows the
    /// name — those are not calls) and struct-ish uses we cannot see.
    fn classify_call(&self, i: usize) -> Option<Call> {
        let code = self.code;
        let prev = i.checked_sub(1).map(|p| &code[p]);
        let name = code[i].text.clone();
        let line = code[i].line;
        match prev {
            Some(p) if p.is_punct(".") => Some(Call {
                name,
                qualifier: None,
                kind: CallKind::Method,
                tok: i,
                line,
            }),
            Some(p) if p.is_punct(":") && i >= 2 && code[i - 2].is_punct(":") => {
                let qualifier = i
                    .checked_sub(3)
                    .map(|q| &code[q])
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                Some(Call {
                    name,
                    qualifier,
                    kind: CallKind::Path,
                    tok: i,
                    line,
                })
            }
            Some(p) if p.is_punct("!") => None, // tail of `name!`? cannot happen; guard anyway
            _ => {
                // `name!(…)` macro invocations have the `!` *after* the
                // name, so they never reach here (the `(`-check fails);
                // this arm is plain `f(…)`.
                Some(Call {
                    name,
                    qualifier: None,
                    kind: CallKind::Bare,
                    tok: i,
                    line,
                })
            }
        }
    }
}

/// Counts the `fn`-item tokens in a code view: every `fn` keyword directly
/// followed by an identifier (function-pointer types are `fn (`, closures
/// have no `fn`). The round-trip test compares this against
/// [`ParsedFile::items`] for every workspace file.
pub fn count_fn_tokens(code: &[Tok]) -> usize {
    code.iter()
        .enumerate()
        .filter(|(i, t)| {
            t.is_ident("fn") && code.get(i + 1).map(|n| n.kind) == Some(TokKind::Ident)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&FileContext::new("crates/demo/src/lib.rs", src))
    }

    #[test]
    fn extracts_free_fns_with_visibility() {
        let p = parse(
            "pub fn api() { helper(); }\nfn helper() {}\npub(crate) fn mid() {}\n\
             pub const fn c() {}\n",
        );
        let names: Vec<(&str, Vis)> = p.items.iter().map(|f| (f.name.as_str(), f.vis)).collect();
        assert_eq!(
            names,
            vec![
                ("api", Vis::Pub),
                ("helper", Vis::Private),
                ("mid", Vis::Scoped),
                ("c", Vis::Pub),
            ]
        );
    }

    #[test]
    fn records_scope_for_mods_impls_and_traits() {
        let p = parse(
            "mod inner {\n  pub struct T;\n  impl T { pub fn m(&self) {} }\n  \
             trait Tr { fn sig(&self); fn with_default(&self) { self.sig(); } }\n}\n",
        );
        let m = &p.items[0];
        assert_eq!(m.name, "m");
        assert_eq!(m.scope, vec!["inner".to_string(), "T".to_string()]);
        assert!(m.has_self);
        let sig = &p.items[1];
        assert_eq!(sig.name, "sig");
        assert!(sig.body.is_none(), "trait signature has no body");
        assert_eq!(sig.scope, vec!["inner".to_string(), "Tr".to_string()]);
        let wd = &p.items[2];
        assert_eq!(wd.name, "with_default");
        assert!(wd.body.is_some());
    }

    #[test]
    fn impl_trait_for_type_uses_the_type_name() {
        let p = parse("impl std::fmt::Debug for Broker { fn fmt(&self) { render(); } }\n");
        assert_eq!(p.items[0].scope, vec!["Broker".to_string()]);
        let p2 = parse("impl<'a> Lexer<'a> { fn next_tok(&mut self) {} }\n");
        assert_eq!(p2.items[0].scope, vec!["Lexer".to_string()]);
    }

    #[test]
    fn classifies_bare_path_and_method_calls() {
        let p = parse(
            "fn f(x: T) {\n  helper(x);\n  module::helper2(x);\n  Type::assoc(x);\n  \
             x.method();\n  macro_like!(x);\n}\n",
        );
        let calls: Vec<(&str, CallKind, Option<&str>)> = p.items[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind, c.qualifier.as_deref()))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("helper", CallKind::Bare, None),
                ("helper2", CallKind::Path, Some("module")),
                ("assoc", CallKind::Path, Some("Type")),
                ("method", CallKind::Method, None),
            ]
        );
    }

    #[test]
    fn nested_fns_own_their_calls() {
        let p = parse("fn outer() {\n  fn inner() { deep(); }\n  shallow();\n}\n");
        assert_eq!(p.items.len(), 2);
        let outer = p
            .items
            .iter()
            .find(|f| f.name == "outer")
            .map(|f| f.calls.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
        let inner = p
            .items
            .iter()
            .find(|f| f.name == "inner")
            .map(|f| f.calls.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
        assert_eq!(outer, Some(vec!["shallow".to_string()]));
        assert_eq!(inner, Some(vec!["deep".to_string()]));
        // And the nested fn's scope includes the outer fn.
        let i = p.items.iter().find(|f| f.name == "inner");
        assert_eq!(i.map(|f| f.scope.clone()), Some(vec!["outer".to_string()]));
    }

    #[test]
    fn body_ranges_cover_exactly_the_braced_tokens() {
        let src = "fn f() { a(); }\nfn g() { b(); }\n";
        let ctx = FileContext::new("crates/demo/src/lib.rs", src);
        let p = parse_file(&ctx);
        for item in &p.items {
            let body = item.body.clone().map(|r| r.start..r.end);
            let r = match body {
                Some(r) => r,
                None => continue,
            };
            assert!(r.start <= r.end && r.end <= ctx.code.len());
            for c in &item.calls {
                assert!(r.contains(&c.tok), "call token inside body range");
            }
        }
    }

    #[test]
    fn fn_pointer_types_and_generics_do_not_confuse() {
        let p = parse(
            "fn takes(cb: fn(u32) -> u32) -> Vec<u32> { cb(1); Vec::new() }\n\
             fn generic<T: Clone>(t: T) where T: Send { t.clone(); }\n",
        );
        assert_eq!(p.items.len(), 2);
        assert_eq!(p.items[0].name, "takes");
        assert_eq!(p.items[1].name, "generic");
        assert_eq!(
            count_fn_tokens(&FileContext::new("x.rs", "fn a() {} fn(b) fn c();").code),
            2
        );
    }

    #[test]
    fn self_receiver_detection() {
        let p = parse(
            "impl T {\n  fn by_ref(&self) {}\n  fn by_mut(&mut self) {}\n  \
             fn by_val(self) {}\n  fn lifetimed<'a>(&'a self) {}\n  fn free(x: u32) {}\n}\n",
        );
        let selfs: Vec<bool> = p.items.iter().map(|f| f.has_self).collect();
        assert_eq!(selfs, vec![true, true, true, true, false]);
    }
}
