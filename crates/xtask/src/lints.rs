//! The qirana-lint rules: five repo-specific invariants, each born from a
//! real bug class (or bug class we refuse to admit) in this codebase
//! (see DESIGN.md §6).
//!
//! * **QL001** — nondeterministic iteration over `HashMap`/`HashSet`.
//!   Float accumulation is not associative, so hash-order iteration made
//!   two prices of the *same* partition differ in the last ulp (the PR 3
//!   entropy-pricing bug). Iterate a `BTreeMap`, a sorted vector, or
//!   first-appearance order instead.
//! * **QL002** — lossy `as f64` casts of (potentially) 64-bit integers.
//!   `i64 as f64` silently collapses distinct integers beyond 2^53; the
//!   PR 3 fingerprint bug priced `2^53` and `2^53 + 1` identically. Route
//!   exact conversions through `qirana_sqlengine::value::lossless_f64`.
//! * **QL003** — `unwrap()`/`expect()`/`panic!`-family calls in library
//!   code. The workspace has typed error channels (`EngineError`,
//!   `PricingError`, `SupportError`, `WeightError`); a malformed input
//!   must surface as one of those, not abort the broker. Tests and bins
//!   are exempt.
//! * **QL004** — unseeded randomness or wall-clock reads outside the
//!   budget/fault modules. Support generation, weights, and fault
//!   injection are all seed-driven so every price is replayable; an
//!   unseeded RNG or ambient clock read reintroduces nondeterminism.
//!   Also flags `DefaultHasher`/`RandomState`: their output is only
//!   stable within one compiler release, so any persisted or replayed
//!   artifact derived from them (update signatures, dedup keys) silently
//!   changes across toolchains — the PR 8 `SupportUpdate::signature`
//!   bug. Hash through `qirana_sqlengine::fingerprint` instead.
//! * **QL005** — direct filesystem writes (`std::fs::write`,
//!   `File::create`) outside the ledger module. Every durable market
//!   mutation must flow through the write-ahead log so crash recovery
//!   sees it; a stray `fs::write` is state the ledger cannot replay.
//!   Bins and tests are exempt.
//! * **QL006** — `println!`/`eprintln!`/`dbg!` in library code outside
//!   `core::telemetry`. Diagnostics belong in the telemetry sink (spans,
//!   counters, exporters) where they are structured, deterministic under
//!   the test clock, and silenceable; a stray print is an unstructured
//!   side channel that corrupts bench JSON on stdout. Bins and tests are
//!   exempt.
//!
//! Three further rules are **interprocedural**: they run over the
//! workspace call graph ([`crate::graph`]) instead of one file at a time
//! (see DESIGN.md §10):
//!
//! * **QL007** — transitive panic-reachability. The closure of QL003: a
//!   public library function that *transitively* reaches an
//!   `unwrap`/`expect`/`panic!` site can abort a buyer's purchase three
//!   calls deep, where the per-file pass is blind. A QL003 waiver does
//!   not silence QL007 — a site may be locally justified yet still
//!   poison the public contract; waive QL007 at the panic site or at the
//!   entry point's `fn` declaration.
//! * **QL008** — determinism taint. Hash-order iteration (the QL001
//!   pattern) inside any function that a fingerprint- or price-producing
//!   function (`sqlengine::fingerprint`, `core::engine`) transitively
//!   calls can leak per-process iteration order into prices.
//! * **QL009** — WAL discipline. Broker account/database mutation sites
//!   reachable from a `Broker` commit entry point (`buy`, `commit*`)
//!   without a dominating `ledger.append` call earlier on the path
//!   violate PR 6's append-then-apply rule: a crash between mutation and
//!   logging strands state the ledger cannot replay.
//!
//! All rules are waivable with an inline justification:
//! `// qirana-lint::allow(QL00x): <why this site is sound>`.

use crate::analysis::FileContext;
use crate::graph::WorkspaceGraph;
use crate::lexer::{Tok, TokKind};
use crate::parser::Vis;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// The lint rules, in diagnostic-code order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    Ql001,
    Ql002,
    Ql003,
    Ql004,
    Ql005,
    Ql006,
    Ql007,
    Ql008,
    Ql009,
}

impl Lint {
    /// Diagnostic code, e.g. `QL001`.
    pub fn code(self) -> &'static str {
        match self {
            Lint::Ql001 => "QL001",
            Lint::Ql002 => "QL002",
            Lint::Ql003 => "QL003",
            Lint::Ql004 => "QL004",
            Lint::Ql005 => "QL005",
            Lint::Ql006 => "QL006",
            Lint::Ql007 => "QL007",
            Lint::Ql008 => "QL008",
            Lint::Ql009 => "QL009",
        }
    }

    /// Parses a diagnostic code (as written in allow annotations).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "QL001" => Some(Lint::Ql001),
            "QL002" => Some(Lint::Ql002),
            "QL003" => Some(Lint::Ql003),
            "QL004" => Some(Lint::Ql004),
            "QL005" => Some(Lint::Ql005),
            "QL006" => Some(Lint::Ql006),
            "QL007" => Some(Lint::Ql007),
            "QL008" => Some(Lint::Ql008),
            "QL009" => Some(Lint::Ql009),
            _ => None,
        }
    }

    pub const ALL: [Lint; 9] = [
        Lint::Ql001,
        Lint::Ql002,
        Lint::Ql003,
        Lint::Ql004,
        Lint::Ql005,
        Lint::Ql006,
        Lint::Ql007,
        Lint::Ql008,
        Lint::Ql009,
    ];

    /// Long-form rationale, example, and waiver syntax for
    /// `cargo xtask lint --explain QLxxx`.
    pub fn explain(self) -> &'static str {
        match self {
            Lint::Ql001 => {
                "QL001 — nondeterministic HashMap/HashSet iteration\n\n\
                 Float accumulation is not associative, so iterating a hash map while\n\
                 summing prices or entropy makes the result depend on per-process hash\n\
                 order (the PR 3 entropy-pricing bug: two prices of the same partition\n\
                 differed in the last ulp).\n\n\
                 Example violation:   for (k, v) in weights.iter() { total += v; }\n\
                 Fix:                 iterate a BTreeMap, a sorted Vec, or\n\
                                      first-appearance indexing.\n\
                 Waiver:              // qirana-lint::allow(QL001): <why order cannot leak>"
            }
            Lint::Ql002 => {
                "QL002 — lossy `as f64` casts of possibly-64-bit integers\n\n\
                 `i64 as f64` silently collapses distinct integers beyond 2^53; the\n\
                 PR 3 fingerprint bug priced 2^53 and 2^53 + 1 identically. A cast\n\
                 passes only when the source is provably <= 32 bits at the token level\n\
                 (`x as u32 as f64`, a declared-small name, a small literal).\n\n\
                 Example violation:   let w = row_count as f64;   // row_count: u64\n\
                 Fix:                 qirana_sqlengine::value::lossless_f64, or cast\n\
                                      through u32/i32 when the range is known.\n\
                 Waiver:              // qirana-lint::allow(QL002): <why the value fits>"
            }
            Lint::Ql003 => {
                "QL003 — panicking calls in library code\n\n\
                 `unwrap()`, `expect()`, and the `panic!` macro family abort the broker\n\
                 instead of surfacing a typed error (`EngineError`, `PricingError`,\n\
                 `SupportError`, `WeightError`). Bins and test code are exempt;\n\
                 `#[allow(clippy::unwrap_used)]`-family attributes also waive the\n\
                 annotated item.\n\n\
                 Example violation:   let plan = parse(sql).unwrap();\n\
                 Fix:                 let plan = parse(sql).map_err(EngineError::parse)?;\n\
                 Waiver:              // qirana-lint::allow(QL003): <invariant making this unreachable>"
            }
            Lint::Ql004 => {
                "QL004 — ambient nondeterminism (entropy, wall clock, unstable hashers)\n\n\
                 Support sets, weights, and prices must replay from an explicit seed.\n\
                 `thread_rng`/`from_entropy`/`rand::random` seed from the environment;\n\
                 `Instant::now`/`SystemTime::now` read the ambient clock; `DefaultHasher`/\n\
                 `RandomState` output changes across compiler releases (the PR 8\n\
                 SupportUpdate::signature bug). The fault module is exempt.\n\n\
                 Example violation:   let mut rng = thread_rng();\n\
                 Fix:                 SeedableRng::seed_from_u64(cfg.seed); hash through\n\
                                      qirana_sqlengine::fingerprint.\n\
                 Waiver:              // qirana-lint::allow(QL004): <why this site is replayable>"
            }
            Lint::Ql005 => {
                "QL005 — durable writes bypassing the ledger\n\n\
                 The market's only durable artifacts are the write-ahead log and its\n\
                 snapshots, owned by core::ledger. A direct `fs::write`/`File::create`\n\
                 elsewhere creates state crash recovery cannot see or replay. Bins and\n\
                 tests are exempt.\n\n\
                 Example violation:   std::fs::write(\"balances.json\", data)?;\n\
                 Fix:                 persist through the ledger (or move into a bin).\n\
                 Waiver:              // qirana-lint::allow(QL005): <why this bypass is sound>"
            }
            Lint::Ql006 => {
                "QL006 — stray prints in library code\n\n\
                 `println!`/`eprintln!`/`dbg!` bypass the telemetry sink and corrupt\n\
                 machine-readable output on stdout (bench JSON). core::telemetry and\n\
                 bins are exempt.\n\n\
                 Example violation:   println!(\"price = {p}\");\n\
                 Fix:                 record a span/counter/gauge on core::telemetry.\n\
                 Waiver:              // qirana-lint::allow(QL006): <why this print must stay>"
            }
            Lint::Ql007 => {
                "QL007 — transitive panic-reachability from public API (interprocedural)\n\n\
                 The closure of QL003 over the workspace call graph: a `pub` library\n\
                 function that transitively reaches an `unwrap`/`expect`/`panic!` site\n\
                 can abort a buyer's purchase several calls deep. QL003 waivers do NOT\n\
                 silence QL007: a site may be locally justified (checked invariant) yet\n\
                 still poison the public contract, so the interprocedural waiver is\n\
                 separate. The diagnostic shows one example call path from the public\n\
                 entry to the panic site.\n\n\
                 Example violation:   pub fn quote(..) -> f64 { helper() } where\n\
                                      helper() calls slots.expect(\"populated\")\n\
                 Fix:                 thread a typed error (`EngineError::internal`) up\n\
                                      to the entry, or prove + document the invariant.\n\
                 Waiver:              // qirana-lint::allow(QL007): <reason> at the panic\n\
                                      site or at the entry `fn` declaration line."
            }
            Lint::Ql008 => {
                "QL008 — determinism taint into fingerprint/price producers (interprocedural)\n\n\
                 Hash-order iteration (the QL001 pattern) inside any function that a\n\
                 fingerprint- or price-producing function (module `fingerprint` or\n\
                 `engine`) transitively calls lets per-process hash order leak into\n\
                 published prices — even when the iteration lives in a helper far from\n\
                 the pricing surface. The diagnostic shows the call path from the\n\
                 tainted producer to the iteration site.\n\n\
                 Example violation:   core::engine::price -> util::fold_weights, where\n\
                                      fold_weights sums over weights.values()\n\
                 Fix:                 iterate a BTreeMap/sorted Vec in the helper.\n\
                 Waiver:              // qirana-lint::allow(QL008): <why order cannot\n\
                                      reach the producer's output> at the iteration site."
            }
            Lint::Ql009 => {
                "QL009 — WAL discipline on broker commit paths (interprocedural)\n\n\
                 PR 6's append-then-apply rule: on every path from a commit entry\n\
                 point (`buy`, `commit*` — in the broker module or anywhere in the\n\
                 server crate) to an account/database mutation\n\
                 (buyers map, paid/charged fields, history, apply_update_sql/\n\
                 apply_writes), a `ledger.append(..)` must come first — otherwise a\n\
                 crash between mutation and logging strands state the WAL cannot\n\
                 replay. The pass walks only call edges not preceded by an append in\n\
                 the caller's body and flags mutation sites with no earlier append in\n\
                 their own body.\n\n\
                 Example violation:   pub fn commit_x(&mut self) { self.buyers.insert(..);\n\
                                      self.log()?; }   // mutate before append\n\
                 Fix:                 append the event first, then apply it (rollback on\n\
                                      append failure if the apply already happened).\n\
                 Waiver:              // qirana-lint::allow(QL009): <compensating\n\
                                      mechanism, e.g. undo-rollback> at the mutation site."
            }
        }
    }
}

/// One finding: file, line, rule, and a human explanation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub lint: Lint,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.lint.code(),
            self.message
        )
    }
}

/// Runs every pass over one analyzed file.
pub fn lint_file(ctx: &FileContext) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    ql001_nondeterministic_iteration(ctx, &mut out);
    ql002_lossy_casts(ctx, &mut out);
    ql003_panicking_calls(ctx, &mut out);
    ql004_ambient_nondeterminism(ctx, &mut out);
    ql005_durability_bypass(ctx, &mut out);
    ql006_stray_prints(ctx, &mut out);
    out.sort();
    out
}

fn diag(ctx: &FileContext, i: usize, lint: Lint, message: String, out: &mut Vec<Diagnostic>) {
    if !ctx.allowed(lint, i) {
        out.push(Diagnostic {
            path: ctx.path.clone(),
            line: ctx.code[i].line,
            lint,
            message,
        });
    }
}

/// Methods whose results depend on a hash map's iteration order.
const ORDER_DEPENDENT_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// QL001: iteration over bindings/fields whose type this file declares as
/// `HashMap`/`HashSet`. Intra-file and conservative by design: a name is
/// hash-typed if the file contains `name: HashMap<…>` (binding or field
/// annotation) or `let [mut] name = HashMap::new()/with_capacity/from…`.
fn ql001_nondeterministic_iteration(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let code = &ctx.code;
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    for i in 0..code.len() {
        if !(code[i].is_ident("HashMap") || code[i].is_ident("HashSet")) {
            continue;
        }
        // `name : HashMap` (type ascription on a binding or struct field).
        if i >= 2 && code[i - 1].is_punct(":") && code[i - 2].kind == TokKind::Ident {
            hash_names.insert(&code[i - 2].text);
        }
        // `let [mut] name = HashMap::…` / `name = HashMap::…`.
        if i >= 2 && code[i - 1].is_punct("=") && code[i - 2].kind == TokKind::Ident {
            hash_names.insert(&code[i - 2].text);
        }
    }
    if hash_names.is_empty() {
        return;
    }

    for i in 0..code.len() {
        // `name.method(` where name is hash-typed and method is
        // order-dependent. Covers field access too: in `self.buyers.iter()`
        // the token before `.iter` is `buyers`.
        if ctx.in_test(i) {
            continue;
        }
        if code[i].kind == TokKind::Ident
            && ORDER_DEPENDENT_METHODS.contains(&code[i].text.as_str())
            && i >= 2
            && code[i - 1].is_punct(".")
            && code[i - 2].kind == TokKind::Ident
            && hash_names.contains(code[i - 2].text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            diag(
                ctx,
                i,
                Lint::Ql001,
                format!(
                    "`{}.{}()` iterates a HashMap/HashSet: per-process hash order can leak \
                     into prices/fingerprints; use BTreeMap, a sorted Vec, or \
                     first-appearance indexing",
                    code[i - 2].text,
                    code[i].text
                ),
                out,
            );
        }
        // `for pat in [&[mut]] name` where name is hash-typed.
        if code[i].is_ident("for") {
            if let Some((j, name)) = for_loop_target(code, i) {
                if hash_names.contains(name) {
                    diag(
                        ctx,
                        j,
                        Lint::Ql001,
                        format!(
                            "`for … in {name}` iterates a HashMap/HashSet in hash order; \
                             use BTreeMap, a sorted Vec, or first-appearance indexing"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// For a `for` keyword at `i`, returns the index and text of the iterated
/// identifier when the loop has the shape `for pat in [&[mut]] name {`.
fn for_loop_target(code: &[Tok], i: usize) -> Option<(usize, &str)> {
    let mut j = i + 1;
    // Scan the (possibly destructuring) pattern for the `in` keyword.
    let mut guard = 0;
    while j < code.len() && !code[j].is_ident("in") {
        j += 1;
        guard += 1;
        if guard > 24 {
            return None; // not a plain loop header
        }
    }
    let mut k = j + 1;
    while k < code.len() && (code[k].is_punct("&") || code[k].is_ident("mut")) {
        k += 1;
    }
    if code.get(k).map(|t| t.kind) == Some(TokKind::Ident)
        && code.get(k + 1).is_some_and(|t| t.is_punct("{"))
    {
        return Some((k, &code[k].text));
    }
    None
}

/// Integer types provably ≤ 32 bits, whose `as f64` is always exact.
const EXACT_IN_F64: [&str; 7] = ["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// QL002: `<expr> as f64` where the source cannot be proven ≤ 32 bits at
/// the token level. `x as u32 as f64` passes, as does `x as f64` when this
/// file declares `x` with a ≤ 32-bit type; `i64`/`u64`/`usize` sources,
/// `.len()` results, and unproven identifiers flag — the 2^53 collapse is
/// silent, so the burden of proof is on the cast site.
fn ql002_lossy_casts(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let code = &ctx.code;
    // Names this file ascribes a provably-exact type: `n: u32` in a
    // binding, field, or signature.
    let mut small_names: BTreeSet<&str> = BTreeSet::new();
    for i in 2..code.len() {
        if code[i].kind == TokKind::Ident
            && EXACT_IN_F64.contains(&code[i].text.as_str())
            && code[i - 1].is_punct(":")
            && code[i - 2].kind == TokKind::Ident
        {
            small_names.insert(&code[i - 2].text);
        }
    }
    for i in 0..code.len() {
        if ctx.in_test(i)
            || !(code[i].is_ident("as") && code.get(i + 1).is_some_and(|t| t.is_ident("f64")))
        {
            continue;
        }
        // The token immediately before `as` is the tail of the source
        // expression: a chained narrow cast (`… as u32 as f64`), a
        // declared-small identifier, or a small integer literal is
        // provably exact.
        let exact = match code.get(i.wrapping_sub(1)) {
            Some(prev) if prev.kind == TokKind::Ident => {
                EXACT_IN_F64.contains(&prev.text.as_str())
                    || small_names.contains(prev.text.as_str())
            }
            Some(prev) if prev.kind == TokKind::Number => prev
                .text
                .parse::<i64>()
                .is_ok_and(|v| v.unsigned_abs() <= (1 << 53)),
            _ => false,
        };
        if !exact {
            diag(
                ctx,
                i,
                Lint::Ql002,
                "`as f64` on a possibly-64-bit integer silently rounds beyond 2^53 \
                 (the fingerprint-collapse bug class); use \
                 `qirana_sqlengine::value::lossless_f64` or cast through u32/i32"
                    .to_string(),
                out,
            );
        }
    }
}

/// Macros that abort instead of returning a typed error.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// QL003: panicking calls in library code. Skipped wholesale in bins and
/// test regions; waivable per-site with a justification or a
/// `#[allow(clippy::unwrap_used)]`-family attribute on the item.
fn ql003_panicking_calls(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.is_bin() {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test(i) {
            continue;
        }
        let t = &code[i];
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && code[i - 1].is_punct(".")
            && code.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            diag(
                ctx,
                i,
                Lint::Ql003,
                format!(
                    "`.{}()` in library code panics on the error path; return the typed \
                     error (`EngineError`/`PricingError`/`SupportError`) instead",
                    t.text
                ),
                out,
            );
        } else if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && (i == 0 || !code[i - 1].is_punct("."))
        {
            diag(
                ctx,
                i,
                Lint::Ql003,
                format!(
                    "`{}!` in library code aborts the broker; return a typed error or \
                     document the invariant with an allow annotation",
                    t.text
                ),
                out,
            );
        }
    }
}

/// QL004: ambient nondeterminism. The fault module is exempt (it is the
/// sanctioned failpoint home and is itself seed-driven); the execution
/// budget's deadline meter carries an inline annotation at its one site.
fn ql004_ambient_nondeterminism(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.is_fault_module() {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test(i) {
            continue;
        }
        let t = &code[i];
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") {
            diag(
                ctx,
                i,
                Lint::Ql004,
                format!(
                    "`{}` seeds from the environment: support sets, weights, and prices \
                     must be replayable from an explicit seed (use `SeedableRng::seed_from_u64`)",
                    t.text
                ),
                out,
            );
        } else if t.is_ident("random")
            && i >= 2
            && code[i - 1].is_punct(":")
            && code[i - 2].is_punct(":")
            && i >= 3
            && code[i - 3].is_ident("rand")
        {
            diag(
                ctx,
                i,
                Lint::Ql004,
                "`rand::random` draws from the global entropy RNG; use an explicitly \
                 seeded generator"
                    .to_string(),
                out,
            );
        } else if t.is_ident("DefaultHasher") || t.is_ident("RandomState") {
            diag(
                ctx,
                i,
                Lint::Ql004,
                format!(
                    "`{}` output is only stable within one compiler release: a persisted \
                     signature or replayed dedup key silently changes across toolchains; \
                     hash through `qirana_sqlengine::fingerprint` (e.g. `output_row_hash`)",
                    t.text
                ),
                out,
            );
        } else if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && code.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && code.get(i + 2).is_some_and(|t| t.is_punct(":"))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            diag(
                ctx,
                i,
                Lint::Ql004,
                format!(
                    "`{}::now()` reads the ambient clock outside the budget/fault \
                     modules; thread a deadline or budget through instead",
                    t.text
                ),
                out,
            );
        }
    }
}

/// QL005: durable-state writes that bypass the ledger. Library code must
/// never open a file for writing directly: the market's only durable
/// artifacts are the write-ahead log and its snapshots, both owned by
/// `core::ledger`, and a side-channel `fs::write` is state that crash
/// recovery can neither see nor replay. The ledger module itself and bins
/// (report generators, the REPL) are exempt; tests are skipped.
fn ql005_durability_bypass(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.is_ledger_module() || ctx.is_bin() {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test(i) {
            continue;
        }
        let t = &code[i];
        if !code.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // `fs::write(` / `std::fs::write(`.
        if t.is_ident("write")
            && i >= 3
            && code[i - 1].is_punct(":")
            && code[i - 2].is_punct(":")
            && code[i - 3].is_ident("fs")
        {
            diag(
                ctx,
                i,
                Lint::Ql005,
                "`fs::write` outside `core::ledger` creates durable state the \
                 write-ahead log cannot replay after a crash; persist through the \
                 ledger (or move this into a bin/test)"
                    .to_string(),
                out,
            );
        }
        // `File::create(` / `File::create_new(`.
        if (t.is_ident("create") || t.is_ident("create_new"))
            && i >= 3
            && code[i - 1].is_punct(":")
            && code[i - 2].is_punct(":")
            && code[i - 3].is_ident("File")
        {
            diag(
                ctx,
                i,
                Lint::Ql005,
                format!(
                    "`File::{}` outside `core::ledger` opens a durable side channel \
                     that crash recovery cannot see; persist through the ledger (or \
                     move this into a bin/test)",
                    t.text
                ),
                out,
            );
        }
    }
}

/// Macros that print straight to stdout/stderr, bypassing telemetry.
const PRINT_MACROS: [&str; 3] = ["println", "eprintln", "dbg"];

/// QL006: stray prints in library code. The telemetry module (the
/// sanctioned diagnostic surface) and bins (whose whole job is printing)
/// are exempt; tests are skipped. `print!`-without-ln is deliberately not
/// matched: progressive output formatting lives in bins, and the `ln`
/// variants are what debugging leaves behind.
fn ql006_stray_prints(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.is_telemetry_module() || ctx.is_bin() {
        return;
    }
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.in_test(i) {
            continue;
        }
        let t = &code[i];
        if t.kind == TokKind::Ident
            && PRINT_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct("!"))
            && (i == 0 || !code[i - 1].is_punct("."))
        {
            diag(
                ctx,
                i,
                Lint::Ql006,
                format!(
                    "`{}!` in library code prints past the telemetry sink and corrupts \
                     machine-readable output on stdout/stderr; record a span, counter, \
                     or gauge on `core::telemetry` instead (or move this into a bin/test)",
                    t.text
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Interprocedural passes (QL007–QL009) over the workspace call graph.
// ---------------------------------------------------------------------------

/// Runs the graph-powered passes. Per-file passes stay in [`lint_file`];
/// this entry point exists separately so fixtures can pin each layer's
/// diagnostics in isolation.
pub fn lint_graph(g: &WorkspaceGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    ql007_panic_reachability(g, &mut out);
    ql008_determinism_taint(g, &mut out);
    ql009_wal_discipline(g, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Reachability state from a multi-source BFS: for each reached node, the
/// entry it traces to and its BFS parent (for one example path). Nodes are
/// seeded and expanded in index order, so example paths are deterministic.
struct Reach {
    reached: Vec<bool>,
    origin: Vec<usize>,
    parent: Vec<usize>,
}

const NO_NODE: usize = usize::MAX;

fn reach_from(g: &WorkspaceGraph, starts: &[usize]) -> Reach {
    let n = g.nodes.len();
    let mut r = Reach {
        reached: vec![false; n],
        origin: vec![NO_NODE; n],
        parent: vec![NO_NODE; n],
    };
    let mut queue = VecDeque::new();
    for &s in starts {
        if !r.reached[s] {
            r.reached[s] = true;
            r.origin[s] = s;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &ei in &g.adj[u] {
            let v = g.edges[ei].to;
            if !r.reached[v] {
                r.reached[v] = true;
                r.origin[v] = r.origin[u];
                r.parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    r
}

/// ` (call path: a -> b -> c)` from the BFS entry down to `v`, or empty
/// when `v` is itself the entry.
fn call_path(g: &WorkspaceGraph, r: &Reach, v: usize) -> String {
    if r.parent[v] == NO_NODE {
        return String::new();
    }
    let mut chain = vec![v];
    let mut cur = v;
    while r.parent[cur] != NO_NODE {
        cur = r.parent[cur];
        chain.push(cur);
    }
    chain.reverse();
    let names: Vec<&str> = chain.iter().map(|&i| g.nodes[i].fqn.as_str()).collect();
    format!(" (call path: {})", names.join(" -> "))
}

fn graph_diag(
    g: &WorkspaceGraph,
    node: usize,
    tok: usize,
    lint: Lint,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    let ctx = &g.files[g.nodes[node].file].ctx;
    if !ctx.allowed(lint, tok) {
        out.push(Diagnostic {
            path: ctx.path.clone(),
            line: ctx.code[tok].line,
            lint,
            message,
        });
    }
}

/// QL007: panic sites transitively reachable from public library API.
/// Entries are `pub` fns outside bins/tests whose declaration line carries
/// no QL007 waiver; sites are the QL003 token patterns (QL003's own
/// waivers deliberately don't transfer — see the module docs).
fn ql007_panic_reachability(g: &WorkspaceGraph, out: &mut Vec<Diagnostic>) {
    let entries: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let ctx = &g.files[n.file].ctx;
            n.vis == Vis::Pub
                && !ctx.is_bin()
                && !ctx.in_test(n.decl)
                && !ctx.allowed(Lint::Ql007, n.decl)
        })
        .map(|(i, _)| i)
        .collect();
    let r = reach_from(g, &entries);
    for (i, n) in g.nodes.iter().enumerate() {
        if !r.reached[i] || g.files[n.file].ctx.is_bin() {
            continue;
        }
        for site in &n.panic_sites {
            graph_diag(
                g,
                i,
                site.tok,
                Lint::Ql007,
                format!(
                    "`{}` can panic and is reachable from public API `{}`{}; thread a \
                     typed error to the entry or waive QL007 at this site or the \
                     entry `fn`",
                    site.what,
                    g.nodes[r.origin[i]].fqn,
                    call_path(g, &r, i)
                ),
                out,
            );
        }
    }
}

/// QL008: hash-order iteration sites inside functions that a fingerprint-
/// or price-producing function (module segment `fingerprint` or `engine`)
/// transitively calls.
fn ql008_determinism_taint(g: &WorkspaceGraph, out: &mut Vec<Diagnostic>) {
    let sinks: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let ctx = &g.files[n.file].ctx;
            (n.in_module(&g.files, "fingerprint") || n.in_module(&g.files, "engine"))
                && !ctx.in_test(n.decl)
                && !ctx.allowed(Lint::Ql008, n.decl)
        })
        .map(|(i, _)| i)
        .collect();
    let r = reach_from(g, &sinks);
    for (i, n) in g.nodes.iter().enumerate() {
        if !r.reached[i] {
            continue;
        }
        for site in &n.hash_sites {
            graph_diag(
                g,
                i,
                site.tok,
                Lint::Ql008,
                format!(
                    "`{}` iterates in per-process hash order and can taint the \
                     deterministic output of `{}`{}; iterate a BTreeMap or sorted Vec",
                    site.what,
                    g.nodes[r.origin[i]].fqn,
                    call_path(g, &r, i)
                ),
                out,
            );
        }
    }
}

/// QL009: broker mutation sites reachable from a commit entry point with
/// no `ledger.append` earlier on the path. An edge is *protected* (not
/// walked) when the caller appends before making the call; a mutation
/// site is *covered* when its own body appends earlier.
fn ql009_wal_discipline(g: &WorkspaceGraph, out: &mut Vec<Diagnostic>) {
    let entries: Vec<usize> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            let ctx = &g.files[n.file].ctx;
            let name = g.files[n.file].parsed.items[n.item].name.as_str();
            (n.in_module(&g.files, "broker")
                || n.krate == "server"
                || n.in_module(&g.files, "server"))
                && n.vis == Vis::Pub
                && (name == "buy" || name.starts_with("commit"))
                && !ctx.is_bin()
                && !ctx.in_test(n.decl)
                && !ctx.allowed(Lint::Ql009, n.decl)
        })
        .map(|(i, _)| i)
        .collect();
    // BFS over unprotected edges only: once a caller has appended, every
    // callee after that call inherits the WAL entry.
    let n = g.nodes.len();
    let mut r = Reach {
        reached: vec![false; n],
        origin: vec![NO_NODE; n],
        parent: vec![NO_NODE; n],
    };
    let mut queue = VecDeque::new();
    for &s in &entries {
        if !r.reached[s] {
            r.reached[s] = true;
            r.origin[s] = s;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &ei in &g.adj[u] {
            let e = g.edges[ei];
            let protected = g.nodes[u].append_sites.iter().any(|&a| a < e.call_tok);
            if protected || r.reached[e.to] {
                continue;
            }
            r.reached[e.to] = true;
            r.origin[e.to] = r.origin[u];
            r.parent[e.to] = u;
            queue.push_back(e.to);
        }
    }
    for (i, node) in g.nodes.iter().enumerate() {
        if !r.reached[i] {
            continue;
        }
        for site in &node.mutation_sites {
            if node.append_sites.iter().any(|&a| a < site.tok) {
                continue;
            }
            graph_diag(
                g,
                i,
                site.tok,
                Lint::Ql009,
                format!(
                    "broker state mutation `{}` executes with no preceding \
                     `ledger.append` on the path from commit entry `{}`{}; log the \
                     event before applying it (append-then-apply)",
                    site.what,
                    g.nodes[r.origin[i]].fqn,
                    call_path(g, &r, i)
                ),
                out,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        lint_file(&FileContext::new("crates/demo/src/lib.rs", src))
    }

    fn codes(src: &str) -> Vec<&'static str> {
        run(src).iter().map(|d| d.lint.code()).collect()
    }

    #[test]
    fn ql001_flags_iteration_not_lookup() {
        let src = "use std::collections::HashMap;\nfn f() {\n  let mut m: HashMap<u32, f64> = HashMap::new();\n  m.insert(1, 2.0);\n  let _ = m.get(&1);\n  for (k, v) in m.iter() { sink(k, v); }\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].lint, Lint::Ql001);
        assert_eq!(d[0].line, 6);
    }

    #[test]
    fn ql001_flags_for_loop_over_map() {
        let src = "fn f(m2: HashMap<u32, u32>) {\n  for x in &m2 { sink(x); }\n}\n";
        // `m2 : HashMap` in the signature marks the name.
        assert_eq!(codes(src), vec!["QL001"]);
    }

    #[test]
    fn ql001_ignores_vec_iteration() {
        let src = "fn f(v: Vec<u32>) { for x in v.iter() { sink(x); } }\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn ql002_flags_unproven_casts_only() {
        let src = "fn f(n: i64, s: u32) -> f64 {\n  let a = n as f64;\n  let b = s as f64;\n  let c = n as u32 as f64;\n  let d = 100 as f64;\n  a + b + c + d\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn ql003_flags_library_unwrap_not_test() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { assert_eq!(super::f(Some(1)).to_string().parse::<u32>().unwrap(), 1); }\n}\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn ql003_skips_unwrap_or_family() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn ql003_flags_panic_macros() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { unreachable!(); }\n";
        assert_eq!(codes(src), vec!["QL003", "QL003"]);
    }

    #[test]
    fn ql004_flags_clock_and_entropy() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        assert_eq!(codes(src), vec!["QL004", "QL004"]);
    }

    #[test]
    fn ql004_flags_unstable_hashers() {
        let src = "use std::collections::hash_map::DefaultHasher;\nfn f() -> u64 {\n  let mut h = DefaultHasher::new();\n  7u64.hash(&mut h);\n  h.finish()\n}\nfn g() { let s = RandomState::new(); sink(s); }\n";
        // The `use` line and the construction site both flag (line 1, 3, 7).
        assert_eq!(codes(src), vec!["QL004", "QL004", "QL004"]);
    }

    #[test]
    fn ql004_hasher_waivable_and_test_exempt() {
        let src = "fn f() -> u64 {\n  // qirana-lint::allow(QL004): transient in-process memo, never persisted\n  let h = DefaultHasher::new();\n  h.finish()\n}\n#[cfg(test)]\nmod tests {\n  fn t() { let _ = DefaultHasher::new(); }\n}\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn ql005_flags_direct_writes_in_lib_code() {
        let src = "use std::fs::{self, File};\nfn f() {\n  fs::write(\"out.bin\", b\"x\").ok();\n  let _ = File::create(\"log.txt\");\n  let _ = File::create_new(\"log2.txt\");\n}\n";
        assert_eq!(codes(src), vec!["QL005", "QL005", "QL005"]);
    }

    #[test]
    fn ql005_exempts_ledger_module_bins_and_tests() {
        let src = "fn f() { std::fs::write(\"wal\", b\"x\").ok(); }\n";
        let ledger = lint_file(&FileContext::new("crates/core/src/ledger.rs", src));
        assert!(ledger.is_empty(), "{ledger:?}");
        let bin = lint_file(&FileContext::new("crates/bench/src/bin/fig2.rs", src));
        assert!(bin.is_empty(), "{bin:?}");
        let test_src =
            "#[cfg(test)]\nmod tests {\n  fn t() { std::fs::write(\"t\", b\"x\").ok(); }\n}\n";
        assert!(codes(test_src).is_empty());
    }

    #[test]
    fn ql005_ignores_unrelated_create_and_write() {
        let src = "fn f(v: &mut Vec<u8>, w: &mut dyn std::io::Write) {\n  Builder::create(v);\n  w.write(b\"in-memory\").ok();\n  writer.write(buf).ok();\n}\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn ql006_flags_prints_in_lib_code() {
        let src = "fn f(x: u32) -> u32 {\n  println!(\"x = {x}\");\n  eprintln!(\"warn\");\n  dbg!(x)\n}\n";
        assert_eq!(codes(src), vec!["QL006", "QL006", "QL006"]);
    }

    #[test]
    fn ql006_exempts_telemetry_module_bins_and_tests() {
        let src = "fn f() { println!(\"report\"); }\n";
        let tel = lint_file(&FileContext::new("crates/core/src/telemetry.rs", src));
        assert!(tel.is_empty(), "{tel:?}");
        let bin = lint_file(&FileContext::new("crates/bench/src/bin/fig2.rs", src));
        assert!(bin.is_empty(), "{bin:?}");
        let test_src = "#[cfg(test)]\nmod tests {\n  fn t() { println!(\"debug\"); }\n}\n";
        assert!(codes(test_src).is_empty());
    }

    #[test]
    fn ql006_ignores_method_calls_and_writeln() {
        let src = "fn f(w: &mut String, obj: &T) {\n  writeln!(w, \"ok\").ok();\n  obj.dbg!();\n  let println = 1;\n  sink(println);\n}\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn allow_annotation_waives_with_reason() {
        let src = "fn f(x: Option<u32>) -> u32 {\n  // qirana-lint::allow(QL003): x is Some by construction of f's caller\n  x.unwrap()\n}\n";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn doc_comment_examples_do_not_fire() {
        let src = "/// ```\n/// let x = m.iter().next().unwrap();\n/// ```\nfn f() {}\n";
        assert!(codes(src).is_empty());
    }
}
