//! A minimal, lossless Rust tokenizer.
//!
//! The lint passes in this crate are *token-level*: they never need a full
//! AST, but they must never be fooled by the contents of string literals,
//! comments, or char literals (a doc example containing `.unwrap()` is not
//! a violation). This lexer therefore implements exactly the lexical
//! structure of Rust — nested block comments, raw strings with arbitrary
//! `#` fences, byte/raw prefixes, char-vs-lifetime disambiguation, numeric
//! literals with exponents — and nothing more. It is deliberately
//! dependency-free: the build environment vendors no `proc-macro2`/`syn`,
//! and the lints only need token kinds, token text, and line numbers.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, prefix stripped).
    Ident,
    /// Lifetime such as `'a` (without the quote).
    Lifetime,
    /// Integer or float literal, suffix included.
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal.
    Char,
    /// A single punctuation character (`.` `:` `(` …). Multi-character
    /// operators are emitted one character at a time; the lint passes
    /// match sequences.
    Punct,
    /// Line or block comment, text included (annotations live here).
    Comment,
}

/// One token, carrying its text and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Tokenizes Rust source. Unterminated literals and comments are tolerated
/// (the remainder of the file becomes one token) so the linter degrades
/// gracefully on malformed input instead of failing the whole run.
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, String::new()),
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                _ => {
                    let c = self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump());
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push(self.bump());
                text.push(self.bump());
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push(self.bump());
                text.push(self.bump());
                if depth == 0 {
                    break;
                }
            } else {
                text.push(self.bump());
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    /// A `"`-delimited string; `text` may already hold a consumed prefix
    /// (`b`, `r#…` fences are handled by the callers).
    fn string(&mut self, line: u32, mut text: String) {
        text.push(self.bump()); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump());
                if self.peek(0).is_some() {
                    text.push(self.bump());
                }
            } else if c == '"' {
                text.push(self.bump());
                break;
            } else {
                text.push(self.bump());
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// A raw string starting at `r`'s fence: `#…#"…"#…#`. The prefix chars
    /// (`r` / `br`) have already been consumed into `text`.
    fn raw_string(&mut self, line: u32, mut text: String) {
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            text.push(self.bump());
        }
        if self.peek(0) != Some('"') {
            // `r#foo` raw identifier, not a raw string: emit what we have
            // as punctuation-ish fallback; the ident path continues.
            self.push(TokKind::Punct, text, line);
            return;
        }
        text.push(self.bump()); // opening quote
        'outer: while let Some(c) = self.peek(0) {
            if c == '"' {
                // A candidate closer: needs `fence` following hashes.
                for k in 0..fence {
                    if self.peek(1 + k) != Some('#') {
                        text.push(self.bump());
                        continue 'outer;
                    }
                }
                text.push(self.bump());
                for _ in 0..fence {
                    text.push(self.bump());
                }
                break;
            }
            text.push(self.bump());
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump()); // opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then up to closer.
                text.push(self.bump());
                while let Some(c) = self.peek(0) {
                    text.push(self.bump());
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, text, line);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // Could be 'x' (char) or 'x (lifetime): read the ident run,
                // then look for the closing quote.
                while let Some(c) = self.peek(0) {
                    if c == '_' || c.is_alphanumeric() {
                        text.push(self.bump());
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') {
                    text.push(self.bump());
                    self.push(TokKind::Char, text, line);
                } else {
                    self.push(TokKind::Lifetime, text, line);
                }
            }
            Some(_) => {
                // Single-char literal like '(' or '\u{…}' already handled.
                text.push(self.bump());
                if self.peek(0) == Some('\'') {
                    text.push(self.bump());
                }
                self.push(TokKind::Char, text, line);
            }
            None => self.push(TokKind::Punct, text, line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut seen_dot = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(self.bump());
            } else if c == '.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` but not the range `1..5` (second char is a digit).
                seen_dot = true;
                text.push(self.bump());
            } else if (c == '+' || c == '-')
                && text.chars().last().is_some_and(|l| l == 'e' || l == 'E')
                && text.starts_with(|f: char| f.is_ascii_digit())
                && !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
            {
                // Exponent sign: `1e-5`.
                text.push(self.bump());
            } else {
                break;
            }
        }
        self.push(TokKind::Number, text, line);
    }

    fn ident_or_prefixed(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(self.bump());
            } else {
                break;
            }
        }
        // String/char prefixes: b"…", r"…", br#"…"#, r#raw_ident.
        match (text.as_str(), self.peek(0)) {
            ("b", Some('"')) => self.string(line, text),
            ("r" | "br" | "rb", Some('"')) => self.raw_string(line, text),
            ("r" | "br", Some('#')) => {
                // Either a raw string fence or a raw identifier r#foo.
                if self.peek(1) == Some('"') || self.peek(1) == Some('#') {
                    self.raw_string(line, text);
                } else {
                    self.bump(); // the '#'
                    let mut ident = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            ident.push(self.bump());
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, ident, line);
                }
            }
            ("b", Some('\'')) => {
                self.char_or_lifetime(line);
                // Re-tag: the quote path pushed a Char/Lifetime token for
                // the quoted part; the `b` prefix itself is dropped, which
                // is fine for lint purposes.
            }
            _ => self.push(TokKind::Ident, text, line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("let x = m.iter();");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[3], (TokKind::Ident, "m".into()));
        assert_eq!(t[4], (TokKind::Punct, ".".into()));
        assert_eq!(t[5], (TokKind::Ident, "iter".into()));
    }

    #[test]
    fn strings_hide_contents() {
        let t = kinds(r#"let s = "x.unwrap() // not code";"#);
        assert!(t.iter().all(|(k, x)| *k != TokKind::Ident || x != "unwrap"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_fences() {
        let t = kinds(r###"let s = r#"contains "quotes" and .unwrap()"#;"###);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(t.iter().all(|(k, x)| *k != TokKind::Ident || x != "unwrap"));
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let t = tokenize("// qirana-lint::allow(QL001): reason\nlet x = 1;");
        assert_eq!(t[0].kind, TokKind::Comment);
        assert!(t[0].text.contains("qirana-lint::allow(QL001)"));
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let t = kinds("fn f<'a>(c: char) { let x = 'y'; let z = '\\n'; }");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Lifetime && x == "'a"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Char && x == "'y'"));
    }

    #[test]
    fn numbers_and_ranges() {
        let t = kinds("for i in 0..10 { let f = 1.5e-3 + x as f64; }");
        assert!(t.iter().any(|(k, x)| *k == TokKind::Number && x == "0"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Number && x == "10"));
        assert!(t
            .iter()
            .any(|(k, x)| *k == TokKind::Number && x == "1.5e-3"));
        assert!(t.iter().any(|(k, x)| *k == TokKind::Ident && x == "f64"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let t = tokenize("a\nb\n\nc");
        assert_eq!(t.iter().map(|t| t.line).collect::<Vec<_>>(), vec![1, 2, 4]);
    }
}
