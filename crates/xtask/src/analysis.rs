//! Per-file analysis context shared by every lint pass.
//!
//! Builds, from the raw token stream:
//!
//! * the **code view** — non-comment tokens, what the passes pattern-match;
//! * **test regions** — brace spans of items under `#[cfg(test)]` /
//!   `#[test]`-family attributes, where QL003 does not apply;
//! * **allow annotations** — `qirana-lint::allow(QL00x): reason` comments
//!   (line-scoped) and `qirana-lint::allow-file(QL00x): reason` (whole
//!   file), plus `#[allow(clippy::unwrap_used)]`-style attributes, which
//!   suppress QL003 over the annotated item so one annotation serves both
//!   clippy and qirana-lint.

use crate::lexer::{tokenize, Tok, TokKind};
use crate::lints::Lint;
use std::collections::BTreeSet;
use std::ops::Range;

/// Everything a lint pass needs to know about one source file.
pub struct FileContext {
    /// Repo-relative path, `/`-separated.
    pub path: String,
    /// Non-comment tokens, in order.
    pub code: Vec<Tok>,
    /// Index ranges (into `code`) lying inside test items.
    test_spans: Vec<Range<usize>>,
    /// Index ranges (into `code`) where QL003 is attribute-suppressed.
    ql003_spans: Vec<Range<usize>>,
    /// (line, lint) pairs waived by inline comments. An annotation on line
    /// `L` waives its lint on lines `L` and `L + 1`, so it can trail the
    /// offending expression or sit on its own line directly above.
    line_allows: BTreeSet<(u32, Lint)>,
    /// Lints waived for the entire file.
    file_allows: BTreeSet<Lint>,
}

impl FileContext {
    /// Lexes and analyzes one file.
    pub fn new(path: &str, src: &str) -> Self {
        let toks = tokenize(src);
        let mut line_allows = BTreeSet::new();
        let mut file_allows = BTreeSet::new();
        for t in toks.iter().filter(|t| t.kind == TokKind::Comment) {
            collect_annotations(t, &mut line_allows, &mut file_allows);
        }
        let code: Vec<Tok> = toks
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        let test_spans = attribute_item_spans(&code, is_test_attr);
        let mut ql003_spans = attribute_item_spans(&code, is_ql003_allow_attr);
        if has_inner_ql003_allow(&code) {
            ql003_spans.push(0..code.len());
        }
        FileContext {
            path: path.to_string(),
            code,
            test_spans,
            ql003_spans,
            line_allows,
            file_allows,
        }
    }

    /// True if the token at code index `i` lies inside a test item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&i))
    }

    /// True if a diagnostic for `lint` at code index `i` is waived, either
    /// by an inline/file annotation or (QL003) an allow/expect attribute.
    pub fn allowed(&self, lint: Lint, i: usize) -> bool {
        if self.file_allows.contains(&lint) {
            return true;
        }
        let line = self.code[i].line;
        if self.line_allows.contains(&(line, lint))
            || line > 1 && self.line_allows.contains(&(line - 1, lint))
        {
            return true;
        }
        lint == Lint::Ql003 && self.ql003_spans.iter().any(|r| r.contains(&i))
    }

    /// True for binary targets (`src/bin/*`, `main.rs`): QL003 is relaxed
    /// there — a CLI tool aborting on bad input is acceptable; a library
    /// panicking inside the broker is not.
    pub fn is_bin(&self) -> bool {
        self.path.contains("/bin/") || self.path.ends_with("main.rs")
    }

    /// True for the deterministic fault-injection module, which is the one
    /// sanctioned home for failpoint randomness (QL004 does not apply).
    pub fn is_fault_module(&self) -> bool {
        self.path.ends_with("/fault.rs")
    }

    /// True for the durable market ledger, the one sanctioned home for
    /// direct filesystem writes (QL005 does not apply).
    pub fn is_ledger_module(&self) -> bool {
        self.path.ends_with("/ledger.rs")
    }

    /// True for the telemetry module, whose exporters are the sanctioned
    /// diagnostic surface (QL006 does not apply).
    pub fn is_telemetry_module(&self) -> bool {
        self.path.ends_with("/telemetry.rs")
    }
}

/// Parses `qirana-lint::allow(QL00x[, QL00y…]): reason` and
/// `qirana-lint::allow-file(…): reason` out of one comment token. The
/// reason is mandatory: an annotation without one is ignored, so a bare
/// waiver never silences a diagnostic.
fn collect_annotations(
    t: &Tok,
    line_allows: &mut BTreeSet<(u32, Lint)>,
    file_allows: &mut BTreeSet<Lint>,
) {
    for (marker, file_scope) in [
        ("qirana-lint::allow-file(", true),
        ("qirana-lint::allow(", false),
    ] {
        let Some(start) = t.text.find(marker) else {
            continue;
        };
        let rest = &t.text[start + marker.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let has_reason = rest[close + 1..]
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        if !has_reason {
            continue;
        }
        for name in rest[..close].split(',') {
            if let Some(lint) = Lint::parse(name.trim()) {
                if file_scope {
                    file_allows.insert(lint);
                } else {
                    line_allows.insert((t.line, lint));
                }
            }
        }
        return; // allow-file matched would also substring-match allow
    }
}

/// Finds the `code`-index spans of items carrying an attribute selected by
/// `pred`. The span runs from the attribute to the close of the item's
/// brace block, or — for brace-less statements such as
/// `#[allow(…)] let x = f().unwrap();` — to the terminating `;`.
fn attribute_item_spans(code: &[Tok], pred: fn(&[Tok]) -> bool) -> Vec<Range<usize>> {
    let mut spans: Vec<Range<usize>> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct("#") && code.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching_close(code, i + 1, "[", "]") else {
            break;
        };
        if pred(&code[attr_start + 2..attr_end]) {
            // Walk forward to the item's opening brace, skipping any
            // further attributes; a `;` first means a brace-less item or
            // statement, which the attribute covers up to that `;`.
            let mut j = attr_end + 1;
            let mut depth_paren = 0i32;
            while j < code.len() {
                match code[j].text.as_str() {
                    "(" | "[" => depth_paren += 1,
                    ")" | "]" => depth_paren -= 1,
                    "{" if depth_paren == 0 => {
                        if let Some(end) = matching_close(code, j, "{", "}") {
                            spans.push(attr_start..end + 1);
                            break;
                        }
                        break;
                    }
                    ";" if depth_paren == 0 => {
                        spans.push(attr_start..j + 1);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i = attr_end + 1;
    }
    spans
}

/// Index of the punctuation closing the bracket opened at `open_idx`.
fn matching_close(code: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]`, `#[tokio::test]`, …
fn is_test_attr(attr: &[Tok]) -> bool {
    match attr.first() {
        Some(t) if t.is_ident("cfg") || t.is_ident("cfg_attr") => {
            attr.iter().any(|t| t.is_ident("test"))
        }
        Some(t) if t.is_ident("test") => true,
        // Path attrs ending in `test` (`tokio::test`, `proptest`-style
        // macros keep their own names and are not matched here).
        Some(_) => {
            attr.iter().any(|t| t.is_ident("test"))
                && attr
                    .iter()
                    .all(|t| t.kind == TokKind::Ident || t.is_punct(":"))
        }
        None => false,
    }
}

/// `#[allow(...)]`/`#[expect(...)]` attributes naming a panicking-call
/// clippy lint: honored as QL003 suppressions for the annotated item.
fn is_ql003_allow_attr(attr: &[Tok]) -> bool {
    attr.first()
        .is_some_and(|t| t.is_ident("allow") || t.is_ident("expect"))
        && attr
            .iter()
            .any(|t| t.is_ident("unwrap_used") || t.is_ident("expect_used") || t.is_ident("panic"))
}

/// Crate-level `#![allow(clippy::unwrap_used)]` (bins use this).
fn has_inner_ql003_allow(code: &[Tok]) -> bool {
    let mut i = 0;
    while i + 2 < code.len() {
        if code[i].is_punct("#") && code[i + 1].is_punct("!") && code[i + 2].is_punct("[") {
            if let Some(end) = matching_close(code, i + 2, "[", "]") {
                if is_ql003_allow_attr(&code[i + 3..end]) {
                    return true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new("crates/demo/src/lib.rs", src)
    }

    fn idx_of(ctx: &FileContext, ident: &str) -> usize {
        ctx.code
            .iter()
            .position(|t| t.is_ident(ident))
            .expect("ident present")
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let c =
            ctx("fn lib_fn() { body(); }\n#[cfg(test)]\nmod tests {\n  fn t() { inner(); }\n}\n");
        assert!(!c.in_test(idx_of(&c, "body")));
        assert!(c.in_test(idx_of(&c, "inner")));
    }

    #[test]
    fn test_fn_attr_is_a_test_region() {
        let c = ctx("#[test]\nfn t() { checked(); }\nfn real() { prod(); }\n");
        assert!(c.in_test(idx_of(&c, "checked")));
        assert!(!c.in_test(idx_of(&c, "prod")));
    }

    #[test]
    fn cfg_all_test_counts() {
        let c = ctx("#[cfg(all(test, feature = \"slow\"))]\nmod t { fn f() { x(); } }\n");
        assert!(c.in_test(idx_of(&c, "x")));
    }

    #[test]
    fn inline_allow_covers_same_and_next_line() {
        let c = ctx(
            "// qirana-lint::allow(QL003): startup invariant\nfn f() { g(); }\nfn h() { k(); }\n",
        );
        assert!(c.allowed(Lint::Ql003, idx_of(&c, "g")));
        assert!(!c.allowed(Lint::Ql003, idx_of(&c, "k")));
    }

    #[test]
    fn annotation_without_reason_is_ignored() {
        let c = ctx("// qirana-lint::allow(QL003)\nfn f() { g(); }\n");
        assert!(!c.allowed(Lint::Ql003, idx_of(&c, "g")));
    }

    #[test]
    fn file_allow_covers_everything() {
        let c = ctx("// qirana-lint::allow-file(QL002): canonical cast site\nfn f() { g(); }\n");
        assert!(c.allowed(Lint::Ql002, idx_of(&c, "g")));
        assert!(!c.allowed(Lint::Ql003, idx_of(&c, "g")));
    }

    #[test]
    fn clippy_allow_attr_suppresses_ql003_on_item() {
        let c = ctx("#[allow(clippy::unwrap_used)]\nfn f() { g(); }\nfn h() { k(); }\n");
        assert!(c.allowed(Lint::Ql003, idx_of(&c, "g")));
        assert!(!c.allowed(Lint::Ql003, idx_of(&c, "k")));
    }

    #[test]
    fn clippy_allow_attr_on_statement_covers_to_semicolon() {
        let c =
            ctx("fn f() {\n  #[allow(clippy::expect_used)]\n  let v = g();\n  let w = k();\n}\n");
        assert!(c.allowed(Lint::Ql003, idx_of(&c, "g")));
        assert!(!c.allowed(Lint::Ql003, idx_of(&c, "k")));
    }

    #[test]
    fn crate_level_inner_allow_suppresses_whole_file() {
        let c = ctx("#![allow(clippy::unwrap_used)]\nfn f() { g(); }\n");
        assert!(c.allowed(Lint::Ql003, idx_of(&c, "g")));
    }

    #[test]
    fn bin_detection() {
        assert!(FileContext::new("crates/bench/src/bin/fig2.rs", "").is_bin());
        assert!(FileContext::new("crates/xtask/src/main.rs", "").is_bin());
        assert!(!FileContext::new("crates/core/src/lib.rs", "").is_bin());
    }
}
