//! `qirana-lint`: the workspace's determinism/correctness static-analysis
//! engine, invoked as `cargo xtask lint`.
//!
//! QIRANA's arbitrage-freeness guarantee holds only if the same bundle
//! always produces the same price — bitwise, on every run, at every worker
//! count. Two shipped bugs (hash-order entropy accumulation; lossy
//! `i64 as f64` fingerprints) violated exactly that, postmortem. This
//! crate turns those bug classes into machine-checked, allow-listable
//! lints with `file:line` diagnostics; see [`lints`] for the rules and
//! DESIGN.md §6 for the motivating history.
//!
//! Since PR 9 the engine is **interprocedural**: [`parser`] lifts each
//! file's token stream to `fn` items and call expressions, [`graph`] and
//! [`resolve`] assemble a workspace-wide call graph (also exported by
//! `cargo xtask graph` as deterministic DOT/JSON), and three graph-powered
//! lints — QL007 panic-reachability, QL008 determinism taint, QL009 WAL
//! discipline — check whole-program properties the per-file passes cannot
//! see (DESIGN.md §10).

pub mod analysis;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod resolve;
pub mod walk;

use analysis::FileContext;
use lints::Diagnostic;
use std::io;
use std::path::Path;

/// Lints one file's source text with the per-file passes (QL001–QL006)
/// only (entry point for tests and tools).
pub fn lint_source(display_path: &str, src: &str) -> Vec<Diagnostic> {
    lints::lint_file(&FileContext::new(display_path, src))
}

/// Runs the interprocedural passes (QL007–QL009) over a call graph built
/// from this one file (entry point for graph-lint fixtures, where the
/// whole "workspace" is a single self-contained file).
pub fn lint_graph_source(display_path: &str, src: &str) -> Vec<Diagnostic> {
    let g = graph::build(vec![(display_path.to_string(), src.to_string())]);
    lints::lint_graph(&g)
}

/// Lints a set of `(display_path, source)` files: every per-file pass on
/// each file, plus the interprocedural passes over the call graph built
/// from all of them. Diagnostics come back sorted by (path, line, rule).
pub fn lint_sources(sources: Vec<(String, String)>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, src) in &sources {
        out.extend(lint_source(path, src));
    }
    let g = graph::build(sources);
    out.extend(lints::lint_graph(&g));
    out.sort();
    out
}

/// Reads every lintable source file under `root` as `(display_path, src)`
/// pairs, sorted by path (public for the parser round-trip self-check).
pub fn read_workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    for file in walk::workspace_sources(root)? {
        let src = std::fs::read_to_string(&file)?;
        sources.push((walk::display_path(root, &file), src));
    }
    Ok(sources)
}

/// Lints the whole workspace rooted at `root` — per-file passes QL001–
/// QL006 plus graph passes QL007–QL009; diagnostics come back sorted by
/// (path, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_sources(read_workspace_sources(root)?))
}

/// Builds the workspace call graph (entry point for `cargo xtask graph`
/// and the determinism self-checks).
pub fn build_workspace_graph(root: &Path) -> io::Result<graph::WorkspaceGraph> {
    Ok(graph::build(read_workspace_sources(root)?))
}
