//! `qirana-lint`: the workspace's determinism/correctness static-analysis
//! engine, invoked as `cargo xtask lint`.
//!
//! QIRANA's arbitrage-freeness guarantee holds only if the same bundle
//! always produces the same price — bitwise, on every run, at every worker
//! count. Two shipped bugs (hash-order entropy accumulation; lossy
//! `i64 as f64` fingerprints) violated exactly that, postmortem. This
//! crate turns those bug classes into machine-checked, allow-listable
//! lints with `file:line` diagnostics; see [`lints`] for the rules and
//! DESIGN.md §6 for the motivating history.

pub mod analysis;
pub mod lexer;
pub mod lints;
pub mod walk;

use analysis::FileContext;
use lints::Diagnostic;
use std::io;
use std::path::Path;

/// Lints one file's source text (entry point for tests and tools).
pub fn lint_source(display_path: &str, src: &str) -> Vec<Diagnostic> {
    lints::lint_file(&FileContext::new(display_path, src))
}

/// Lints the whole workspace rooted at `root`; diagnostics come back
/// sorted by (path, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for file in walk::workspace_sources(root)? {
        let src = std::fs::read_to_string(&file)?;
        out.extend(lint_source(&walk::display_path(root, &file), &src));
    }
    out.sort();
    Ok(out)
}
