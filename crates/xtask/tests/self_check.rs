//! The shipped workspace must be qirana-lint-clean: the same invariant CI
//! enforces with `cargo xtask lint`, kept in `cargo test` so a violation
//! cannot land through a path that skips the lint step. Alongside it:
//! the item parser must account for every `fn` token in the workspace
//! (round-trip smoke) and the call-graph artifacts must be byte-identical
//! across rebuilds (the CI `graph` lane's determinism contract).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let diags = xtask::lint_workspace(&workspace_root()).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "qirana-lint violations in the workspace:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every `fn` keyword that introduces a named item must surface as a
/// parsed `FnItem` — if the parser silently drops a function, its calls
/// and panic sites vanish from the graph and QL007–QL009 under-report.
#[test]
fn parser_accounts_for_every_fn_in_the_workspace() {
    let sources = xtask::read_workspace_sources(&workspace_root()).expect("workspace walk");
    assert!(!sources.is_empty(), "workspace walk found no sources");
    for (path, src) in &sources {
        let ctx = xtask::analysis::FileContext::new(path, src);
        let parsed = xtask::parser::parse_file(&ctx);
        let expected = xtask::parser::count_fn_tokens(&ctx.code);
        assert_eq!(
            parsed.items.len(),
            expected,
            "{path}: parser found {} fn items but the token stream has {}",
            parsed.items.len(),
            expected
        );
    }
}

/// Two builds over the same sources must render identical DOT and JSON —
/// the byte-for-byte contract CI checks by running `cargo xtask graph`
/// twice and comparing the artifacts.
#[test]
fn graph_artifacts_are_deterministic_across_builds() {
    let root = workspace_root();
    let a = xtask::build_workspace_graph(&root).expect("first build");
    let b = xtask::build_workspace_graph(&root).expect("second build");
    assert!(!a.nodes.is_empty(), "workspace graph has no nodes");
    assert!(!a.edges.is_empty(), "workspace graph has no edges");
    assert_eq!(a.to_dot(), b.to_dot(), "DOT artifact must be deterministic");
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "JSON artifact must be deterministic"
    );
}

/// The graph lints specifically (not just the union with per-file lints)
/// sweep the workspace clean: every panic reachable from public API is
/// typed or waived, no hash iteration taints a fingerprint/price producer,
/// and every broker commit path appends before applying.
#[test]
fn workspace_graph_lints_are_clean() {
    let g = xtask::build_workspace_graph(&workspace_root()).expect("workspace graph");
    let diags = xtask::lints::lint_graph(&g);
    assert!(
        diags.is_empty(),
        "interprocedural lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
