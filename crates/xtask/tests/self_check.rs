//! The shipped workspace must be qirana-lint-clean: the same invariant CI
//! enforces with `cargo xtask lint`, kept in `cargo test` so a violation
//! cannot land through a path that skips the lint step.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels under the workspace root");
    let diags = xtask::lint_workspace(root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "qirana-lint violations in the workspace:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
