//! QL007 fixture: the same reachable panics as `ql007_panic_reachable.rs`,
//! silenced through both waiver channels — at the panic site and at the
//! public entry point.

fn inner_step(v: &[i64]) -> i64 {
    // qirana-lint::allow(QL003, QL007): harness batches are never empty
    v.iter().copied().max().expect("non-empty batch")
}

pub fn price_batch(v: &[i64]) -> i64 {
    inner_step(v)
}

fn boot_invariant() {
    // qirana-lint::allow(QL003): exercised by every constructor test
    assert!(!std::env::args().next().is_none(), "argv0 missing");
    let _ = 0usize;
    unreachable_helper();
}

fn unreachable_helper() {
    // qirana-lint::allow(QL003): startup-only invariant
    panic!("boot invariant violated")
}

// qirana-lint::allow(QL007): startup invariant; callers run it once before serving
pub fn boot() {
    boot_invariant();
}
