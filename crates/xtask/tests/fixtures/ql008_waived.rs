//! QL008 fixture: the same hash iteration feeding an `engine` sink, waived
//! at the iteration site (keys are sorted before they reach the output).

use std::collections::HashMap;

fn tally(rows: &[(String, i64)]) -> Vec<(String, i64)> {
    let mut acc: HashMap<String, i64> = HashMap::new();
    for (k, v) in rows {
        *acc.entry(k.clone()).or_default() += v;
    }
    let mut out = Vec::new();
    // qirana-lint::allow(QL001, QL008): `out` is sorted before use below
    for (k, v) in &acc {
        out.push((k.clone(), *v));
    }
    out.sort();
    out
}

pub mod engine {
    pub fn fingerprint_rows(rows: &[(String, i64)]) -> usize {
        let grouped = crate::tally(rows);
        grouped.len()
    }
}
