//! QL002 fixture: lossy `as f64` casts on 64-bit integers.
//! NOT compiled — parsed by the golden test against the `.expected` file.

fn lossy_fingerprint(key: i64) -> f64 {
    // Collapses every key beyond 2^53 — the PR 3 fingerprint bug class.
    key as f64
}

fn lossy_len(rows: &[i64]) -> f64 {
    rows.iter().sum::<i64>() as f64
}

fn small_type_is_fine(count: u32, ratio: f32) -> f64 {
    count as f64 + ratio as f64
}

fn small_literal_is_fine() -> f64 {
    1024 as f64
}

fn annotated_count(n: usize) -> f64 {
    // qirana-lint::allow(QL002): n is a row count, far below 2^53
    n as f64
}
