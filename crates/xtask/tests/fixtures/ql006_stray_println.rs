//! QL006 fixture: stray prints in library code that bypass telemetry.
//! NOT compiled — parsed by the golden test against the `.expected` file.

fn debug_print_left_behind(price: f64) {
    println!("price = {price}");
}

fn stderr_diagnostic(detail: &str) {
    eprintln!("warning: {detail}");
}

fn dbg_probe(n: usize) -> usize {
    dbg!(n)
}

fn writeln_into_buffer_is_fine(out: &mut String, price: f64) {
    use std::fmt::Write as _;
    writeln!(out, "{price}").ok();
}

fn shadowed_name_is_fine(println: u32) -> u32 {
    println + 1
}

fn annotated_operator_notice(msg: &str) {
    // qirana-lint::allow(QL006): one-shot migration notice requested by the operator
    eprintln!("{msg}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("test scaffolding output");
    }
}
