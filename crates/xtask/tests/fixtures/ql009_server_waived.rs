//! QL009 fixture: server commit handlers silenced both ways — proper
//! append-then-apply ordering, and an explicit waiver on an apply-first
//! path with a documented compensating mechanism.

pub mod server {
    pub struct Ledger;

    impl Ledger {
        pub fn append(&mut self, _event: &str) {}
    }

    pub struct Market {
        pub buyers: std::collections::BTreeMap<String, i64>,
        pub ledger: Ledger,
    }

    pub fn commit_buy(m: &mut Market, buyer: String, paid: i64) {
        m.ledger.append("buy");
        m.buyers.insert(buyer, paid);
    }

    pub fn commit_cancel(m: &mut Market, buyer: String) {
        // qirana-lint::allow(QL009): cancellation re-inserts on append failure;
        m.buyers.remove(&buyer);
        m.ledger.append("cancel");
    }
}
