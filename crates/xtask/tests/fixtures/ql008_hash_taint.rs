//! QL008 fixture: a fingerprint producer (module segment `engine`)
//! transitively calls a helper that iterates a HashMap in per-process
//! order, tainting the deterministic output.

use std::collections::HashMap;

fn tally(rows: &[(String, i64)]) -> Vec<(String, i64)> {
    let mut acc: HashMap<String, i64> = HashMap::new();
    for (k, v) in rows {
        *acc.entry(k.clone()).or_default() += v;
    }
    let mut out = Vec::new();
    for (k, v) in &acc {
        out.push((k.clone(), *v));
    }
    out
}

pub mod engine {
    pub fn fingerprint_rows(rows: &[(String, i64)]) -> usize {
        let grouped = crate::tally(rows);
        grouped.len()
    }
}
