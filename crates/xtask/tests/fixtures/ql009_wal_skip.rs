//! QL009 fixture: a broker commit entry point mutates buyer accounts
//! before (and without) logging the event to the ledger, both directly
//! and through a helper call.

pub mod broker {
    pub struct Market {
        pub buyers: std::collections::BTreeMap<String, i64>,
        pub ledger: Option<Vec<String>>,
    }

    fn apply_account(m: &mut Market, buyer: String, paid: i64) {
        m.buyers.insert(buyer, paid);
    }

    pub fn commit_purchase(m: &mut Market, buyer: String, paid: i64) {
        apply_account(m, buyer, paid);
        if let Some(led) = m.ledger.as_mut() {
            led.push(format!("{paid}"));
        }
    }
}
