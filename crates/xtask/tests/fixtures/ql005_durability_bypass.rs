//! QL005 fixture: durable filesystem writes that bypass the ledger.
//! NOT compiled — parsed by the golden test against the `.expected` file.

use std::fs::{self, File};
use std::io::Write;

fn side_channel_dump(bytes: &[u8]) {
    fs::write("prices.bin", bytes).ok();
}

fn qualified_side_channel(bytes: &[u8]) {
    std::fs::write("prices.bin", bytes).ok();
}

fn handle_side_channel() -> std::io::Result<File> {
    File::create("market.log")
}

fn exclusive_side_channel() -> std::io::Result<File> {
    File::create_new("market.lock")
}

fn in_memory_write_is_fine(sink: &mut Vec<u8>, payload: &[u8]) {
    sink.write_all(payload).ok();
}

fn unrelated_create_is_fine(cap: usize) -> Vec<u8> {
    Buffer::create(cap)
}

fn annotated_export(bytes: &[u8]) {
    // qirana-lint::allow(QL005): operator-requested debug dump, not market state
    fs::write("debug-dump.bin", bytes).ok();
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_files_in_tests_are_fine() {
        std::fs::write("scratch", b"x").unwrap();
    }
}
