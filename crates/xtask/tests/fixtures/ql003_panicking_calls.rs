//! QL003 fixture: panicking calls in library code.
//! NOT compiled — parsed by the golden test against the `.expected` file.

fn unwrap_in_lib(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn expect_in_lib(v: Result<u32, String>) -> u32 {
    v.expect("must parse")
}

fn panic_in_lib(x: u32) -> u32 {
    if x > 10 {
        panic!("x too large: {x}");
    }
    x
}

fn unreachable_in_lib(x: u32) -> u32 {
    match x % 2 {
        0 => 0,
        1 => 1,
        _ => unreachable!(),
    }
}

fn todo_in_lib() {
    todo!("finish this")
}

fn method_named_unwrap_is_fine(wrapper: Wrapper) -> u32 {
    // `unwrap` here is a field access, not the panicking call.
    wrapper.unwrap
}

struct Wrapper {
    unwrap: u32,
}

#[allow(clippy::unwrap_used)] // attribute waiver covers the item
fn attributed_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

fn annotated_expect(v: Option<u32>) -> u32 {
    // qirana-lint::allow(QL003): invariant established by the caller
    v.expect("caller checked")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_exempt() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
