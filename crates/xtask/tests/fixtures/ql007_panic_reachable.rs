//! QL007 fixture: a private helper's panic site is transitively reachable
//! from a public library entry point two calls up.

fn inner_step(v: &[i64]) -> i64 {
    v.iter().copied().max().expect("non-empty batch")
}

fn mid_step(v: &[i64]) -> i64 {
    inner_step(v)
}

pub fn price_batch(v: &[i64]) -> i64 {
    mid_step(v)
}
