//! QL009 fixture: a *server* commit handler mutates buyer accounts with
//! no preceding ledger append — the widened gate must catch WAL-skips in
//! the service layer, not just inside the broker module.

pub mod server {
    pub struct Market {
        pub buyers: std::collections::BTreeMap<String, i64>,
        pub ledger: Vec<String>,
    }

    fn apply_account(m: &mut Market, buyer: String, paid: i64) {
        m.buyers.insert(buyer, paid);
    }

    /// The HTTP buy handler: applies the account mutation before the
    /// event ever reaches the ledger.
    pub fn commit_buy(m: &mut Market, buyer: String, paid: i64) {
        apply_account(m, buyer, paid);
        m.ledger.push(format!("{paid}"));
    }
}
