//! Clean fixture: idiomatic library code that must produce no diagnostics.
//! NOT compiled — parsed by the golden test against the `.expected` file.

use std::collections::BTreeMap;

#[derive(Debug)]
pub enum FixtureError {
    Missing(String),
}

pub fn lookup(table: &BTreeMap<String, i64>, key: &str) -> Result<i64, FixtureError> {
    table
        .get(key)
        .copied()
        .ok_or_else(|| FixtureError::Missing(key.to_string()))
}

pub fn ordered_total(table: &BTreeMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_k, v) in table {
        total += v;
    }
    total
}

pub fn exact_ratio(num: u32, den: u32) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}
