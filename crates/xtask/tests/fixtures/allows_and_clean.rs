//! Waiver-mechanics fixture: every lint demonstrated *waived*, plus the
//! cases where a malformed waiver must NOT silence the diagnostic.
//! NOT compiled — parsed by the golden test against the `.expected` file.
// qirana-lint::allow-file(QL001): this fixture exercises file-scoped waivers

use std::collections::HashMap;

fn file_allow_covers_ql001(weights: HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_name, w) in &weights {
        total += w;
    }
    total
}

fn trailing_allow(key: i64) -> f64 {
    key as f64 // qirana-lint::allow(QL002): demo of a trailing waiver
}

fn multi_lint_allow(v: Option<i64>) -> f64 {
    // qirana-lint::allow(QL002, QL003): one comment, two waived lints
    v.unwrap() as f64
}

fn reasonless_allow_is_ignored(v: Option<u32>) -> u32 {
    // qirana-lint::allow(QL003)
    v.unwrap()
}

fn stale_allow_does_not_reach(v: Option<u32>) -> u32 {
    // qirana-lint::allow(QL003): two lines up, out of range
    let _ = v.is_some();
    v.unwrap()
}
