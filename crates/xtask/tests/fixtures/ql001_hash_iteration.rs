//! QL001 fixture: HashMap/HashSet iteration orders leaking into results.
//! NOT compiled — parsed by the golden test against the `.expected` file.

use std::collections::{BTreeMap, HashMap, HashSet};

fn hash_map_for_loop(weights: HashMap<String, f64>) -> f64 {
    let mut total = 0.0;
    // Float addition is not associative: hash order changes the sum's ulps.
    for (_name, w) in &weights {
        total += w;
    }
    total
}

fn hash_set_fold(seen: HashSet<i64>) -> i64 {
    seen.iter().fold(0, |a, b| a ^ (a << 1) ^ b)
}

fn keys_and_values(index: HashMap<u32, Vec<u32>>) -> Vec<u32> {
    let mut out: Vec<u32> = index.keys().copied().collect();
    out.extend(index.values().map(|v| v.len() as u32));
    out
}

// Named differently from the HashMap above on purpose: the type tracking
// is per-name within a file, so a name bound to a HashMap anywhere in the
// file stays suspect everywhere in it.
fn btree_is_fine(ordered: BTreeMap<String, f64>) -> f64 {
    let mut total = 0.0;
    for (_name, w) in &ordered {
        total += w;
    }
    total
}

fn membership_only_is_fine(seen: &HashSet<i64>, x: i64) -> bool {
    seen.contains(&x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &m {
            assert!(k <= v);
        }
    }
}
