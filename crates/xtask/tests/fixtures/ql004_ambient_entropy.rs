//! QL004 fixture: unseeded randomness and ambient clock reads.
//! NOT compiled — parsed by the golden test against the `.expected` file.

use rand::{Rng, SeedableRng};
use std::time::{Instant, SystemTime};

fn unseeded_sampling() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

fn entropy_seeded() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}

fn bare_random() -> u64 {
    rand::random()
}

fn wall_clock_deadline() -> Instant {
    Instant::now()
}

fn wall_clock_stamp() -> SystemTime {
    SystemTime::now()
}

fn unstable_hash_signature(x: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    h.write_u64(x);
    h.finish()
}

fn unstable_hash_state() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

fn seeded_is_fine(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

fn annotated_meter() -> Instant {
    // qirana-lint::allow(QL004): this helper is itself the budget meter
    Instant::now()
}
