//! QL009 fixture: the same broker mutation shapes, silenced two ways —
//! append-then-apply ordering (the fix QL009 asks for) and an explicit
//! waiver on an apply-first path with a documented rollback.

pub mod broker {
    pub struct Ledger;

    impl Ledger {
        pub fn append(&mut self, _event: &str) {}
    }

    pub struct Market {
        pub buyers: std::collections::BTreeMap<String, i64>,
        pub ledger: Ledger,
    }

    pub fn commit_purchase(m: &mut Market, buyer: String, paid: i64) {
        m.ledger.append("purchase");
        m.buyers.insert(buyer, paid);
    }

    pub fn commit_refund(m: &mut Market, buyer: String) {
        // qirana-lint::allow(QL009): refund size is only known after removal;
        m.buyers.remove(&buyer);
        m.ledger.append("refund");
    }
}
