//! Golden tests: every fixture under `tests/fixtures/` is linted and its
//! diagnostics compared line-for-line against the committed `.expected`
//! file. Each of QL001–QL006 is demonstrated firing, each waiver mechanism
//! is demonstrated suppressing, and `clean.rs` pins the zero-diagnostic
//! case. Regenerate an expectation after an intentional lint change with
//! `cargo xtask lint crates/xtask/tests/fixtures/<f>.rs > …/<f>.expected`.
//!
//! `ql007_*`/`ql008_*`/`ql009_*` fixtures exercise the interprocedural
//! graph lints through `xtask::lint_graph_source` (graph diagnostics only,
//! so a fixture's deliberate per-file QL001/QL003 bait stays out of the
//! golden). Each graph lint has a firing fixture and a fully waived twin.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn lint_fixture(name: &str) -> Vec<String> {
    let src = std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture exists");
    xtask::lint_source(name, &src)
        .iter()
        .map(|d| d.to_string())
        .collect()
}

fn expected(name: &str) -> Vec<String> {
    let path = fixtures_dir().join(name).with_extension("expected");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
        .lines()
        .map(str::to_string)
        .collect()
}

fn check(name: &str) {
    assert_eq!(lint_fixture(name), expected(name), "diagnostics for {name}");
}

fn lint_graph_fixture(name: &str) -> Vec<String> {
    let src = std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture exists");
    xtask::lint_graph_source(name, &src)
        .iter()
        .map(|d| d.to_string())
        .collect()
}

fn check_graph(name: &str) {
    assert_eq!(
        lint_graph_fixture(name),
        expected(name),
        "graph diagnostics for {name}"
    );
}

#[test]
fn ql001_hash_iteration_golden() {
    let got = lint_fixture("ql001_hash_iteration.rs");
    assert!(!got.is_empty(), "QL001 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL001]")));
    check("ql001_hash_iteration.rs");
}

#[test]
fn ql002_lossy_cast_golden() {
    let got = lint_fixture("ql002_lossy_cast.rs");
    assert!(!got.is_empty(), "QL002 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL002]")));
    check("ql002_lossy_cast.rs");
}

#[test]
fn ql003_panicking_calls_golden() {
    let got = lint_fixture("ql003_panicking_calls.rs");
    assert!(!got.is_empty(), "QL003 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL003]")));
    check("ql003_panicking_calls.rs");
}

#[test]
fn ql004_ambient_entropy_golden() {
    let got = lint_fixture("ql004_ambient_entropy.rs");
    assert!(!got.is_empty(), "QL004 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL004]")));
    check("ql004_ambient_entropy.rs");
}

#[test]
fn ql005_durability_bypass_golden() {
    let got = lint_fixture("ql005_durability_bypass.rs");
    assert!(!got.is_empty(), "QL005 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL005]")));
    check("ql005_durability_bypass.rs");
}

#[test]
fn ql006_stray_println_golden() {
    let got = lint_fixture("ql006_stray_println.rs");
    assert!(!got.is_empty(), "QL006 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL006]")));
    check("ql006_stray_println.rs");
}

#[test]
fn ql007_panic_reachability_golden() {
    let got = lint_graph_fixture("ql007_panic_reachable.rs");
    assert!(!got.is_empty(), "QL007 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL007]")));
    assert!(
        got.iter().all(|d| d.contains("call path:")),
        "QL007 diagnostics must show the example call path"
    );
    check_graph("ql007_panic_reachable.rs");
}

#[test]
fn ql007_waivers_suppress_at_site_and_entry() {
    assert_eq!(lint_graph_fixture("ql007_waived.rs"), Vec::<String>::new());
    check_graph("ql007_waived.rs");
}

#[test]
fn ql008_determinism_taint_golden() {
    let got = lint_graph_fixture("ql008_hash_taint.rs");
    assert!(!got.is_empty(), "QL008 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL008]")));
    check_graph("ql008_hash_taint.rs");
}

#[test]
fn ql008_waiver_suppresses_at_iteration_site() {
    assert_eq!(lint_graph_fixture("ql008_waived.rs"), Vec::<String>::new());
    check_graph("ql008_waived.rs");
}

#[test]
fn ql009_wal_discipline_golden() {
    let got = lint_graph_fixture("ql009_wal_skip.rs");
    assert!(!got.is_empty(), "QL009 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL009]")));
    check_graph("ql009_wal_skip.rs");
}

#[test]
fn ql009_append_then_apply_and_waiver_are_clean() {
    assert_eq!(lint_graph_fixture("ql009_waived.rs"), Vec::<String>::new());
    check_graph("ql009_waived.rs");
}

#[test]
fn ql009_fires_on_server_commit_handlers() {
    let got = lint_graph_fixture("ql009_server_skip.rs");
    assert!(!got.is_empty(), "server-scope QL009 fixture must fire");
    assert!(got.iter().all(|d| d.contains("[QL009]")));
    check_graph("ql009_server_skip.rs");
}

#[test]
fn ql009_server_append_then_apply_and_waiver_are_clean() {
    assert_eq!(
        lint_graph_fixture("ql009_server_waived.rs"),
        Vec::<String>::new()
    );
    check_graph("ql009_server_waived.rs");
}

#[test]
fn waiver_mechanics_golden() {
    // The file demonstrates file-scope, trailing, and multi-lint waivers
    // (suppressed) alongside reasonless/stale ones (still reported).
    check("allows_and_clean.rs");
}

#[test]
fn clean_fixture_produces_no_diagnostics() {
    assert_eq!(lint_fixture("clean.rs"), Vec::<String>::new());
    check("clean.rs");
}

#[test]
fn every_fixture_has_a_golden_file_and_vice_versa() {
    let dir = fixtures_dir();
    let mut rs = Vec::new();
    let mut exp = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let p = entry.expect("dir entry").path();
        match p.extension().and_then(|e| e.to_str()) {
            Some("rs") => rs.push(p.file_stem().unwrap().to_owned()),
            Some("expected") => exp.push(p.file_stem().unwrap().to_owned()),
            _ => {}
        }
    }
    rs.sort();
    exp.sort();
    assert_eq!(rs, exp, "fixture .rs and .expected files must pair up");
}
