//! A minimal JSON reader for validating bench artifacts.
//!
//! The harness *emits* JSON by hand (deterministic field order, no
//! dependency); this module is the matching reader so the schema check in
//! [`crate::harness::validate_bench_json`] and the CI smoke step can parse
//! what was written without pulling in a serde stack. It accepts exactly
//! RFC 8259 JSON — no comments, no trailing commas.

use std::fmt;

/// A parsed JSON value. Objects keep their key order (the emitter's order
/// is deterministic, so golden comparisons stay stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Short type tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.detail)
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Nesting bound: bench artifacts are a few levels deep; a pathological
/// input must not blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the harness;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    if let Some(c) = s.chars().next() {
                        if (c as u32) < 0x20 {
                            return Err(self.err("unescaped control character"));
                        }
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\n","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn round_trips_escapes() {
        let v = parse(r#""tab\there A""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A"));
    }
}
