//! A minimal JSON reader and writer for bench artifacts.
//!
//! The harness emits JSON by hand (deterministic field order, no
//! dependency); this module holds the matching reader — so the schema
//! check in [`crate::harness::validate_bench_json`] and the CI smoke step
//! can parse what was written without pulling in a serde stack — and the
//! one number serializer every emitter must share, [`write_f64`]. The
//! reader accepts exactly RFC 8259 JSON — no comments, no trailing
//! commas.
//!
//! Numbers are the round-trip-critical piece: `BENCH_*.json` artifacts
//! feed the perf trajectory, so a value written, validated, and rewritten
//! must stay byte-identical. [`write_f64`] leans on Rust's shortest-
//! round-trip `Display` (never exponent form, always re-parses to the
//! same bits) and the reader's `str::parse::<f64>` (correctly rounded),
//! which together make serialize → parse → serialize a fixpoint for
//! every finite `f64`; `render` + [`parse`] extend that to whole
//! documents. The proptest in this module pins the invariant.

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep their key order (the emitter's order
/// is deterministic, so golden comparisons stay stable).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Short type tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub detail: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.detail)
    }
}

/// Serializes a finite `f64` as a JSON number, `null` otherwise (JSON has
/// no NaN/Infinity). Rust's `Display` is shortest-round-trip and never
/// uses exponent form, so the emitted text re-parses to the identical
/// bits and re-serializes to the identical bytes — including `-0.0`
/// (`"-0"`). Every harness emitter funnels floats through here.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Serializes one value compactly (no whitespace), the writer-side twin
/// of [`parse`]: `parse(&render(v))` reproduces `v` exactly (modulo
/// non-finite numbers, which JSON cannot carry and `write_f64` maps to
/// `null`), and `render(&parse(s)?)` is a fixpoint.
pub fn render(v: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_f64(out, *n),
        Json::Str(s) => out.push_str(&qirana_core::telemetry::json_string(s)),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&qirana_core::telemetry::json_string(k));
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

/// Nesting bound: bench artifacts are a few levels deep; a pathological
/// input must not blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the harness;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    if let Some(c) = s.chars().next() {
                        if (c as u32) < 0x20 {
                            return Err(self.err("unescaped control character"));
                        }
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\n","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_tokens() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn round_trips_escapes() {
        let v = parse(r#""tab\there A""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A"));
    }

    #[test]
    fn renders_documents_parse_back_exactly() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("qirana-bench/v1".into())),
            (
                "samples".into(),
                Json::Arr(vec![
                    Json::Num(1.5),
                    Json::Num(-0.0),
                    Json::Num(f64::NAN),
                    Json::Bool(true),
                    Json::Null,
                ]),
            ),
            ("note".into(), Json::Str("tab\th \"q\" \\ \u{1}".into())),
        ]);
        let text = render(&doc);
        let back = parse(&text).unwrap();
        // NaN cannot survive (JSON has no NaN) — it becomes null; every
        // other leaf round-trips exactly, and the rendering is a fixpoint.
        assert_eq!(render(&back), text);
        assert_eq!(
            back.get("samples").unwrap().as_arr().unwrap()[2],
            Json::Null
        );
        assert_eq!(
            back.get("note").unwrap().as_str(),
            doc.get("note").unwrap().as_str()
        );
    }

    /// The satellite audit's checker: serialize → parse must reproduce
    /// the exact bits, and re-serializing must reproduce the exact bytes.
    fn check_f64_round_trip(x: f64) {
        if !x.is_finite() {
            return;
        }
        let mut s1 = String::new();
        write_f64(&mut s1, x);
        let back = match parse(&s1) {
            Ok(Json::Num(n)) => n,
            other => panic!("`{s1}` did not parse back as a number: {other:?}"),
        };
        assert_eq!(back.to_bits(), x.to_bits(), "bits drifted through `{s1}`");
        let mut s2 = String::new();
        write_f64(&mut s2, back);
        assert_eq!(s1, s2, "serialization is not a fixpoint");
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4096, ..ProptestConfig::default() })]
        /// Serialize → parse → serialize is byte-stable for *all* finite
        /// `f64` — uniform bit patterns cover subnormals, extremes, and
        /// ulp neighbors, not just round values.
        #[test]
        fn f64_round_trip_is_byte_stable_for_uniform_bits(bits in any::<u64>()) {
            check_f64_round_trip(f64::from_bits(bits));
        }

        /// Same invariant over the generator's mixed magnitudes/specials.
        #[test]
        fn f64_round_trip_is_byte_stable_for_mixed_magnitudes(x in any::<f64>()) {
            check_f64_round_trip(x);
        }
    }

    /// The boundary cases worth naming, checked unconditionally.
    #[test]
    fn f64_round_trip_boundary_cases() {
        for x in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::from_bits(1),                     // smallest subnormal
            f64::from_bits(0x000F_FFFF_FFFF_FFFF), // largest subnormal
            1e300,
            -1e-300,
            2.0f64.powi(53) + 2.0,
        ] {
            check_f64_round_trip(x);
        }
    }
}
