//! Thread-scaling of the parallel pricing executor: wall-clock time of the
//! naive disagreement loop and the partition (entropy-family) loop over a
//! large support set, at increasing worker counts.
//!
//! `cargo run -p qirana-bench --bin scaling --release -- [--support N] [--seed N] [--max-threads N]`
//!
//! Each row prints the sequential baseline, the parallel time, and the
//! speedup; the disagreement bits / partition fingerprints are asserted
//! identical across all worker counts (the executor's determinism
//! guarantee), so the speedup is free of semantic drift.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{Args, Harness};
use qirana_core::{
    bundle_disagreements, bundle_partition, generate_support, prepare_query, EngineOptions,
    Parallelism, SupportConfig, SupportSet,
};
use qirana_datagen::world;

fn main() {
    let args = Args::parse();
    let support: usize = args.get("support", 10_000);
    let seed: u64 = args.get("seed", 1);
    let max_threads: usize = args.get("max-threads", 8);

    let mut h = Harness::from_args("scaling", &args, None);
    h.param("support", support);
    h.param("seed", seed);
    h.param("max-threads", max_threads);

    let mut db = world::generate(7);
    let support_set = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: support,
            seed,
            ..Default::default()
        },
    ));

    let queries = [
        (
            "agg",
            "SELECT Continent, COUNT(*), SUM(Population) FROM Country GROUP BY Continent",
        ),
        (
            "spj",
            "SELECT Name FROM Country WHERE Population > 10000000",
        ),
    ];

    let mut threads = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        threads.push(t);
        t *= 2;
    }

    println!("== Thread scaling (world dataset, S={support}) ==");
    println!(
        "{:<6} {:<10} {:>8} {:>12} {:>9}",
        "query", "path", "threads", "seconds", "speedup"
    );

    for (name, sql) in queries {
        let q = prepare_query(&db, sql).unwrap();

        // Naive disagreement loop: one re-execution per support instance.
        let mut baseline = 0.0;
        let mut reference_bits = Vec::new();
        for &n in &threads {
            let opts = EngineOptions::naive()
                .with_parallelism(Parallelism::Threads(n))
                .with_telemetry(h.telemetry());
            let (bits, secs) = h.time(&format!("{name}_naive"), &format!("threads={n}"), || {
                bundle_disagreements(&mut db, &[&q], &support_set, &opts, None).unwrap()
            });
            if n == 1 {
                baseline = secs;
                reference_bits = bits;
            } else {
                assert_eq!(
                    bits, reference_bits,
                    "parallel bits diverged at {n} threads"
                );
            }
            println!(
                "{:<6} {:<10} {:>8} {:>12.4} {:>8.2}x",
                name,
                "naive",
                n,
                secs,
                baseline / secs
            );
        }

        // Partition loop: one bundle fingerprint per support instance.
        let mut baseline = 0.0;
        let mut reference_fps = Vec::new();
        for &n in &threads {
            let opts = EngineOptions::default()
                .with_parallelism(Parallelism::Threads(n))
                .with_telemetry(h.telemetry());
            let (fps, secs) = h.time(
                &format!("{name}_partition"),
                &format!("threads={n}"),
                || bundle_partition(&mut db, &[&q], &support_set, &opts).unwrap(),
            );
            if n == 1 {
                baseline = secs;
                reference_fps = fps;
            } else {
                assert_eq!(
                    fps, reference_fps,
                    "parallel partition diverged at {n} threads"
                );
            }
            println!(
                "{:<6} {:<10} {:>8} {:>12.4} {:>8.2}x",
                name,
                "partition",
                n,
                secs,
                baseline / secs
            );
        }
    }
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
