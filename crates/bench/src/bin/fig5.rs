//! Figure 5: scalability — time to price each SSB / TPC-H query with the
//! per-update optimizer ("no batching"), the batched optimizer, and, for
//! reference, the plain query execution time.
//!
//! `cargo run -p qirana-bench --bin fig5 --release -- <ssb|tpch> [--sf F] [--support N] [--naive 1] [--threads N]`
//!
//! The paper runs SF = 1 with S = 100 000; defaults here are scaled down
//! (see EXPERIMENTS.md) — the *ratios* between the three columns are the
//! result.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{Args, Harness};
use qirana_core::generate_support;
use qirana_core::{
    bundle_disagreements, prepare_query, EngineOptions, Parallelism, SupportConfig, SupportSet,
};
use qirana_datagen::queries::{ssb_queries, tpch_queries};
use qirana_datagen::{ssb, tpch};
use qirana_sqlengine::{execute, ExecContext};

fn main() {
    let args = Args::parse();
    let which = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "ssb".to_string());
    let sf: f64 = args.get("sf", 0.01);
    let support: usize = args.get("support", 2000);
    let include_naive: usize = args.get("naive", 0);
    let threads: usize = args.get("threads", 1);
    let par = if threads > 1 {
        Parallelism::Threads(threads)
    } else {
        Parallelism::Sequential
    };

    let (mut db, queries): (_, Vec<(String, String)>) = match which.as_str() {
        "ssb" => (
            ssb::generate(sf, 5),
            ssb_queries()
                .into_iter()
                .map(|(n, q)| (n.to_string(), q.to_string()))
                .collect(),
        ),
        "tpch" => (
            tpch::generate(sf, 5),
            tpch_queries(sf)
                .into_iter()
                .map(|(n, q)| (n.to_string(), q))
                .collect(),
        ),
        other => {
            eprintln!("unknown dataset {other}; use ssb or tpch");
            return;
        }
    };

    let mut h = Harness::from_args("fig5", &args, None);
    h.param("dataset", &which);
    h.param("sf", sf);
    h.param("support", support);
    h.param("threads", threads);

    println!(
        "== Figure 5 ({which}, sf={sf}, S={support}, threads={threads}): pricing time in seconds =="
    );
    let support_set = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: support,
            seed: args.get("seed", 1),
            ..Default::default()
        },
    ));

    print!(
        "{:<6} {:>14} {:>14} {:>14}",
        "query", "no batching", "with batching", "query exec"
    );
    if include_naive == 1 {
        print!(" {:>14}", "naive");
    }
    println!();

    for (name, sql) in queries {
        let q = match prepare_query(&db, &sql) {
            Ok(q) => q,
            Err(e) => {
                println!("{name:<6} failed to prepare: {e}");
                continue;
            }
        };
        let (_, t_exec) = h.time("query_exec", &name, || {
            execute(&q.plan, &ExecContext::new(&db)).unwrap()
        });
        let (_, t_nobatch) = h.time("no_batching", &name, || {
            bundle_disagreements(
                &mut db,
                &[&q],
                &support_set,
                &EngineOptions::no_batching().with_parallelism(par),
                None,
            )
            .unwrap()
        });
        let (_, t_batch) = h.time("with_batching", &name, || {
            bundle_disagreements(
                &mut db,
                &[&q],
                &support_set,
                &EngineOptions::default().with_parallelism(par),
                None,
            )
            .unwrap()
        });
        print!("{name:<6} {t_nobatch:>14.4} {t_batch:>14.4} {t_exec:>14.4}");
        if include_naive == 1 {
            let (_, t_naive) = h.time("naive", &name, || {
                bundle_disagreements(
                    &mut db,
                    &[&q],
                    &support_set,
                    &EngineOptions::naive().with_parallelism(par),
                    None,
                )
                .unwrap()
            });
            print!(" {t_naive:>14.4}");
        }
        println!();
    }
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
