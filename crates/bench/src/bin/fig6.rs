//! Figure 6: additional benchmarking — the distribution of prices the 34
//! world queries (Appendix B) receive under every pricing function and
//! support-set choice.
//!
//! `cargo run -p qirana-bench --bin fig6 --release [-- --support 1000 --uniform-support 150]`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{broker, Args, Harness};
use qirana_core::{PricingFunction, SupportType};
use qirana_datagen::queries::WORLD_QUERIES;
use qirana_datagen::world;

fn main() {
    let args = Args::parse();
    let support: usize = args.get("support", 1000);
    let uniform_support: usize = args.get("uniform-support", 150);
    let seed: u64 = args.get("seed", 4);
    let db = world::generate(7);

    let mut h = Harness::from_args("fig6", &args, None);
    h.param("support", support);
    h.param("uniform-support", uniform_support);
    h.param("seed", seed);

    // 6a: weighted coverage across support types.
    println!("== Figure 6a: weighted coverage, price distribution by support type ==");
    for (ty, label, size) in [
        (SupportType::Neighborhood, "nbrs", support),
        (SupportType::Uniform, "uniform", uniform_support),
    ] {
        let b = broker(
            db.clone(),
            PricingFunction::WeightedCoverage,
            ty,
            size,
            seed,
        );
        let prices: Vec<f64> = WORLD_QUERIES
            .iter()
            .map(|q| b.quote(q).expect("price"))
            .collect();
        record_prices(&mut h, "fig6a_price", label, &prices);
        summarize(label, &prices);
    }

    // 6b: all four functions with the nbrs support set.
    println!("\n== Figure 6b: nbrs support set, all pricing functions ==");
    for f in PricingFunction::ALL {
        let size = if f.needs_partition() {
            support.min(400)
        } else {
            support
        };
        let b = broker(db.clone(), f, SupportType::Neighborhood, size, seed);
        let prices: Vec<f64> = WORLD_QUERIES
            .iter()
            .map(|q| b.quote(q).expect("price"))
            .collect();
        record_prices(&mut h, "fig6b_price", f.name(), &prices);
        summarize(f.name(), &prices);
    }

    // 6c: all four functions with the uniform support set.
    println!("\n== Figure 6c: uniform support set, all pricing functions ==");
    for f in PricingFunction::ALL {
        let b = broker(db.clone(), f, SupportType::Uniform, uniform_support, seed);
        let prices: Vec<f64> = WORLD_QUERIES
            .iter()
            .map(|q| b.quote(q).expect("price"))
            .collect();
        record_prices(&mut h, "fig6c_price", f.name(), &prices);
        summarize(f.name(), &prices);
    }

    // Full per-query dump for the appendix-style table.
    println!("\n== per-query prices (weighted coverage + nbrs) ==");
    let b = broker(
        db,
        PricingFunction::WeightedCoverage,
        SupportType::Neighborhood,
        support,
        seed,
    );
    for (i, q) in WORLD_QUERIES.iter().enumerate() {
        let p = b.quote(q).unwrap();
        h.record("per_query_price", &format!("Qw{}", i + 1), p);
        println!("Qw{:<3} {p:>8.2}  {q}", i + 1);
    }
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}

/// Records one sample per query so the artifact carries the full
/// distribution each summary row collapses.
fn record_prices(h: &mut Harness, series: &str, group: &str, prices: &[f64]) {
    for (i, p) in prices.iter().enumerate() {
        h.record(series, &format!("{group}/Qw{}", i + 1), *p);
    }
}

fn summarize(label: &str, prices: &[f64]) {
    let mut sorted = prices.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    // qirana-lint::allow(QL002): sample counts, far below 2^53
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f) as usize];
    // qirana-lint::allow(QL002): sample counts, far below 2^53
    let mean = prices.iter().sum::<f64>() / prices.len() as f64;
    println!(
        "{label:<22} min {:>6.1}  p25 {:>6.1}  median {:>6.1}  p75 {:>6.1}  max {:>6.1}  mean {:>6.1}",
        q(0.0),
        q(0.25),
        q(0.5),
        q(0.75),
        q(1.0),
        mean
    );
}
