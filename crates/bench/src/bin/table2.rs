//! Table 2: dataset characteristics (#relations, #tuples, #attributes).
//!
//! `cargo run -p qirana-bench --bin table2 --release [-- --sf 0.01 --rows 71115 --nodes 317080]`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{Args, Harness};
use qirana_datagen::{carcrash, dblp, ssb, tpch, world};

fn main() {
    let args = Args::parse();
    let sf: f64 = args.get("sf", 0.01);
    let rows: usize = args.get("rows", 71_115);
    let nodes: usize = args.get("nodes", 31_708);

    let mut h = Harness::from_args("table2", &args, None);
    h.param("sf", sf);
    h.param("rows", rows);
    h.param("nodes", nodes);

    println!("Table 2: dataset characteristics (generated)");
    println!("paper values: world 3/5302/21, car crash 1/71115/14, DBLP 1/1049866/2,");
    println!("              TPC-H 8/SF=1/61, SSB (5 spec relations)/SF=1/57\n");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "dataset", "#relations", "#tuples", "#attributes"
    );

    let datasets: Vec<(&str, qirana_sqlengine::Database)> = vec![
        ("world", world::generate(1)),
        ("US car crash", carcrash::generate(rows, 1)),
        ("DBLP", dblp::generate(nodes, 1)),
        ("TPC-H", tpch::generate(sf, 1)),
        ("SSB", ssb::generate(sf, 1)),
    ];
    for (name, db) in datasets {
        // qirana-lint::allow(QL002): generated dataset sizes, far below 2^53
        h.record("relations", name, db.num_tables() as f64);
        // qirana-lint::allow(QL002): generated dataset sizes, far below 2^53
        h.record("tuples", name, db.total_rows() as f64);
        // qirana-lint::allow(QL002): generated dataset sizes, far below 2^53
        h.record("attributes", name, db.total_attributes() as f64);
        println!(
            "{:<12} {:>10} {:>12} {:>12}",
            name,
            db.num_tables(),
            db.total_rows(),
            db.total_attributes()
        );
    }
    println!("\n(TPC-H/SSB at --sf {sf}; DBLP at --nodes {nodes}; car crash at --rows {rows})");
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
