//! Durability overhead and crash-recovery smoke: what the write-ahead
//! log costs per purchase under each fsync policy, and how fast a market
//! rebuilds from its ledger.
//!
//! `cargo run -p qirana-bench --bin recovery --release -- [--support N] [--purchases N] [--seed N]`
//!
//! The same purchase session runs against an in-memory broker and against
//! durable brokers with `FsyncPolicy::{Always, EveryN(8), Never}`; every
//! durable price is asserted bitwise-identical to the in-memory one
//! (durability must never perturb pricing). The `Always` market is then
//! recovered from disk — replaying and re-pricing every logged purchase —
//! and its balances are asserted bitwise-identical to the live session.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{Args, Harness};
use qirana_core::{FsyncPolicy, LedgerConfig, Qirana, QiranaConfig, SupportConfig};
use qirana_datagen::world;
use std::path::PathBuf;

fn cfg(support: usize, seed: u64) -> QiranaConfig {
    QiranaConfig {
        total_price: 100.0,
        support: SupportConfig {
            size: support,
            seed,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn session_queries(purchases: usize) -> Vec<String> {
    (1..=purchases)
        .map(|h| {
            format!(
                "SELECT Name FROM Country WHERE Population > {}",
                h * 1_000_000
            )
        })
        .collect()
}

fn market_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qirana-bench-recovery-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn main() {
    let args = Args::parse();
    let support: usize = args.get("support", 300);
    let purchases: usize = args.get("purchases", 32);
    let seed: u64 = args.get("seed", 1);
    let queries = session_queries(purchases);

    let mut h = Harness::from_args("recovery", &args, None);
    h.param("support", support);
    h.param("purchases", purchases);
    h.param("seed", seed);

    println!("== Durable ledger overhead (world dataset, S={support}, H={purchases}) ==");

    // Reference: the never-persisted market.
    let mut baseline = Qirana::new(world::generate(7), cfg(support, seed)).unwrap();
    let (_, t_mem) = h.time("session", "in-memory", || {
        for sql in &queries {
            baseline.buy("analyst", sql).unwrap();
        }
    });
    println!("{:>14} {:>10.4}s", "in-memory", t_mem);

    let policies = [
        ("fsync=always", FsyncPolicy::Always),
        ("fsync=every8", FsyncPolicy::EveryN(8)),
        ("fsync=never", FsyncPolicy::Never),
    ];
    let always_dir = market_dir("always");
    for (label, policy) in policies {
        let dir = if matches!(policy, FsyncPolicy::Always) {
            always_dir.clone()
        } else {
            market_dir(label)
        };
        let ledger_cfg = LedgerConfig::new(&dir)
            .with_fsync(policy)
            .with_snapshot_every(16);
        let mut broker = Qirana::open(world::generate(7), cfg(support, seed), ledger_cfg).unwrap();
        let (_, t) = h.time("session", label, || {
            for sql in &queries {
                broker.buy("analyst", sql).unwrap();
            }
        });
        assert_eq!(
            broker.buyer_paid("analyst").unwrap().to_bits(),
            baseline.buyer_paid("analyst").unwrap().to_bits(),
            "durability changed the session total under {label}"
        );
        println!(
            "{:>14} {:>10.4}s  ({:+7.1}% vs in-memory)",
            label,
            t,
            (t / t_mem - 1.0) * 100.0
        );
        if !matches!(policy, FsyncPolicy::Always) {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    // Recovery: rebuild the fsync=always market from its directory. Every
    // logged purchase is re-priced and verified bitwise during replay.
    let log_len = std::fs::metadata(LedgerConfig::new(&always_dir).log_path())
        .map(|m| m.len())
        .unwrap_or(0);
    let (recovered, t_rec) = h.time("recover", "fsync=always", || {
        Qirana::recover(
            world::generate(7),
            cfg(support, seed),
            LedgerConfig::new(&always_dir),
        )
        .unwrap()
    });
    assert_eq!(
        recovered.buyer_paid("analyst").unwrap().to_bits(),
        baseline.buyer_paid("analyst").unwrap().to_bits(),
        "recovery changed the session total"
    );
    println!(
        "\nrecovery: {purchases} purchases replayed & re-verified from a {log_len}-byte log in {t_rec:.4}s \
         ({:.1} purchases/s)",
        purchases as u32 as f64 / t_rec
    );
    std::fs::remove_dir_all(&always_dir).ok();
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
