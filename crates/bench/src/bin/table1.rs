//! Table 1: properties of the pricing functions, verified *empirically* on
//! the world dataset — for each function × support-set combination the
//! harness probes determinacy pairs for information arbitrage and bundle
//! splits for bundle arbitrage, and reports the property status alongside
//! the paper's claims.
//!
//! `cargo run -p qirana-bench --bin table1 --release [-- --support 800]`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{broker, Args, Harness};
use qirana_core::{PricingFunction, Qirana, SupportType};
use qirana_datagen::world;

/// Determinacy pairs `(finer, coarser)` — see `tests/arbitrage.rs`.
const PAIRS: &[(&str, &str)] = &[
    (
        "SELECT ID, Name, Continent, Population FROM Country",
        "SELECT ID, Name FROM Country",
    ),
    ("SELECT * FROM Country", "SELECT Region FROM Country"),
    (
        "SELECT * FROM Country WHERE ID < 200",
        "SELECT * FROM Country WHERE ID < 100",
    ),
    (
        "SELECT Continent, count(*) FROM Country GROUP BY Continent",
        "SELECT count(*) FROM Country WHERE Continent = 'Asia'",
    ),
    (
        "SELECT ID, Population FROM Country",
        "SELECT AVG(Population) FROM Country",
    ),
];

const BUNDLES: &[(&str, &str)] = &[
    (
        "SELECT Name FROM Country WHERE Continent = 'Asia'",
        "SELECT Name FROM Country WHERE Continent = 'Europe'",
    ),
    (
        "SELECT ID, Population FROM Country",
        "SELECT ID, GNP FROM Country",
    ),
    (
        "SELECT Region, AVG(LifeExpectancy) FROM Country GROUP BY Region",
        "SELECT * FROM CountryLanguage",
    ),
];

fn check_info_arbitrage(b: &mut Qirana) -> bool {
    PAIRS.iter().all(|(finer, coarser)| {
        let pf = b.quote(finer).unwrap();
        let pc = b.quote(coarser).unwrap();
        pc <= pf + 1e-9
    })
}

fn check_bundle_arbitrage(b: &mut Qirana) -> bool {
    BUNDLES.iter().all(|(q1, q2)| {
        let p1 = b.quote(q1).unwrap();
        let p2 = b.quote(q2).unwrap();
        let pb = b.quote_bundle(&[q1, q2]).unwrap();
        pb <= p1 + p2 + 1e-6
    })
}

fn main() {
    let args = Args::parse();
    let support: usize = args.get("support", 800);
    let uniform_support: usize = args.get("uniform-support", 120);
    let seed: u64 = args.get("seed", 2);
    let db = world::generate(7);

    let mut h = Harness::from_args("table1", &args, None);
    h.param("support", support);
    h.param("uniform-support", uniform_support);
    h.param("seed", seed);

    println!("Table 1: pricing-function properties (empirical check on world)");
    println!(
        "{:<22} {:<9} {:<6} {:>12} {:>12}",
        "function", "support", "type", "info-arb-ok", "bundle-ok"
    );
    for (ty, label) in [
        (SupportType::Neighborhood, "nbrs"),
        (SupportType::Uniform, "uniform"),
    ] {
        for f in PricingFunction::ALL {
            let size = match (ty, f.needs_partition()) {
                (SupportType::Uniform, _) => uniform_support,
                (_, true) => support.min(300),
                _ => support,
            };
            let mut b = broker(db.clone(), f, ty, size, seed);
            let info = check_info_arbitrage(&mut b);
            let bundle = check_bundle_arbitrage(&mut b);
            let combo = format!("{}+{}", f.name(), label);
            h.record("info_arbitrage_free", &combo, f64::from(u8::from(info)));
            h.record("bundle_arbitrage_free", &combo, f64::from(u8::from(bundle)));
            let kind = if ty == SupportType::Uniform {
                match f {
                    PricingFunction::WeightedCoverage | PricingFunction::UniformEntropyGain => {
                        "aps"
                    }
                    _ => "qps",
                }
            } else {
                "dps"
            };
            println!(
                "{:<22} {:<9} {:<6} {:>12} {:>12}",
                f.name(),
                label,
                kind,
                info,
                bundle
            );
        }
    }
    println!(
        "\npaper's Table 1: coverage & entropy functions are bundle-arbitrage-free;\n\
         uniform entropy gain is not (a violation needs a workload that splits its\n\
         log-count sum — absence above is not a proof). All are information-\n\
         arbitrage-free (coverage/gain strongly, entropies weakly)."
    );
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
