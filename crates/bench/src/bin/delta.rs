//! Incremental (delta) support evaluation versus full re-execution: time
//! to compute a query's disagreement bits over a neighborhood support set,
//! sweeping the support size S.
//!
//! `cargo run -p qirana-bench --bin delta --release -- [--seed N] [--json PATH]`
//!
//! Full evaluation re-executes the plan once per neighbor, so the sweep is
//! O(S · plan cost). The delta evaluator executes the plan once on the base
//! instance, materializes per-relation probe state, and then answers each
//! neighbor with a constant-size fingerprint adjustment (or a short-circuit
//! when the changed columns miss the query's footprint) — O(plan cost + S).
//! The crossover should land well before S = 64 on every SPJ workload here.
//! Both paths are asserted bitwise-identical at every point, so the curve
//! is free of semantic drift.
//!
//! Runs with telemetry enabled and writes `BENCH_8.json` (schema
//! `qirana-bench/v1`) by default; `--json PATH` redirects the artifact,
//! `--json ""` disables it. Pass `--validate PATH` to schema-check an
//! existing artifact and exit.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{validate_bench_json, Args, Harness};
use qirana_core::{
    bundle_disagreements, generate_support, prepare_query, EngineOptions, SupportConfig, SupportSet,
};
use qirana_datagen::world;

const SWEEP: [usize; 4] = [16, 64, 256, 1024];

const WORKLOADS: [(&str, &str); 3] = [
    (
        "city_filter",
        "SELECT Name, Population FROM City WHERE Population > 200000",
    ),
    (
        "country_city_join",
        "SELECT Country.Name, City.Name FROM Country, City \
         WHERE Country.Code = City.CountryCode AND City.Population > 500000",
    ),
    (
        "city_agg",
        "SELECT CountryCode, count(*), sum(Population) FROM City GROUP BY CountryCode",
    ),
];

fn main() {
    let args = Args::parse();
    let validate: String = args.get("validate", String::new());
    if !validate.is_empty() {
        let text = std::fs::read_to_string(&validate)
            .unwrap_or_else(|e| panic!("reading {validate}: {e}"));
        match validate_bench_json(&text) {
            Ok(()) => {
                println!("{validate}: schema-valid ({})", qirana_bench::SCHEMA);
                return;
            }
            Err(e) => {
                eprintln!("{validate}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    let seed: u64 = args.get("seed", 1);

    let mut h = Harness::from_args("delta", &args, Some("BENCH_8.json"));
    h.param("seed", seed);
    h.param("sweep", "16,64,256,1024");

    let full_opts = EngineOptions::default()
        .with_delta(false)
        .with_telemetry(h.telemetry());
    let delta_opts = EngineOptions::default().with_telemetry(h.telemetry());

    let mut db = world::generate(seed);
    println!("== Delta vs full support evaluation (world dataset) ==");
    println!(
        "{:<20} {:>6} {:>12} {:>12} {:>9}",
        "workload", "S", "full(s)", "delta(s)", "speedup"
    );

    for (name, sql) in WORKLOADS {
        let q = prepare_query(&db, sql).unwrap();
        for s in SWEEP {
            let support = SupportSet::Neighborhood(generate_support(
                &db,
                &SupportConfig {
                    size: s,
                    seed,
                    ..Default::default()
                },
            ));
            let label = format!("{name}/S={s}");
            let (full_bits, tf) = h.time(&format!("full_{name}"), &label, || {
                bundle_disagreements(&mut db, &[&q], &support, &full_opts, None).unwrap()
            });
            let (delta_bits, td) = h.time(&format!("delta_{name}"), &label, || {
                bundle_disagreements(&mut db, &[&q], &support, &delta_opts, None).unwrap()
            });
            assert_eq!(
                full_bits, delta_bits,
                "delta and full disagreement bits diverged on {name} at S={s}"
            );
            let speedup = tf / td;
            h.record(&format!("speedup_{name}"), &format!("S={s}"), speedup);
            println!("{name:<20} {s:>6} {tf:>12.5} {td:>12.5} {speedup:>8.2}x");
        }
    }

    let tel = h.telemetry();
    if let Some(sink) = tel.sink() {
        println!(
            "delta: {} builds, {} probes, {} short-circuits, {} fallbacks",
            sink.counter("delta_builds_total"),
            sink.counter("delta_probes_total"),
            sink.counter("delta_short_circuits_total"),
            sink.counter("delta_fallbacks_total"),
        );
    }
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
