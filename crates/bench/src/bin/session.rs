//! Session scaling of history-aware purchases: per-purchase latency as a
//! buyer's history grows from 1 to H queries, with the pricing cache on
//! versus off.
//!
//! `cargo run -p qirana-bench --bin session --release -- [--support N] [--purchases N] [--seed N]`
//!
//! The entropy family reprices the buyer's *accumulated bundle* on every
//! buy, so without memoization the h-th purchase costs O(h·S) query
//! evaluations. With the cache, every previously priced plan is a lookup
//! and only the new query touches the engine — O(S) per purchase,
//! regardless of history length. Both paths are asserted bitwise-identical
//! at every step, so the flat-vs-linear curve this prints is free of
//! semantic drift.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{time, Args};
use qirana_core::{
    CacheConfig, EngineOptions, PricingFunction, Qirana, QiranaConfig, SupportConfig,
};
use qirana_datagen::world;

fn broker(cache: CacheConfig, support: usize, seed: u64) -> Qirana {
    Qirana::new(
        world::generate(7),
        QiranaConfig {
            total_price: 100.0,
            function: PricingFunction::ShannonEntropy,
            support: SupportConfig {
                size: support,
                seed,
                ..Default::default()
            },
            engine: EngineOptions::default().with_cache(cache),
            ..Default::default()
        },
    )
    .expect("broker construction")
}

fn main() {
    let args = Args::parse();
    let support: usize = args.get("support", 500);
    let purchases: usize = args.get("purchases", 64);
    let seed: u64 = args.get("seed", 1);

    let mut cached = broker(CacheConfig::default(), support, seed);
    let mut uncached = broker(CacheConfig::disabled(), support, seed);

    println!("== Session scaling (world dataset, S={support}, H={purchases}) ==");
    println!(
        "{:>4} {:>12} {:>12} {:>9}",
        "h", "cached(s)", "uncached(s)", "speedup"
    );

    let mut total_cached = 0.0;
    let mut total_uncached = 0.0;
    for h in 1..=purchases {
        // A distinct query per purchase: each buy grows the history bundle.
        let sql = format!(
            "SELECT Name FROM Country WHERE Population > {}",
            h * 1_000_000
        );
        let (pc, tc) = time(|| cached.buy("scaling", &sql).unwrap());
        let (pu, tu) = time(|| uncached.buy("scaling", &sql).unwrap());
        assert_eq!(
            pc.price.to_bits(),
            pu.price.to_bits(),
            "cached and uncached prices diverged at h={h}"
        );
        assert_eq!(
            pc.total_paid.to_bits(),
            pu.total_paid.to_bits(),
            "cached and uncached accounts diverged at h={h}"
        );
        total_cached += tc;
        total_uncached += tu;
        println!("{:>4} {:>12.4} {:>12.4} {:>8.2}x", h, tc, tu, tu / tc);
    }

    let stats = cached.cache_stats();
    println!(
        "totals: cached {:.3}s, uncached {:.3}s, overall speedup {:.2}x",
        total_cached,
        total_uncached,
        total_uncached / total_cached
    );
    println!(
        "cache: {} hits, {} misses, {} evictions over {} entries",
        stats.hits,
        stats.misses,
        stats.evictions,
        cached.cache_len()
    );
}
