//! Session scaling of history-aware purchases: per-purchase latency as a
//! buyer's history grows from 1 to H queries, with the pricing cache on
//! versus off.
//!
//! `cargo run -p qirana-bench --bin session --release -- [--support N] [--purchases N] [--seed N] [--json PATH]`
//!
//! The entropy family reprices the buyer's *accumulated bundle* on every
//! buy, so without memoization the h-th purchase costs O(h·S) query
//! evaluations. With the cache, every previously priced plan is a lookup
//! and only the new query touches the engine — O(S) per purchase,
//! regardless of history length. Both paths are asserted bitwise-identical
//! at every step, so the flat-vs-linear curve this prints is free of
//! semantic drift.
//!
//! This bin is the repo's perf-trajectory anchor: it runs with telemetry
//! enabled and writes `BENCH_7.json` (schema `qirana-bench/v1`) by
//! default; `--json PATH` redirects the artifact, `--json ""` disables it.
//! Pass `--validate PATH` to schema-check an existing artifact and exit.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{validate_bench_json, Args, Harness};
use qirana_core::{
    CacheConfig, EngineOptions, PricingFunction, Qirana, QiranaConfig, SupportConfig, Telemetry,
};
use qirana_datagen::world;

fn broker(cache: CacheConfig, support: usize, seed: u64, telemetry: Telemetry) -> Qirana {
    Qirana::new(
        world::generate(7),
        QiranaConfig {
            total_price: 100.0,
            function: PricingFunction::ShannonEntropy,
            support: SupportConfig {
                size: support,
                seed,
                ..Default::default()
            },
            engine: EngineOptions::default()
                .with_cache(cache)
                .with_telemetry(telemetry),
            ..Default::default()
        },
    )
    .expect("broker construction")
}

fn main() {
    let args = Args::parse();
    let validate: String = args.get("validate", String::new());
    if !validate.is_empty() {
        let text = std::fs::read_to_string(&validate)
            .unwrap_or_else(|e| panic!("reading {validate}: {e}"));
        match validate_bench_json(&text) {
            Ok(()) => {
                println!("{validate}: schema-valid ({})", qirana_bench::SCHEMA);
                return;
            }
            Err(e) => {
                eprintln!("{validate}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    let support: usize = args.get("support", 500);
    let purchases: usize = args.get("purchases", 64);
    let seed: u64 = args.get("seed", 1);

    let mut h = Harness::from_args("session", &args, Some("BENCH_7.json"));
    h.param("support", support);
    h.param("purchases", purchases);
    h.param("seed", seed);

    let mut cached = broker(CacheConfig::default(), support, seed, h.telemetry());
    let mut uncached = broker(CacheConfig::disabled(), support, seed, h.telemetry());

    println!("== Session scaling (world dataset, S={support}, H={purchases}) ==");
    println!(
        "{:>4} {:>12} {:>12} {:>9}",
        "h", "cached(s)", "uncached(s)", "speedup"
    );

    let mut total_cached = 0.0;
    let mut total_uncached = 0.0;
    for hn in 1..=purchases {
        // A distinct query per purchase: each buy grows the history bundle.
        let sql = format!(
            "SELECT Name FROM Country WHERE Population > {}",
            hn * 1_000_000
        );
        let label = format!("h={hn}");
        let (pc, tc) = h.time_with_value(
            "buy_cached",
            &label,
            || cached.buy("scaling", &sql).unwrap(),
            |p| p.price,
        );
        let (pu, tu) = h.time_with_value(
            "buy_uncached",
            &label,
            || uncached.buy("scaling", &sql).unwrap(),
            |p| p.price,
        );
        assert_eq!(
            pc.price.to_bits(),
            pu.price.to_bits(),
            "cached and uncached prices diverged at h={hn}"
        );
        assert_eq!(
            pc.total_paid.to_bits(),
            pu.total_paid.to_bits(),
            "cached and uncached accounts diverged at h={hn}"
        );
        total_cached += tc;
        total_uncached += tu;
        println!("{:>4} {:>12.4} {:>12.4} {:>8.2}x", hn, tc, tu, tu / tc);
    }

    let stats = cached.cache_stats();
    println!(
        "totals: cached {:.3}s, uncached {:.3}s, overall speedup {:.2}x",
        total_cached,
        total_uncached,
        total_uncached / total_cached
    );
    println!(
        "cache: {} hits, {} misses, {} evictions over {} entries",
        stats.hits,
        stats.misses,
        stats.evictions,
        cached.cache_len()
    );
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
