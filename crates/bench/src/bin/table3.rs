//! Table 3: history-oblivious prices for the DBLP (`Qd1..Qd7`) and US car
//! crash (`Qc1..Qc4`) workloads under weighted coverage and Shannon
//! entropy, both with the `nbrs` support set.
//!
//! `cargo run -p qirana-bench --bin table3 --release [-- --nodes 31708 --rows 71115 --support 1000]`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{broker, Args, Harness};
use qirana_core::{PricingFunction, SupportType};
use qirana_datagen::queries::{dblp_queries, CARCRASH_QUERIES};
use qirana_datagen::{carcrash, dblp};

fn main() {
    let args = Args::parse();
    let nodes: usize = args.get("nodes", 10_000);
    let rows: usize = args.get("rows", 20_000);
    let support: usize = args.get("support", 1000);
    let entropy_support: usize = args.get("entropy-support", 400);
    let seed: u64 = args.get("seed", 3);

    let mut h = Harness::from_args("table3", &args, None);
    h.param("nodes", nodes);
    h.param("rows", rows);
    h.param("support", support);
    h.param("entropy-support", entropy_support);
    h.param("seed", seed);

    println!("Table 3: prices for DBLP (Qd) and US car crash (Qc)");
    println!(
        "paper (pwc+nbrs): Qd = [2.07, 0, 4.29, 0.29, 0.045, 58.82, 0.035], Qc = [8.00, 0.60, 0.70, 0]\n"
    );

    // ---- DBLP ----
    let dblp_db = dblp::generate(nodes, seed);
    let dqs = dblp_queries(nodes);
    let wc = broker(
        dblp_db.clone(),
        PricingFunction::WeightedCoverage,
        SupportType::Neighborhood,
        support,
        seed,
    );
    let sh = broker(
        dblp_db,
        PricingFunction::ShannonEntropy,
        SupportType::Neighborhood,
        entropy_support,
        seed,
    );
    println!("{:<10} {:>10} {:>10}", "query", "pwc+nbrs", "pH+nbrs");
    for (i, sql) in dqs.iter().enumerate() {
        let p_wc = wc.quote(sql).unwrap_or(f64::NAN);
        let p_sh = sh.quote(sql).unwrap_or(f64::NAN);
        h.record("dblp_pwc", &format!("Qd{}", i + 1), p_wc);
        h.record("dblp_ph", &format!("Qd{}", i + 1), p_sh);
        println!("Qd{:<9} {:>10.3} {:>10.3}", i + 1, p_wc, p_sh);
    }

    // ---- US car crash ----
    let crash_db = carcrash::generate(rows, seed);
    let wc = broker(
        crash_db.clone(),
        PricingFunction::WeightedCoverage,
        SupportType::Neighborhood,
        support,
        seed,
    );
    let sh = broker(
        crash_db,
        PricingFunction::ShannonEntropy,
        SupportType::Neighborhood,
        entropy_support,
        seed,
    );
    println!();
    for (i, sql) in CARCRASH_QUERIES.iter().enumerate() {
        let p_wc = wc.quote(sql).unwrap_or(f64::NAN);
        let p_sh = sh.quote(sql).unwrap_or(f64::NAN);
        h.record("carcrash_pwc", &format!("Qc{}", i + 1), p_wc);
        h.record("carcrash_ph", &format!("Qc{}", i + 1), p_sh);
        println!("Qc{:<9} {:>10.3} {:>10.3}", i + 1, p_wc, p_sh);
    }
    println!("\n(DBLP at --nodes {nodes}, car crash at --rows {rows}, S = {support})");
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
