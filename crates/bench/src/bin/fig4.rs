//! Figure 4: framework-parameter and history experiments.
//!
//! `cargo run -p qirana-bench --bin fig4 --release -- <a|b|c|d|e|f|g|all> [--support N] [--sf F]`
//!
//! * `a` — σ-price vs. selectivity for S ∈ {10, 100, 1000} + ideal line
//! * `b` — π-price vs. #attributes for the same sizes + ideal line
//! * `c` — price vs. fraction of swap updates (Qr1 = AVG, Qr2 = selective)
//! * `d` — pricing time vs. support size (Qσ80, Qπ4, Q⋈80, Qγ20)
//! * `e` — history-aware vs. oblivious *prices*, 13 SSB queries
//! * `f` — history-aware vs. oblivious *runtimes*, 13 SSB queries
//! * `g` — 25 parameterized SSB Q1.1 instances, cumulative price

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{broker, subset_db, Args, Harness};
use qirana_core::{PricingFunction, Qirana, QiranaConfig, SupportConfig, SupportType};
use qirana_datagen::queries::{
    q_gamma, q_join, q_pi, q_sigma, ssb_q11_instance, ssb_queries, QR1, QR2,
};
use qirana_datagen::{ssb, world};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The §2.4 benchmark instance: Country + CountryLanguage, $100/relation.
fn bench_world() -> qirana_sqlengine::Database {
    subset_db(&world::generate(7), &["Country", "CountryLanguage"])
}

/// Broker over the benchmark instance with $100 per relation.
fn bench_broker(db: qirana_sqlengine::Database, size: usize, seed: u64) -> Qirana {
    Qirana::new(
        db,
        QiranaConfig {
            total_price: 200.0,
            support: SupportConfig {
                size,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("broker")
}

fn main() {
    let args = Args::parse();
    let which = args
        .positional
        .first()
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let mut h = Harness::from_args("fig4", &args, None);
    h.param("subfigure", &which);
    match which.as_str() {
        "a" => fig4a(&args),
        "b" => fig4b(&args),
        "c" => fig4c(&args),
        "d" => fig4d(&args, &mut h),
        "e" => fig4ef(&args, &mut h, false),
        "f" => fig4ef(&args, &mut h, true),
        "g" => fig4g(&args),
        "all" => {
            fig4a(&args);
            fig4b(&args);
            fig4c(&args);
            fig4d(&args, &mut h);
            fig4ef(&args, &mut h, false);
            fig4ef(&args, &mut h, true);
            fig4g(&args);
        }
        other => {
            eprintln!("unknown sub-figure {other}; use a..g or all");
            return;
        }
    }
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}

/// 4a: σ-price vs. selectivity for varying support sizes. The ideal price
/// is linear: selecting `u-1` of 239 uniformly-valued Country tuples is
/// worth `(u-1)/239` of the Country relation's share.
fn fig4a(args: &Args) {
    println!("== Figure 4a: sigma-price vs selectivity ==");
    let db = bench_world();
    let country_rows = 239.0;
    // Country holds its proportional share of the $100 under uniform
    // weights: approximately (relation updates)/(all updates) = 1/3 of
    // relations → the ideal line the paper draws is 0..100 against the
    // relation's own full price; we report both the raw prices and u/239.
    let us = [1i64, 32, 64, 128, 192, 239];
    print!("{:<10}", "S \\ u");
    for u in us {
        print!("{u:>9}");
    }
    println!();
    for size in [10usize, 100, 1000] {
        let b = bench_broker(db.clone(), size, args.get("seed", 1));
        print!("{size:<10}");
        for u in us {
            let p = b.quote(&q_sigma(u)).unwrap();
            print!("{p:>9.2}");
        }
        println!();
    }
    // Scale-free ideal: price proportional to selected fraction, anchored
    // at Qσ_240 = full Country price measured at the largest S.
    let b = bench_broker(db, 1000, args.get("seed", 1));
    let full = b.quote(&q_sigma(240)).unwrap();
    print!("{:<10}", "ideal");
    for u in us {
        // qirana-lint::allow(QL002): u is a small buyer count
        print!("{:>9.2}", full * (u as f64 - 1.0) / country_rows);
    }
    println!("\n");
}

/// 4b: π-price vs. number of projected attributes + linear ideal.
fn fig4b(args: &Args) {
    println!("== Figure 4b: pi-price vs #attributes ==");
    let db = bench_world();
    let us: Vec<usize> = (1..=13).collect();
    print!("{:<10}", "S \\ u");
    for u in &us {
        print!("{u:>8}");
    }
    println!();
    let mut full13 = 0.0;
    for size in [10usize, 100, 1000] {
        let b = bench_broker(db.clone(), size, args.get("seed", 1));
        print!("{size:<10}");
        for &u in &us {
            let p = b.quote(&q_pi(u)).unwrap();
            if size == 1000 && u == 13 {
                full13 = p;
            }
            print!("{p:>8.2}");
        }
        println!();
    }
    print!("{:<10}", "ideal");
    for &u in &us {
        // qirana-lint::allow(QL002): u is a small buyer count
        print!("{:>8.2}", full13 * u as f64 / 13.0);
    }
    println!("\n");
}

/// 4c: price vs. fraction of swap updates for Qr1 (AVG — swaps never
/// disagree) and Qr2 (selective threshold — likewise swap-invariant given
/// the max).
fn fig4c(args: &Args) {
    println!("== Figure 4c: price vs fraction of swap updates ==");
    // Same benchmark instance as Figures 2/4a/4b ($100 per relation): the
    // paper's $17 anchor for Qr1 is the AVG(Population) price against
    // Country's own $100 share.
    let mut db = bench_world();
    // §5.1's premise: the buyer does NOT know the Population domain, so a
    // row update may introduce values beyond the active domain (including
    // ones above Qr2's 2B threshold). Model it as a wide declared range.
    let country = db.table_mut("Country").unwrap();
    let pop = country.schema.column_index("Population").unwrap();
    country.schema.columns[pop].domain = qirana_sqlengine::Domain::IntRange(10_000, 2_500_000_000);
    let support: usize = args.get("support", 1000);
    println!("{:<8} {:>8} {:>8}", "swap%", "Qr1", "Qr2");
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let b = Qirana::new(
            db.clone(),
            QiranaConfig {
                total_price: 200.0,
                support: SupportConfig {
                    size: support,
                    swap_fraction: frac,
                    seed: args.get("seed", 1),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let p1 = b.quote(QR1).unwrap();
        let p2 = b.quote(QR2).unwrap();
        println!("{frac:<8} {p1:>8.2} {p2:>8.2}");
    }
    println!();
}

/// 4d: pricing time vs. support size for the four benchmark queries.
fn fig4d(args: &Args, h: &mut Harness) {
    println!("== Figure 4d: pricing time (s) vs support size ==");
    let db = world::generate(7);
    let queries = [
        ("Qs80", q_sigma(80)),
        ("Qp4", q_pi(4)),
        ("Qj80", q_join(80.0)),
        ("Qg20", q_gamma(20)),
    ];
    print!("{:<10}", "S \\ query");
    for (n, _) in &queries {
        print!("{n:>10}");
    }
    println!();
    for size in [10usize, 200, 400, 1000] {
        let b = broker(
            db.clone(),
            PricingFunction::WeightedCoverage,
            SupportType::Neighborhood,
            size,
            args.get("seed", 1),
        );
        print!("{size:<10}");
        for (name, sql) in &queries {
            // Warm once, then time.
            b.quote(sql).unwrap();
            let (_, t) = h.time(&format!("quote_{name}"), &format!("S={size}"), || {
                b.quote(sql).unwrap()
            });
            print!("{t:>10.4}");
        }
        println!();
    }
    println!();
}

/// 4e (prices) and 4f (runtimes): the 13 SSB queries priced in sequence,
/// history-oblivious vs. history-aware.
fn fig4ef(args: &Args, h: &mut Harness, runtimes: bool) {
    let sf: f64 = args.get("sf", 0.002);
    let support: usize = args.get("support", 1000);
    let seed: u64 = args.get("seed", 1);
    println!(
        "== Figure 4{}: history-aware vs oblivious {} (SSB sf={sf}, S={support}) ==",
        if runtimes { 'f' } else { 'e' },
        if runtimes { "runtime (s)" } else { "price ($)" },
    );
    let db = ssb::generate(sf, 9);
    let oblivious = broker(
        db.clone(),
        PricingFunction::WeightedCoverage,
        SupportType::Neighborhood,
        support,
        seed,
    );
    let mut aware = broker(
        db,
        PricingFunction::WeightedCoverage,
        SupportType::Neighborhood,
        support,
        seed,
    );
    println!("{:<6} {:>12} {:>12}", "query", "oblivious", "aware");
    let (mut sum_o, mut sum_a) = (0.0, 0.0);
    for (name, sql) in ssb_queries() {
        let (po, to) =
            h.time_with_value("oblivious", name, || oblivious.quote(sql).unwrap(), |p| *p);
        let (pa, ta) = h.time_with_value(
            "aware",
            name,
            || aware.buy("buyer", sql).unwrap().price,
            |p| *p,
        );
        if runtimes {
            println!("{name:<6} {to:>12.4} {ta:>12.4}");
            sum_o += to;
            sum_a += ta;
        } else {
            println!("{name:<6} {po:>12.2} {pa:>12.2}");
            sum_o += po;
            sum_a += pa;
        }
    }
    println!("{:<6} {sum_o:>12.2} {sum_a:>12.2}\n", "total");
}

/// 4g: 25 random parameterizations of SSB Q1.1, oblivious vs. aware.
fn fig4g(args: &Args) {
    let sf: f64 = args.get("sf", 0.002);
    let support: usize = args.get("support", 1000);
    println!("== Figure 4g: 25 parameterized Q1.1 instances (SSB sf={sf}) ==");
    let db = ssb::generate(sf, 9);
    let oblivious = broker(
        db.clone(),
        PricingFunction::WeightedCoverage,
        SupportType::Neighborhood,
        support,
        args.get("seed", 1),
    );
    let mut aware = broker(
        db,
        PricingFunction::WeightedCoverage,
        SupportType::Neighborhood,
        support,
        args.get("seed", 1),
    );
    let mut rng = StdRng::seed_from_u64(args.get("seed", 1));
    println!("{:<6} {:>14} {:>14}", "i", "oblivious-cum", "aware-cum");
    let (mut sum_o, mut sum_a) = (0.0, 0.0);
    for i in 0..25 {
        let sql = ssb_q11_instance(&mut rng);
        sum_o += oblivious.quote(&sql).unwrap();
        sum_a += aware.buy("buyer", &sql).unwrap().price;
        if i % 4 == 0 || i == 24 {
            println!("{i:<6} {sum_o:>14.2} {sum_a:>14.2}");
        }
    }
    println!();
}
