//! Figure 2: price behavior of the benchmark queries `Qσ_u`, `Qπ_u`,
//! `Q⋈_u`, `Qγ_u` on the world dataset, for all 8 pricing-function ×
//! support-set combinations, S = 1000.
//!
//! `cargo run -p qirana-bench --bin fig2 --release [-- --support 1000 --uniform-support 200]`
//!
//! The uniform support set materializes whole databases (its memory cost is
//! part of the paper's argument against it), so its default size is
//! smaller; raise `--uniform-support` to match the paper exactly.

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana_bench::{combos, subset_db, Args, Harness};
use qirana_core::{Qirana, QiranaConfig, SupportConfig, SupportType};
use qirana_datagen::queries::{q_gamma, q_join, q_pi, q_sigma};
use qirana_datagen::world;

fn main() {
    let args = Args::parse();
    let support: usize = args.get("support", 1000);
    let uniform_support: usize = args.get("uniform-support", 200);
    let seed: u64 = args.get("seed", 42);
    // The paper's §2.4 benchmark instance: Country (+ CountryLanguage for
    // Q⋈) with uniformly valued attributes — $100 per relation, so the
    // Qσ/Qπ sweeps span 0..100 as in the figure.
    let db = subset_db(&world::generate(7), &["Country", "CountryLanguage"]);

    let mut h = Harness::from_args("fig2", &args, None);
    h.param("support", support);
    h.param("uniform-support", uniform_support);
    h.param("seed", seed);

    let sigma_us = [1i64, 32, 64, 128, 239];
    let pi_us: Vec<usize> = (1..=13).collect();
    let join_us = [0.01f64, 0.1, 1.0, 10.0, 100.0];
    let gamma_us = [1usize, 5, 10, 15, 20, 25];

    for (function, ty, label) in combos() {
        let size = if ty == SupportType::Uniform {
            uniform_support
        } else {
            support
        };
        let mut b = Qirana::new(
            db.clone(),
            QiranaConfig {
                total_price: 200.0,
                function,
                support_type: ty,
                support: SupportConfig {
                    size,
                    seed,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .expect("broker");

        let series = |b: &mut qirana_core::Qirana, sqls: Vec<String>| -> Vec<f64> {
            sqls.iter().map(|q| b.quote(q).expect("price")).collect()
        };

        println!("== {label} (S = {size}) ==");
        let record = |h: &mut Harness, series_name: &str, us: &[String], prices: &[f64]| {
            for (u, p) in us.iter().zip(prices) {
                h.record(series_name, &format!("{label} u={u}"), *p);
            }
        };
        let p = series(&mut b, sigma_us.iter().map(|&u| q_sigma(u)).collect());
        let labels = sigma_us.map(|u| u.to_string());
        print_series("Qs (u=1,32,64,128,239)", &labels, &p);
        record(&mut h, "sigma_price", &labels, &p);
        let p = series(&mut b, pi_us.iter().map(|&u| q_pi(u)).collect());
        let labels: Vec<String> = pi_us.iter().map(|u| u.to_string()).collect();
        print_series("Qp (u=1..13)", &labels, &p);
        record(&mut h, "pi_price", &labels, &p);
        let p = series(&mut b, join_us.iter().map(|&u| q_join(u)).collect());
        let labels = join_us.map(|u| u.to_string());
        print_series("Qj (u=.01,.1,1,10,100)", &labels, &p);
        record(&mut h, "join_price", &labels, &p);
        let p = series(&mut b, gamma_us.iter().map(|&u| q_gamma(u)).collect());
        let labels: Vec<String> = gamma_us.iter().map(|u| u.to_string()).collect();
        print_series("Qg (u=1..25)", &labels, &p);
        record(&mut h, "gamma_price", &labels, &p);
        println!();
    }
    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}

fn print_series(name: &str, us: &[String], prices: &[f64]) {
    print!("{name:<24}");
    for (u, p) in us.iter().zip(prices) {
        print!("  {u}:{p:.1}");
    }
    println!();
}
