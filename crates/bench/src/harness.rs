//! The shared bench harness: one timing/recording/reporting pipeline for
//! every bench bin.
//!
//! Each bin builds a [`Harness`], threads [`Harness::telemetry`] into the
//! brokers/engines it drives (so per-stage histograms populate), records
//! wall-clock samples through [`Harness::time`] and scalar results through
//! [`Harness::record`], and ends with [`Harness::finish`] — which, when the
//! bin was invoked with `--json PATH` (or carries a default artifact name,
//! as `session` does), writes a schema-versioned `BENCH_*.json`:
//!
//! ```json
//! {
//!   "schema": "qirana-bench/v1",
//!   "bench": "session",
//!   "machine": {"os": "…", "arch": "…", "family": "…", "cpus": N},
//!   "params": {"support": "500", …},
//!   "samples": [{"series": "…", "label": "…", "seconds": S, "value": V|null}, …],
//!   "series": [{"name": "…", "count": N, "total_seconds": S, "mean_seconds": S,
//!               "min_seconds": S, "max_seconds": S, "per_second": R}, …],
//!   "metrics": {"counters": {…}, "gauges": {…}, "histograms": {…}}
//! }
//! ```
//!
//! The file is validated against [`validate_bench_json`] before it is
//! written, so a schema drift fails the producing bench run itself, not
//! just the CI check downstream. Timing reads the telemetry clock — the
//! harness owns the only enabled sink, so bench time and stage spans share
//! one time base.

use crate::json::{parse, Json};
use crate::Args;
use qirana_core::telemetry::json_string;
use qirana_core::Telemetry;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Version tag every artifact opens with; bump on layout changes.
pub const SCHEMA: &str = "qirana-bench/v1";

/// One recorded observation: a timed closure and/or a scalar result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Aggregation key (one per plotted curve / table column).
    pub series: String,
    /// Point label within the series (`h=12`, `Q1.1`, …).
    pub label: String,
    /// Wall-clock seconds, when the sample came from [`Harness::time`].
    pub seconds: Option<f64>,
    /// Scalar result (a price, a speedup), when one was recorded.
    pub value: Option<f64>,
}

/// The shared bench pipeline; see the module docs.
pub struct Harness {
    bench: String,
    telemetry: Telemetry,
    params: Vec<(String, String)>,
    samples: Vec<Sample>,
    json_path: Option<PathBuf>,
}

impl Harness {
    /// Builds a harness for bench `bench`, reading the `--json PATH` flag
    /// (overriding `default_json`, which may name a default artifact such
    /// as `BENCH_7.json`; pass `None` for print-only-by-default bins).
    pub fn from_args(bench: &str, args: &Args, default_json: Option<&str>) -> Harness {
        let path: String = args.get("json", default_json.unwrap_or_default().to_string());
        Harness {
            bench: bench.to_string(),
            telemetry: Telemetry::enabled(),
            params: Vec::new(),
            samples: Vec::new(),
            json_path: if path.is_empty() {
                None
            } else {
                Some(PathBuf::from(path))
            },
        }
    }

    /// The harness's telemetry handle — thread it into `EngineOptions` /
    /// broker configs so pipeline stage histograms land in the artifact.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Records a run parameter (support size, scale factor, …).
    pub fn param(&mut self, key: &str, value: impl std::fmt::Display) {
        self.params.push((key.to_string(), value.to_string()));
    }

    /// Times `f` in wall-clock seconds on the telemetry clock, records the
    /// sample under `series`/`label`, and feeds the
    /// `bench_<series>_ns` latency histogram.
    pub fn time<T>(&mut self, series: &str, label: &str, f: impl FnOnce() -> T) -> (T, f64) {
        let t0 = self.telemetry.now_ns().unwrap_or(0);
        let out = f();
        let t1 = self.telemetry.now_ns().unwrap_or(t0);
        let ns = t1.saturating_sub(t0);
        self.telemetry.observe(&format!("bench_{series}_ns"), ns);
        // qirana-lint::allow(QL002): ns counts stay exact below 2^53 (~104 days)
        let seconds = ns as f64 / 1e9;
        self.samples.push(Sample {
            series: series.to_string(),
            label: label.to_string(),
            seconds: Some(seconds),
            value: None,
        });
        (out, seconds)
    }

    /// Like [`Harness::time`], but also stores a scalar result extracted
    /// from the timed output (a price, a row count).
    pub fn time_with_value<T>(
        &mut self,
        series: &str,
        label: &str,
        f: impl FnOnce() -> T,
        value_of: impl FnOnce(&T) -> f64,
    ) -> (T, f64) {
        let (out, seconds) = self.time(series, label, f);
        let v = value_of(&out);
        if let Some(last) = self.samples.last_mut() {
            last.value = Some(v);
        }
        (out, seconds)
    }

    /// Records an untimed scalar sample (a quoted price, a summary stat).
    pub fn record(&mut self, series: &str, label: &str, value: f64) {
        self.samples.push(Sample {
            series: series.to_string(),
            label: label.to_string(),
            seconds: None,
            value: Some(value),
        });
    }

    /// Renders the artifact JSON (also used by tests; [`Harness::finish`]
    /// writes it).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"schema\":{}", json_string(SCHEMA));
        let _ = write!(out, ",\"bench\":{}", json_string(&self.bench));
        let cpus = std::thread::available_parallelism().map_or(1, usize::from);
        let _ = write!(
            out,
            ",\"machine\":{{\"os\":{},\"arch\":{},\"family\":{},\"cpus\":{cpus}}}",
            json_string(std::env::consts::OS),
            json_string(std::env::consts::ARCH),
            json_string(std::env::consts::FAMILY),
        );
        out.push_str(",\"params\":{");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_string(v));
        }
        out.push_str("},\"samples\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"series\":{},\"label\":{},\"seconds\":{},\"value\":{}}}",
                json_string(&s.series),
                json_string(&s.label),
                json_f64(s.seconds),
                json_f64(s.value),
            );
        }
        out.push_str("],\"series\":[");
        for (i, agg) in self.series_aggregates().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"count\":{},\"total_seconds\":{},\"mean_seconds\":{},\
                 \"min_seconds\":{},\"max_seconds\":{},\"per_second\":{}}}",
                json_string(&agg.name),
                agg.count,
                json_f64(Some(agg.total)),
                json_f64(Some(agg.mean)),
                json_f64(Some(agg.min)),
                json_f64(Some(agg.max)),
                json_f64(Some(agg.per_second)),
            );
        }
        out.push_str("],\"metrics\":");
        match self.telemetry.sink() {
            Some(sink) => out.push_str(&sink.metrics_json()),
            None => out.push_str("{\"counters\":{},\"gauges\":{},\"histograms\":{}}"),
        }
        out.push('}');
        out
    }

    /// Validates and (when an artifact path is configured) writes the
    /// artifact. Returns the path written, `None` for print-only runs.
    pub fn finish(self) -> Result<Option<PathBuf>, String> {
        let text = self.to_json();
        validate_bench_json(&text)
            .map_err(|e| format!("bench `{}` produced schema-invalid JSON: {e}", self.bench))?;
        match self.json_path {
            None => Ok(None),
            Some(path) => {
                // qirana-lint::allow(QL005): bench artifact emission, not market state
                std::fs::write(&path, text.as_bytes())
                    .map_err(|e| format!("writing {}: {e}", path.display()))?;
                Ok(Some(path))
            }
        }
    }

    fn series_aggregates(&self) -> Vec<SeriesAgg> {
        let mut out: Vec<SeriesAgg> = Vec::new();
        for s in &self.samples {
            let Some(secs) = s.seconds else { continue };
            if !out.iter().any(|a| a.name == s.series) {
                out.push(SeriesAgg {
                    name: s.series.clone(),
                    count: 0,
                    total: 0.0,
                    mean: 0.0,
                    min: f64::INFINITY,
                    max: 0.0,
                    per_second: 0.0,
                });
            }
            let Some(agg) = out.iter_mut().find(|a| a.name == s.series) else {
                continue;
            };
            agg.count += 1;
            agg.total += secs;
            agg.min = agg.min.min(secs);
            agg.max = agg.max.max(secs);
        }
        for a in &mut out {
            // qirana-lint::allow(QL002): sample counts, far below 2^53
            let n = a.count as f64;
            a.mean = if a.count > 0 { a.total / n } else { 0.0 };
            a.per_second = if a.total > 0.0 { n / a.total } else { 0.0 };
            if !a.min.is_finite() {
                a.min = 0.0;
            }
        }
        out
    }
}

struct SeriesAgg {
    name: String,
    count: u64,
    total: f64,
    mean: f64,
    min: f64,
    max: f64,
    per_second: f64,
}

/// Finite floats render as JSON numbers; absent/non-finite as `null`.
/// Delegates to [`crate::json::write_f64`], the one serializer whose
/// byte-stability the round-trip proptest pins.
fn json_f64(v: Option<f64>) -> String {
    let mut out = String::new();
    match v {
        Some(x) => crate::json::write_f64(&mut out, x),
        None => out.push_str("null"),
    }
    out
}

/// Checks a `BENCH_*.json` document against the `qirana-bench/v1` schema.
/// Returns the first violation found.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let schema = field(&doc, "schema")?;
    match schema.as_str() {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema is `{s}`, expected `{SCHEMA}`")),
        None => return Err(format!("`schema` must be a string, got {}", schema.kind())),
    }
    if field(&doc, "bench")?.as_str().is_none_or(str::is_empty) {
        return Err("`bench` must be a non-empty string".to_string());
    }

    let machine = field(&doc, "machine")?;
    for key in ["os", "arch", "family"] {
        if field(machine, key)?.as_str().is_none() {
            return Err(format!("`machine.{key}` must be a string"));
        }
    }
    if !is_count(field(machine, "cpus")?) {
        return Err("`machine.cpus` must be a non-negative integer".to_string());
    }

    let params = field(&doc, "params")?;
    for (k, v) in params.as_obj().ok_or("`params` must be an object")? {
        if v.as_str().is_none() {
            return Err(format!("`params.{k}` must be a string"));
        }
    }

    let samples = field(&doc, "samples")?
        .as_arr()
        .ok_or("`samples` must be an array")?;
    for (i, s) in samples.iter().enumerate() {
        for key in ["series", "label"] {
            if field(s, key)
                .map_err(|e| format!("samples[{i}]: {e}"))?
                .as_str()
                .is_none()
            {
                return Err(format!("`samples[{i}].{key}` must be a string"));
            }
        }
        for key in ["seconds", "value"] {
            match s.get(key) {
                Some(Json::Null) | Some(Json::Num(_)) => {}
                Some(other) => {
                    return Err(format!(
                        "`samples[{i}].{key}` must be a number or null, got {}",
                        other.kind()
                    ))
                }
                None => return Err(format!("`samples[{i}].{key}` is missing")),
            }
        }
    }

    let series = field(&doc, "series")?
        .as_arr()
        .ok_or("`series` must be an array")?;
    for (i, s) in series.iter().enumerate() {
        if field(s, "name")
            .map_err(|e| format!("series[{i}]: {e}"))?
            .as_str()
            .is_none()
        {
            return Err(format!("`series[{i}].name` must be a string"));
        }
        if !is_count(field(s, "count").map_err(|e| format!("series[{i}]: {e}"))?) {
            return Err(format!(
                "`series[{i}].count` must be a non-negative integer"
            ));
        }
        for key in [
            "total_seconds",
            "mean_seconds",
            "min_seconds",
            "max_seconds",
            "per_second",
        ] {
            match s.get(key) {
                Some(Json::Num(_)) | Some(Json::Null) => {}
                _ => return Err(format!("`series[{i}].{key}` must be a number")),
            }
        }
    }

    let metrics = field(&doc, "metrics")?;
    for key in ["counters", "gauges"] {
        let map = field(metrics, key)?;
        for (k, v) in map
            .as_obj()
            .ok_or_else(|| format!("`metrics.{key}` must be an object"))?
        {
            if !is_count(v) {
                return Err(format!(
                    "`metrics.{key}.{k}` must be a non-negative integer"
                ));
            }
        }
    }
    let hists = field(metrics, "histograms")?
        .as_obj()
        .ok_or("`metrics.histograms` must be an object")?;
    for (name, h) in hists {
        for key in ["count", "sum"] {
            if !is_count(field(h, key).map_err(|e| format!("histogram `{name}`: {e}"))?) {
                return Err(format!(
                    "`metrics.histograms.{name}.{key}` must be a non-negative integer"
                ));
            }
        }
        let buckets = field(h, "buckets")
            .map_err(|e| format!("histogram `{name}`: {e}"))?
            .as_arr()
            .ok_or_else(|| format!("`metrics.histograms.{name}.buckets` must be an array"))?;
        for b in buckets {
            let pair = b.as_arr().unwrap_or(&[]);
            if pair.len() != 2 || !pair.iter().all(is_count) {
                return Err(format!(
                    "`metrics.histograms.{name}.buckets` entries must be [upper, count] pairs"
                ));
            }
        }
    }
    Ok(())
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

/// A JSON number that is a non-negative integer (within f64 exactness).
fn is_count(v: &Json) -> bool {
    matches!(v.as_num(), Some(n) if n >= 0.0 && n.fract() == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args() -> Args {
        Args::from_parts(Vec::new(), Vec::new())
    }

    #[test]
    fn empty_harness_emits_schema_valid_json() {
        let h = Harness::from_args("unit", &args(), None);
        let text = h.to_json();
        validate_bench_json(&text).expect("empty artifact validates");
        assert!(text.contains("\"schema\":\"qirana-bench/v1\""));
    }

    #[test]
    fn samples_and_series_round_trip() {
        let mut h = Harness::from_args("unit", &args(), None);
        h.param("support", 500);
        let (out, secs) = h.time("quote", "h=1", || 41 + 1);
        assert_eq!(out, 42);
        assert!(secs >= 0.0);
        h.time("quote", "h=2", || ());
        h.record("price", "h=1", 12.5);
        let text = h.to_json();
        validate_bench_json(&text).expect("artifact validates");
        let doc = parse(&text).expect("parses");
        assert_eq!(doc.get("samples").unwrap().as_arr().unwrap().len(), 3);
        let series = doc.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 1, "only timed samples aggregate");
        assert_eq!(series[0].get("count").unwrap().as_num(), Some(2.0));
        // The timed series also landed in the metrics histograms.
        assert!(text.contains("bench_quote_ns"));
    }

    #[test]
    fn telemetry_stage_metrics_flow_into_artifact() {
        let h = Harness::from_args("unit", &args(), None);
        let tel = h.telemetry();
        tel.counter_add("neighbors_evaluated_total", 7);
        let text = h.to_json();
        validate_bench_json(&text).expect("artifact validates");
        assert!(text.contains("\"neighbors_evaluated_total\":7"));
    }

    #[test]
    fn validator_rejects_drift() {
        let h = Harness::from_args("unit", &args(), None);
        let good = h.to_json();
        let bad_schema = good.replace("qirana-bench/v1", "qirana-bench/v0");
        assert!(validate_bench_json(&bad_schema).is_err());
        assert!(validate_bench_json("{}").is_err());
        assert!(validate_bench_json("not json").is_err());
        let no_machine = good.replace("\"machine\"", "\"mach\"");
        assert!(validate_bench_json(&no_machine).is_err());
    }
}
