//! # qirana-bench
//!
//! Harnesses that regenerate every table and figure of the QIRANA paper's
//! evaluation (§2.4 and §5). Each binary prints the same rows/series the
//! paper plots; `EXPERIMENTS.md` at the repository root records a
//! paper-vs-measured comparison for each.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — pricing-function properties, verified empirically |
//! | `fig2`   | Figure 2 — price behavior of 8 function×support combos |
//! | `table2` | Table 2 — dataset characteristics |
//! | `fig4 a..g` | Figure 4 — support-size, swap-ratio, runtime, history |
//! | `fig5 ssb\|tpch` | Figure 5 — scalability with/without batching |
//! | `fig6`   | Figure 6 — additional world-workload benchmarking |
//! | `table3` | Table 3 — DBLP and car-crash query prices |
//!
//! Every binary accepts `--support N` and `--seed N`, and (where
//! applicable) `--sf F` / `--rows N` / `--nodes N` to scale up toward the
//! paper's exact parameters.

pub mod harness;
pub mod json;

pub use harness::{validate_bench_json, Harness, SCHEMA};

use qirana_core::{PricingFunction, Qirana, QiranaConfig, SupportConfig, SupportType};
use qirana_sqlengine::Database;

/// Minimal flag parser: positional args plus `--name value` pairs.
pub struct Args {
    pub positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    /// Builds args from explicit values (tests, programmatic drivers).
    pub fn from_parts(positional: Vec<String>, flags: Vec<(String, String)>) -> Args {
        Args { positional, flags }
    }

    /// Parses `std::env::args`.
    pub fn parse() -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().unwrap_or_default();
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    /// Typed flag lookup with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Builds a broker with the common experiment defaults ($100 dataset).
#[allow(clippy::expect_used)] // bench harness: setup failure is fatal
pub fn broker(
    db: Database,
    function: PricingFunction,
    support_type: SupportType,
    size: usize,
    seed: u64,
) -> Qirana {
    Qirana::new(
        db,
        QiranaConfig {
            total_price: 100.0,
            function,
            support_type,
            support: SupportConfig {
                size,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("broker construction") // qirana-lint::allow(QL007): bench harness constructs a known-good broker
}

/// Builds a database containing only the named tables of `db` (used by the
/// Figure 2/4a/4b harnesses, whose benchmark instance is Country +
/// CountryLanguage priced at $100 per relation).
pub fn subset_db(db: &Database, names: &[&str]) -> Database {
    let mut out = Database::new();
    for name in names {
        #[allow(clippy::expect_used)] // harness passes known table names
        let t = db.table(name).expect("table exists"); // qirana-lint::allow(QL007): harness passes known table names
        out.add_table(t.schema.clone(), t.rows.iter().cloned());
    }
    out
}

/// The 8 function × support combinations of Figure 2 / Figure 6, labeled
/// as in the paper's legends.
pub fn combos() -> Vec<(PricingFunction, SupportType, String)> {
    let mut out = Vec::new();
    for ty in [SupportType::Neighborhood, SupportType::Uniform] {
        let label = if ty == SupportType::Neighborhood {
            "nbrs"
        } else {
            "uniform"
        };
        for f in PricingFunction::ALL {
            out.push((f, ty, format!("{} - {}", f.name(), label)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_datagen::world;

    #[test]
    fn broker_helper_builds() {
        let b = broker(
            world::generate(1),
            PricingFunction::WeightedCoverage,
            SupportType::Neighborhood,
            100,
            7,
        );
        assert!(b.quote("SELECT * FROM Country").unwrap() > 0.0);
    }

    #[test]
    fn combos_cover_all_eight() {
        assert_eq!(combos().len(), 8);
    }

    #[test]
    fn harness_timing_is_positive() {
        let mut h = Harness::from_args("unit", &Args::from_parts(Vec::new(), Vec::new()), None);
        let (_, t) = h.time("sleep", "2ms", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert!(t > 0.0);
    }
}
