//! Criterion microbenchmarks for QIRANA's hot paths and the design-choice
//! ablations DESIGN.md calls out:
//!
//! * support-set generation;
//! * SPJ disagreement detection — naive vs. instance reduction vs. static
//!   checks without batching vs. full batching (the §4 ladder);
//! * aggregate disagreement detection (Algorithm 5 + delta analysis);
//! * entropy-family partition pricing (Algorithm 2);
//! * history-aware repricing (the shrinking-support effect of §5.3);
//! * weight assignment with price points (the max-entropy solve).

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qirana_core::{
    bundle_disagreements, bundle_partition, generate_support, prepare_query, EngineOptions,
    PricePoint, SupportConfig, SupportSet,
};
use qirana_datagen::world;
use qirana_solver::{solve, MaxEntProblem};

fn support_generation(c: &mut Criterion) {
    let db = world::generate(7);
    let mut g = c.benchmark_group("support_generation");
    for size in [100usize, 1000, 5000] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                generate_support(
                    &db,
                    &SupportConfig {
                        size,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

fn spj_engine_ladder(c: &mut Criterion) {
    let mut db = world::generate(7);
    let support = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: 2000,
            ..Default::default()
        },
    ));
    let q = prepare_query(
        &db,
        "SELECT Name, Population FROM Country C, CountryLanguage L \
         WHERE C.Code = L.CountryCode AND L.Percentage < 30 AND C.Population > 1000000",
    )
    .unwrap();
    let mut g = c.benchmark_group("spj_disagreements_S2000");
    let configs: [(&str, EngineOptions); 4] = [
        ("naive", EngineOptions::naive()),
        (
            "instance_reduction",
            EngineOptions {
                optimize: false,
                batch: false,
                reduce: true,
                ..Default::default()
            },
        ),
        ("static_no_batching", EngineOptions::no_batching()),
        ("batched", EngineOptions::default()),
    ];
    for (name, opts) in configs {
        g.bench_function(name, |b| {
            b.iter(|| bundle_disagreements(&mut db, &[&q], &support, &opts, None).unwrap())
        });
    }
    g.finish();
}

fn agg_engine(c: &mut Criterion) {
    let mut db = world::generate(7);
    let support = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: 2000,
            ..Default::default()
        },
    ));
    let q = prepare_query(
        &db,
        "SELECT Region, AVG(LifeExpectancy), COUNT(*) FROM Country GROUP BY Region",
    )
    .unwrap();
    let mut g = c.benchmark_group("agg_disagreements_S2000");
    for (name, opts) in [
        ("naive", EngineOptions::naive()),
        ("optimized", EngineOptions::default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| bundle_disagreements(&mut db, &[&q], &support, &opts, None).unwrap())
        });
    }
    g.finish();
}

fn entropy_partition(c: &mut Criterion) {
    let mut db = world::generate(7);
    let support = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: 300,
            ..Default::default()
        },
    ));
    let q = prepare_query(
        &db,
        "SELECT Continent, COUNT(*) FROM Country GROUP BY Continent",
    )
    .unwrap();
    c.bench_function("bundle_partition_S300", |b| {
        b.iter(|| bundle_partition(&mut db, &[&q], &support, &EngineOptions::default()).unwrap())
    });
}

fn history_shrinks_work(c: &mut Criterion) {
    let mut db = world::generate(7);
    let support = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: 2000,
            ..Default::default()
        },
    ));
    let q = prepare_query(&db, "SELECT * FROM Country WHERE ID < 120").unwrap();
    // A buyer who already paid for 90% of the support set.
    let charged: Vec<bool> = (0..2000).map(|i| i % 10 != 0).collect();
    let mut g = c.benchmark_group("history_aware_S2000");
    g.bench_function("fresh_buyer", |b| {
        b.iter(|| {
            bundle_disagreements(&mut db, &[&q], &support, &EngineOptions::default(), None).unwrap()
        })
    });
    g.bench_function("buyer_with_90pct_history", |b| {
        b.iter(|| {
            bundle_disagreements(
                &mut db,
                &[&q],
                &support,
                &EngineOptions::default(),
                Some(&charged),
            )
            .unwrap()
        })
    });
    g.finish();
}

fn weight_assignment(c: &mut Criterion) {
    let mut db = world::generate(7);
    let support = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: 2000,
            ..Default::default()
        },
    ));
    let points = vec![
        PricePoint::new("SELECT * FROM Country", 60.0),
        PricePoint::new("SELECT ID, Population FROM Country", 20.0),
        PricePoint::new("SELECT * FROM City", 25.0),
    ];
    c.bench_function("assign_weights_3_points_S2000", |b| {
        b.iter(|| {
            qirana_core::assign_weights(
                &mut db,
                &support,
                100.0,
                &points,
                &EngineOptions::default(),
            )
            .unwrap()
        })
    });
}

fn maxent_solver(c: &mut Criterion) {
    let n = 10_000;
    let mut a = vec![vec![1.0; n]];
    let mut b = vec![100.0];
    for j in 1..=8usize {
        let cut = n * j / 10;
        let mut row = vec![0.0; n];
        row[..cut].iter_mut().for_each(|x| *x = 1.0);
        a.push(row);
        b.push(100.0 * cut as f64 / n as f64 * 0.9);
    }
    let p = MaxEntProblem { a, b, n };
    c.bench_function("maxent_8_constraints_10k_vars", |bch| {
        bch.iter(|| {
            let r = solve(&p);
            assert!(r.is_optimal());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = support_generation, spj_engine_ladder, agg_engine,
              entropy_partition, history_shrinks_work, weight_assignment,
              maxent_solver
}
criterion_main!(benches);
