//! # qirana-datagen
//!
//! Deterministic synthetic generators for the five datasets of QIRANA's
//! evaluation (§5, Table 2), plus every query workload the paper runs over
//! them. The original datasets are either not redistributable (Azure
//! DataMarket car-crash export), fetched from external services (SNAP
//! DBLP, MySQL `world`), or produced by external tools (`dbgen`,
//! `ssb-dbgen`); these generators reproduce the schemas, key structure, and
//! the distributional properties the paper's price discussion relies on.
//! See `DESIGN.md` §1 for the substitution rationale per dataset.
//!
//! | Module | Dataset | Paper scale |
//! |---|---|---|
//! | [`world`] | MySQL `world` (3 relations) | 5 302 tuples |
//! | [`carcrash`] | US car crash 2011 (1 relation) | 71 115 tuples |
//! | [`dblp`] | SNAP com-DBLP co-authorship graph | 1 049 866 tuples |
//! | [`tpch`] | TPC-H | SF 1 |
//! | [`ssb`] | Star Schema Benchmark | SF 1 |
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible bit-for-bit.

pub mod carcrash;
pub mod dblp;
pub mod names;
pub mod queries;
pub mod ssb;
pub mod tpch;
pub mod world;
