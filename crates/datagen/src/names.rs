//! Deterministic pseudo-realistic string generation shared by the dataset
//! generators.

use rand::rngs::StdRng;
use rand::Rng;

/// Picks one item uniformly.
pub fn pick<'a>(rng: &mut StdRng, items: &[&'a str]) -> &'a str {
    items[rng.gen_range(0..items.len())]
}

const ONSETS: &[&str] = &[
    "Al", "Ar", "Ba", "Be", "Bra", "Ca", "Cha", "Da", "El", "Fra", "Ga", "Gre", "Ha", "In", "Ja",
    "Ka", "Li", "Ma", "Mo", "Na", "Or", "Pa", "Qu", "Ro", "Sa", "Ta", "Ur", "Va", "Wa", "Ze",
];
const MIDDLES: &[&str] = &[
    "ba", "da", "ga", "la", "ma", "na", "ra", "sa", "ta", "va", "li", "ri", "ni", "mi", "lo", "ro",
    "no", "to", "ke", "le",
];
const CODAS: &[&str] = &[
    "nia", "land", "stan", "via", "dor", "ria", "na", "ca", "ga", "ma", "lia", "que", "ro", "ton",
    "ville", "berg", "mouth", "ford",
];

/// Generates a capitalized synthetic proper name ("Balinia", "Grelostan").
pub fn synth_name(rng: &mut StdRng) -> String {
    let mut s = String::from(pick(rng, ONSETS));
    let middles = rng.gen_range(0..=1);
    for _ in 0..middles {
        s.push_str(pick(rng, MIDDLES));
    }
    s.push_str(pick(rng, CODAS));
    s
}

/// Generates an uppercase alphabetic code of the given length ("USA"-like).
pub fn synth_code(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| (b'A' + rng.gen_range(0..26u8)) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(synth_name(&mut a), synth_name(&mut b));
        assert_eq!(synth_code(&mut a, 3), synth_code(&mut b, 3));
    }

    #[test]
    fn names_capitalized_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let n = synth_name(&mut rng);
            assert!(n.chars().next().unwrap().is_uppercase());
            assert!(n.len() >= 3);
        }
    }

    #[test]
    fn codes_have_requested_length() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(synth_code(&mut rng, 3).len(), 3);
        assert!(synth_code(&mut rng, 2)
            .chars()
            .all(|c| c.is_ascii_uppercase()));
    }
}
