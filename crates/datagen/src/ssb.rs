//! Star Schema Benchmark (SSB) data generator (scaled).
//!
//! SSB denormalizes TPC-H into one fact table (`lineorder`) and four
//! dimensions (`customer`, `supplier`, `part`, `dwdate`). The paper's
//! Table 2 lists it with 56 attributes; the spec's five relations carry
//! 17 + 8 + 7 + 9 + 16 = 57 columns — we implement the spec schema and note
//! the off-by-one in EXPERIMENTS.md.
//!
//! The generator reproduces the value distributions the 13 SSB queries
//! filter on: `d_year` 1992–1998, integer discounts 0–10, quantities 1–50,
//! `p_category = 'MFGR#12'`-style hierarchies, `s_region`/`c_region` from
//! the 5 TPC-H regions, and city codes like `'UNITED KI1'`.

use crate::names::{pick, synth_name};
use crate::tpch::{NATIONS, REGIONS};
use qirana_sqlengine::value::{civil_from_days, days_from_civil};
use qirana_sqlengine::{ColumnDef, DataType, Database, Row, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];
const DAYS: [&str; 7] = [
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
];
const SEASONS: [&str; 5] = ["Spring", "Summer", "Fall", "Winter", "Christmas"];

/// SSB city: first 9 chars of the nation padded, plus a digit 0-9.
fn city(rng: &mut StdRng, nation: &str) -> String {
    let mut base: String = nation.chars().take(9).collect();
    while base.len() < 9 {
        base.push(' ');
    }
    format!("{base}{}", rng.gen_range(0..10))
}

/// Generates an SSB database at the given scale factor
/// (`sf = 1.0` ⇒ 6M lineorder rows).
pub fn generate(sf: f64, seed: u64) -> Database {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    let n_customer = ((30_000.0 * sf) as usize).max(30);
    let n_supplier = ((2_000.0 * sf) as usize).max(10);
    // Spec says 200k·(1 + log₂SF); for the sub-1 scale factors this repo
    // runs at, a simple proportional scale keeps join selectivities stable.
    let n_part = ((200_000.0 * sf) as usize).max(40);
    let n_orders = ((1_500_000.0 * sf) as usize).max(150);

    // ---- dwdate: one row per calendar day, 1992-01-01 .. 1998-12-31 ----
    let date_schema = TableSchema::new(
        "dwdate",
        vec![
            ColumnDef::new("d_datekey", DataType::Int),
            ColumnDef::new("d_date", DataType::Str),
            ColumnDef::new("d_dayofweek", DataType::Str),
            ColumnDef::new("d_month", DataType::Str),
            ColumnDef::new("d_year", DataType::Int),
            ColumnDef::new("d_yearmonthnum", DataType::Int),
            ColumnDef::new("d_yearmonth", DataType::Str),
            ColumnDef::new("d_daynuminweek", DataType::Int),
            ColumnDef::new("d_daynuminmonth", DataType::Int),
            ColumnDef::new("d_daynuminyear", DataType::Int),
            ColumnDef::new("d_monthnuminyear", DataType::Int),
            ColumnDef::new("d_weeknuminyear", DataType::Int),
            ColumnDef::new("d_sellingseason", DataType::Str),
            ColumnDef::new("d_lastdayinweekfl", DataType::Int),
            ColumnDef::new("d_holidayfl", DataType::Int),
            ColumnDef::new("d_weekdayfl", DataType::Int),
        ],
        &["d_datekey"],
    );
    let start = days_from_civil(1992, 1, 1);
    let end = days_from_civil(1998, 12, 31);
    let mut date_rows: Vec<Row> = Vec::with_capacity((end - start + 1) as usize);
    let mut datekeys: Vec<i64> = Vec::new();
    for d in start..=end {
        let (y, m, day) = civil_from_days(d);
        let datekey = (y as i64) * 10_000 + (m as i64) * 100 + day as i64;
        datekeys.push(datekey);
        let dow = (d - start).rem_euclid(7) as usize;
        let doy = d - days_from_civil(y, 1, 1) + 1;
        date_rows.push(vec![
            Value::Int(datekey),
            Value::str(format!("{} {}, {}", MONTHS[(m - 1) as usize], day, y)),
            Value::str(DAYS[dow]),
            Value::str(MONTHS[(m - 1) as usize]),
            Value::Int(y as i64),
            Value::Int((y as i64) * 100 + m as i64),
            Value::str(format!("{}{}", MONTHS[(m - 1) as usize], y)),
            Value::Int(dow as i64 + 1),
            Value::Int(day as i64),
            Value::Int(doy as i64),
            Value::Int(m as i64),
            Value::Int(((doy - 1) / 7 + 1) as i64),
            Value::str(SEASONS[(m as usize - 1) % SEASONS.len()]),
            Value::Int((dow == 6) as i64),
            Value::Int(((day == 25 && m == 12) || (day == 1 && m == 1)) as i64),
            Value::Int((dow < 5) as i64),
        ]);
    }
    db.add_table(date_schema, date_rows);

    // ---- customer ----
    let customer_schema = TableSchema::new(
        "customer",
        vec![
            ColumnDef::new("c_custkey", DataType::Int),
            ColumnDef::new("c_name", DataType::Str),
            ColumnDef::new("c_address", DataType::Str),
            ColumnDef::new("c_city", DataType::Str),
            ColumnDef::new("c_nation", DataType::Str),
            ColumnDef::new("c_region", DataType::Str),
            ColumnDef::new("c_phone", DataType::Str),
            ColumnDef::new("c_mktsegment", DataType::Str),
        ],
        &["c_custkey"],
    );
    let segments = [
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "MACHINERY",
        "HOUSEHOLD",
    ];
    let customer_rows: Vec<Row> = (1..=n_customer as i64)
        .map(|k| {
            let (nation, region) = NATIONS[rng.gen_range(0..25usize)];
            vec![
                Value::Int(k),
                Value::str(format!("Customer#{k:09}")),
                Value::str(synth_name(&mut rng)),
                Value::str(city(&mut rng, nation)),
                Value::str(nation),
                Value::str(REGIONS[region]),
                Value::str(format!(
                    "{}-{}",
                    rng.gen_range(10..35),
                    rng.gen_range(100..999)
                )),
                Value::str(pick(&mut rng, &segments)),
            ]
        })
        .collect();
    db.add_table(customer_schema, customer_rows);

    // ---- supplier ----
    let supplier_schema = TableSchema::new(
        "supplier",
        vec![
            ColumnDef::new("s_suppkey", DataType::Int),
            ColumnDef::new("s_name", DataType::Str),
            ColumnDef::new("s_address", DataType::Str),
            ColumnDef::new("s_city", DataType::Str),
            ColumnDef::new("s_nation", DataType::Str),
            ColumnDef::new("s_region", DataType::Str),
            ColumnDef::new("s_phone", DataType::Str),
        ],
        &["s_suppkey"],
    );
    let supplier_rows: Vec<Row> = (1..=n_supplier as i64)
        .map(|k| {
            let (nation, region) = NATIONS[rng.gen_range(0..25usize)];
            vec![
                Value::Int(k),
                Value::str(format!("Supplier#{k:09}")),
                Value::str(synth_name(&mut rng)),
                Value::str(city(&mut rng, nation)),
                Value::str(nation),
                Value::str(REGIONS[region]),
                Value::str(format!(
                    "{}-{}",
                    rng.gen_range(10..35),
                    rng.gen_range(100..999)
                )),
            ]
        })
        .collect();
    db.add_table(supplier_schema, supplier_rows);

    // ---- part ----
    let part_schema = TableSchema::new(
        "part",
        vec![
            ColumnDef::new("p_partkey", DataType::Int),
            ColumnDef::new("p_name", DataType::Str),
            ColumnDef::new("p_mfgr", DataType::Str),
            ColumnDef::new("p_category", DataType::Str),
            ColumnDef::new("p_brand1", DataType::Str),
            ColumnDef::new("p_color", DataType::Str),
            ColumnDef::new("p_type", DataType::Str),
            ColumnDef::new("p_size", DataType::Int),
            ColumnDef::new("p_container", DataType::Str),
        ],
        &["p_partkey"],
    );
    let colors = ["red", "green", "blue", "ivory", "plum", "khaki", "salmon"];
    let part_rows: Vec<Row> = (1..=n_part as i64)
        .map(|k| {
            let m = rng.gen_range(1..=5);
            let c = rng.gen_range(1..=5);
            let b = rng.gen_range(1..=40);
            vec![
                Value::Int(k),
                Value::str(synth_name(&mut rng)),
                Value::str(format!("MFGR#{m}")),
                Value::str(format!("MFGR#{m}{c}")),
                Value::str(format!("MFGR#{m}{c}{b:02}")),
                Value::str(pick(&mut rng, &colors)),
                Value::str(synth_name(&mut rng)),
                Value::Int(rng.gen_range(1..=50)),
                Value::str(format!("{} BOX", pick(&mut rng, &["SM", "MED", "LG"]))),
            ]
        })
        .collect();
    db.add_table(part_schema, part_rows);

    // ---- lineorder ----
    let mut lo_schema = TableSchema::new(
        "lineorder",
        vec![
            ColumnDef::new("lo_orderkey", DataType::Int),
            ColumnDef::new("lo_linenumber", DataType::Int),
            ColumnDef::new("lo_custkey", DataType::Int),
            ColumnDef::new("lo_partkey", DataType::Int),
            ColumnDef::new("lo_suppkey", DataType::Int),
            ColumnDef::new("lo_orderdate", DataType::Int),
            ColumnDef::new("lo_orderpriority", DataType::Str),
            ColumnDef::new("lo_shippriority", DataType::Int),
            ColumnDef::new("lo_quantity", DataType::Int),
            ColumnDef::new("lo_extendedprice", DataType::Int),
            ColumnDef::new("lo_ordtotalprice", DataType::Int),
            ColumnDef::new("lo_discount", DataType::Int),
            ColumnDef::new("lo_revenue", DataType::Int),
            ColumnDef::new("lo_supplycost", DataType::Int),
            ColumnDef::new("lo_tax", DataType::Int),
            ColumnDef::new("lo_commitdate", DataType::Int),
            ColumnDef::new("lo_shipmode", DataType::Str),
        ],
        &["lo_orderkey", "lo_linenumber"],
    );
    for (cols, parent) in [
        (&["lo_custkey"][..], "customer"),
        (&["lo_suppkey"][..], "supplier"),
        (&["lo_partkey"][..], "part"),
        (&["lo_orderdate"][..], "dwdate"),
    ] {
        #[allow(clippy::unwrap_used)] // parent table added above
        let parent_schema = db.table(parent).unwrap().schema.clone(); // qirana-lint::allow(QL007): parent table added above
        let parent_pk: Vec<&str> = parent_schema
            .primary_key
            .iter()
            .map(|&i| parent_schema.columns[i].name.as_str())
            .collect();
        lo_schema.add_foreign_key(cols, parent, &parent_schema, &parent_pk);
    }
    let priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
    let modes = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
    let mut lo_rows: Vec<Row> = Vec::new();
    for ok in 1..=n_orders as i64 {
        let nlines = rng.gen_range(1..=7usize);
        let odate = datekeys[rng.gen_range(0..datekeys.len())];
        let priority = pick(&mut rng, &priorities).to_string();
        let mut ordtotal = 0i64;
        let base = lo_rows.len();
        for ln in 1..=nlines as i64 {
            let qty = rng.gen_range(1..=50i64);
            let price = rng.gen_range(90_000..200_000i64) * qty / 50;
            let discount = rng.gen_range(0..=10i64);
            let tax = rng.gen_range(0..=8i64);
            let revenue = price * (100 - discount) / 100;
            ordtotal += price;
            lo_rows.push(vec![
                Value::Int(ok),
                Value::Int(ln),
                Value::Int(rng.gen_range(1..=n_customer as i64)),
                Value::Int(rng.gen_range(1..=n_part as i64)),
                Value::Int(rng.gen_range(1..=n_supplier as i64)),
                Value::Int(odate),
                Value::str(&priority),
                Value::Int(0),
                Value::Int(qty),
                Value::Int(price),
                Value::Int(0), // patched below
                Value::Int(discount),
                Value::Int(revenue),
                Value::Int(price * 6 / 10),
                Value::Int(tax),
                Value::Int(datekeys[rng.gen_range(0..datekeys.len())]),
                Value::str(pick(&mut rng, &modes)),
            ]);
        }
        for r in &mut lo_rows[base..] {
            r[10] = Value::Int(ordtotal);
        }
    }
    db.add_table(lo_schema, lo_rows);

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::query;

    #[test]
    fn five_relations_spec_schema() {
        let db = generate(0.001, 1);
        assert_eq!(db.num_tables(), 5);
        assert_eq!(db.total_attributes(), 57);
        assert_eq!(db.table("dwdate").unwrap().len(), 2557); // 1992..1998 incl. 2 leap years
    }

    #[test]
    fn q1_1_returns_revenue() {
        let db = generate(0.002, 2);
        let out = query(
            &db,
            "select sum(lo_extendedprice * lo_discount) as revenue from lineorder, dwdate where lo_orderdate = d_datekey and d_year = 1993 and lo_discount between 1 and 3 and lo_quantity < 25",
        )
        .unwrap();
        assert!(out.rows[0][0].as_f64().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn q2_1_star_join_groups() {
        let db = generate(0.002, 3);
        let out = query(
            &db,
            "select sum(lo_revenue), d_year, p_brand1 from lineorder, dwdate, part, supplier where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey and p_category = 'MFGR#12' and s_region = 'AMERICA' group by d_year, p_brand1 order by d_year, p_brand1",
        )
        .unwrap();
        assert!(!out.rows.is_empty());
    }

    #[test]
    fn city_codes_shaped_right() {
        let db = generate(0.001, 4);
        let out = query(&db, "select distinct c_city from customer").unwrap();
        for r in &out.rows {
            let c = r[0].as_str().unwrap();
            assert_eq!(c.len(), 10, "city {c:?} must be 9 chars + digit");
        }
        // At least one UNITED KI* city exists at any reasonable size.
        let out = query(
            &db,
            "select count(*) from customer where c_city like 'UNITED KI%'",
        )
        .unwrap();
        assert!(out.rows[0][0].as_i64().unwrap() > 0);
    }

    #[test]
    fn yearmonth_format() {
        let db = generate(0.001, 5);
        let out = query(
            &db,
            "select count(*) from dwdate where d_yearmonth = 'Dec1997'",
        )
        .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(31));
    }

    #[test]
    fn deterministic() {
        let a = generate(0.001, 6);
        let b = generate(0.001, 6);
        assert_eq!(
            a.table("lineorder").unwrap().rows,
            b.table("lineorder").unwrap().rows
        );
    }
}
