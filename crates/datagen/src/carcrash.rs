//! Synthetic US Car Crash 2011 dataset.
//!
//! The original is a Microsoft Azure DataMarket export (one relation,
//! 71 115 tuples, 14 attributes — paper Table 2) that is no longer
//! distributable; this generator reproduces the schema and the
//! distributional features the paper's Table 3 prices depend on: `Qc2`/`Qc3`
//! (Texas/California slices) are moderately selective, while `Qc4`
//! (Wisconsin + fatal injury + snow) is so selective that small support sets
//! assign it price 0.

use crate::names::pick;
use qirana_sqlengine::{ColumnDef, DataType, Database, Row, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paper-scale row count.
pub const DEFAULT_ROWS: usize = 71_115;

const STATES: &[&str] = &[
    "California",
    "Texas",
    "Florida",
    "New York",
    "Pennsylvania",
    "Ohio",
    "Georgia",
    "Illinois",
    "North Carolina",
    "Michigan",
    "Wisconsin",
    "Arizona",
    "Washington",
    "Tennessee",
    "Missouri",
];

const SEVERITIES: &[&str] = &[
    "No Injury (O)",
    "Possible Injury (C)",
    "Non-Incapacitating Injury (B)",
    "Incapacitating Injury (A)",
    "Fatal Injury (K)",
    "Unknown",
];

const ATMOSPHERE: &[&str] = &[
    "Clear",
    "Rain",
    "Cloudy",
    "Snow",
    "Fog",
    "Severe Crosswinds",
    "Unknown",
];

const PERSON_TYPES: &[&str] = &["Driver", "Passenger", "Pedestrian", "Bicyclist", "Unknown"];

const SEATING: &[&str] = &[
    "Front Seat - Left Side",
    "Front Seat - Right Side",
    "Second Seat - Left Side",
    "Second Seat - Right Side",
    "Not a Motor Vehicle Occupant",
];

const SAFETY: &[&str] = &[
    "Shoulder and Lap Belt",
    "None Used",
    "Helmet",
    "Child Safety Seat",
    "Unknown",
];

const RACES: &[&str] = &["White", "Black", "Hispanic", "Asian", "Other", "Unknown"];

/// Generates the dataset with `rows` tuples. Deterministic for a fixed seed.
pub fn generate(rows: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = TableSchema::new(
        "crash",
        vec![
            ColumnDef::new("ID", DataType::Int),
            ColumnDef::new("State", DataType::Str),
            ColumnDef::new("Crash_Date", DataType::Date),
            ColumnDef::new("Gender", DataType::Str),
            ColumnDef::new("Age", DataType::Int),
            ColumnDef::new("Person_Type", DataType::Str),
            ColumnDef::new("Injury_Severity", DataType::Str),
            ColumnDef::new("Seating_Position", DataType::Str),
            ColumnDef::new("Safety_Equipment", DataType::Str),
            ColumnDef::new("Alcohol_Results", DataType::Float),
            ColumnDef::new("Drug_Involvement", DataType::Str),
            ColumnDef::new("Race", DataType::Str),
            ColumnDef::new("Atmospheric_Condition", DataType::Str),
            ColumnDef::new("Fatalities_in_crash", DataType::Int),
        ],
        &["ID"],
    );

    let jan1 = qirana_sqlengine::value::days_from_civil(2011, 1, 1);
    let mut out: Vec<Row> = Vec::with_capacity(rows);
    for id in 1..=rows {
        // State skew: big states dominate; Wisconsin stays rare so Qc4's
        // triple filter is near-empty.
        let state = if rng.gen_bool(0.55) {
            STATES[rng.gen_range(0..5usize)]
        } else {
            pick(&mut rng, STATES)
        };
        let severity = if rng.gen_bool(0.25) {
            "Fatal Injury (K)"
        } else {
            pick(&mut rng, SEVERITIES)
        };
        let atmosphere = if rng.gen_bool(0.7) {
            "Clear"
        } else {
            pick(&mut rng, ATMOSPHERE)
        };
        let alcohol = if rng.gen_bool(0.3) {
            (rng.gen_range(0.0..0.35f64) * 100.0).round() / 100.0
        } else {
            0.0
        };
        out.push(vec![
            Value::Int(id as i64),
            Value::str(state),
            Value::Date(jan1 + rng.gen_range(0..365)),
            Value::str(if rng.gen_bool(0.7) { "Male" } else { "Female" }),
            Value::Int(rng.gen_range(1..95)),
            Value::str(pick(&mut rng, PERSON_TYPES)),
            Value::str(severity),
            Value::str(pick(&mut rng, SEATING)),
            Value::str(pick(&mut rng, SAFETY)),
            Value::Float(alcohol),
            Value::str(if rng.gen_bool(0.12) { "Yes" } else { "No" }),
            Value::str(pick(&mut rng, RACES)),
            Value::str(atmosphere),
            Value::Int(rng.gen_range(1..4)),
        ]);
    }
    let mut db = Database::new();
    db.add_table(schema, out);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::query;

    #[test]
    fn schema_matches_paper() {
        let db = generate(1000, 1);
        let t = db.table("crash").unwrap();
        assert_eq!(t.schema.arity(), 14);
        assert_eq!(t.len(), 1000);
        assert_eq!(db.num_tables(), 1);
    }

    #[test]
    fn qc_queries_run() {
        let db = generate(5000, 2);
        let out = query(&db, "select State, count(*) from crash group by State").unwrap();
        assert!(out.rows.len() > 5);
        let out = query(
            &db,
            "select count(*) from crash where State = 'Texas' and Gender = 'Male' and Alcohol_Results > 0.0",
        )
        .unwrap();
        assert!(out.rows[0][0].as_i64().unwrap() > 0);
        let out = query(
            &db,
            "select sum(Fatalities_in_crash) from crash where State = 'California' and Crash_Date >= date '2011-01-01' and Crash_Date < date '2011-01-01' + interval '6' month",
        )
        .unwrap();
        assert!(out.rows[0][0].as_i64().unwrap() > 0);
    }

    #[test]
    fn qc4_is_highly_selective() {
        let db = generate(20_000, 3);
        let out = query(
            &db,
            "select count(Fatalities_in_crash) from crash where State = 'Wisconsin' and Injury_Severity = 'Fatal Injury (K)' and (Atmospheric_Condition = 'Snow')",
        )
        .unwrap();
        let n = out.rows[0][0].as_i64().unwrap();
        let frac = n as f64 / 20_000.0;
        assert!(frac < 0.01, "Qc4 must be ultra-selective, got {frac}");
    }

    #[test]
    fn deterministic() {
        let a = generate(500, 7);
        let b = generate(500, 7);
        assert_eq!(
            a.table("crash").unwrap().rows,
            b.table("crash").unwrap().rows
        );
    }
}
