//! Synthetic `world` dataset.
//!
//! Reproduces the MySQL `world` sample database's schema and cardinalities
//! (239 countries, ~4 000 cities, ~1 000 country languages; 5 302 tuples
//! total in the paper's Table 2), with the extra integer candidate key `ID`
//! on `Country` that §2.4 adds for the `Qσ_u: SELECT * FROM Country WHERE
//! ID < u` benchmark. `Country` carries exactly 13 non-key attributes so
//! `Qπ_u` sweeps `u = 1..13` as in Figure 2.

use crate::names::{pick, synth_code, synth_name};
use qirana_sqlengine::{ColumnDef, DataType, Database, Row, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of countries (matches the real dataset; drives `Qσ_u`'s 1..240
/// parameter sweep).
pub const NUM_COUNTRIES: usize = 239;

/// The 13 non-key Country attributes, in `Qπ_u` sweep order.
pub const COUNTRY_ATTRS: [&str; 13] = [
    "Code",
    "Name",
    "Continent",
    "Region",
    "SurfaceArea",
    "IndepYear",
    "Population",
    "LifeExpectancy",
    "GNP",
    "LocalName",
    "GovernmentForm",
    "HeadOfState",
    "Capital",
];

const CONTINENTS: &[&str] = &[
    "Asia",
    "Europe",
    "North America",
    "Africa",
    "Oceania",
    "South America",
    "Antarctica",
];

const REGIONS: &[&str] = &[
    "Caribbean",
    "Southern and Central Asia",
    "Central Africa",
    "Southern Europe",
    "Middle East",
    "South America",
    "Polynesia",
    "Antarctica",
    "Australia and New Zealand",
    "Western Europe",
    "Eastern Africa",
    "Western Africa",
    "Eastern Europe",
    "Central America",
    "North America",
    "Southeast Asia",
    "Southern Africa",
    "Eastern Asia",
    "Nordic Countries",
    "Northern Africa",
    "Baltic Countries",
    "Melanesia",
    "Micronesia",
    "British Islands",
    "Micronesia/Caribbean",
];

const GOVERNMENT_FORMS: &[&str] = &[
    "Republic",
    "Monarchy",
    "Federal Republic",
    "Constitutional Monarchy",
    "Parliamentary Republic",
    "Federation",
    "Socialist Republic",
    "Emirate",
    "Dependent Territory",
];

const LANGUAGES: &[&str] = &[
    "English",
    "Spanish",
    "Arabic",
    "Chinese",
    "French",
    "German",
    "Portuguese",
    "Russian",
    "Japanese",
    "Hindi",
    "Bengali",
    "Greek",
    "Italian",
    "Turkish",
    "Korean",
    "Dutch",
    "Swedish",
    "Polish",
    "Thai",
    "Swahili",
];

/// Generates the dataset. Deterministic for a fixed `seed`.
pub fn generate(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    // ---- Country ----
    let mut country_cols = vec![ColumnDef::new("ID", DataType::Int)];
    for (name, ty) in [
        ("Code", DataType::Str),
        ("Name", DataType::Str),
        ("Continent", DataType::Str),
        ("Region", DataType::Str),
        ("SurfaceArea", DataType::Float),
        ("IndepYear", DataType::Int),
        ("Population", DataType::Int),
        ("LifeExpectancy", DataType::Float),
        ("GNP", DataType::Float),
        ("LocalName", DataType::Str),
        ("GovernmentForm", DataType::Str),
        ("HeadOfState", DataType::Str),
        ("Capital", DataType::Int),
    ] {
        country_cols.push(ColumnDef::new(name, ty));
    }
    let country_schema = TableSchema::new("Country", country_cols, &["ID"]);

    let mut codes: Vec<String> = Vec::with_capacity(NUM_COUNTRIES);
    let mut seen = std::collections::HashSet::new();
    while codes.len() < NUM_COUNTRIES {
        let c = synth_code(&mut rng, 3);
        if seen.insert(c.clone()) {
            codes.push(c);
        }
    }
    // A couple of fixed codes so the Qw workload's constants hit real rows.
    codes[0] = "USA".into();
    codes[1] = "GRC".into();

    let mut country_rows: Vec<Row> = Vec::with_capacity(NUM_COUNTRIES);
    for (i, code) in codes.iter().enumerate() {
        let continent = pick(&mut rng, CONTINENTS);
        let region = pick(&mut rng, REGIONS);
        let population: i64 = if rng.gen_bool(0.1) {
            rng.gen_range(100_000_000..1_400_000_000)
        } else {
            rng.gen_range(10_000..100_000_000)
        };
        country_rows.push(vec![
            Value::Int(i as i64 + 1),
            Value::str(code),
            Value::str(synth_name(&mut rng)),
            Value::str(continent),
            Value::str(region),
            Value::Float((rng.gen_range(1.0..17_000_000.0f64) * 10.0).round() / 10.0),
            Value::Int(rng.gen_range(-1000..1995)),
            Value::Int(population),
            Value::Float((rng.gen_range(40.0..85.0f64) * 10.0).round() / 10.0),
            Value::Float((rng.gen_range(100.0..9_000_000.0f64) * 100.0).round() / 100.0),
            Value::str(synth_name(&mut rng)),
            Value::str(pick(&mut rng, GOVERNMENT_FORMS)),
            Value::str(synth_name(&mut rng)),
            Value::Int(0), // patched below to a real city ID
        ]);
    }

    // ---- City ----
    let city_schema = TableSchema::new(
        "City",
        vec![
            ColumnDef::new("ID", DataType::Int),
            ColumnDef::new("Name", DataType::Str),
            ColumnDef::new("CountryCode", DataType::Str),
            ColumnDef::new("District", DataType::Str),
            ColumnDef::new("Population", DataType::Int),
        ],
        &["ID"],
    );
    let num_cities = 4079;
    let mut city_rows: Vec<Row> = Vec::with_capacity(num_cities);
    for id in 1..=num_cities {
        let country = &codes[rng.gen_range(0..codes.len())];
        let population: i64 = if rng.gen_bool(0.05) {
            rng.gen_range(1_000_000..25_000_000)
        } else {
            rng.gen_range(1_000..1_000_000)
        };
        city_rows.push(vec![
            Value::Int(id as i64),
            Value::str(synth_name(&mut rng)),
            Value::str(country),
            Value::str(synth_name(&mut rng)),
            Value::Int(population),
        ]);
    }
    // Capitals: each country points at a uniformly chosen city.
    for row in &mut country_rows {
        row[13] = Value::Int(rng.gen_range(1..=num_cities as i64));
    }

    // ---- CountryLanguage ----
    let lang_schema = TableSchema::new(
        "CountryLanguage",
        vec![
            ColumnDef::new("CountryCode", DataType::Str),
            ColumnDef::new("Language", DataType::Str),
            ColumnDef::new("IsOfficial", DataType::Str),
            ColumnDef::new("Percentage", DataType::Float),
        ],
        &["CountryCode", "Language"],
    );
    let mut lang_rows: Vec<Row> = Vec::new();
    for code in &codes {
        let k = rng.gen_range(2..=6usize);
        let mut chosen = std::collections::HashSet::new();
        for j in 0..k {
            let lang = pick(&mut rng, LANGUAGES);
            if !chosen.insert(lang) {
                continue;
            }
            // Percentages spread over a log-ish range so `Percentage < u`
            // with u in 10⁻²..10² sweeps selectivity as in Figure 2.
            let pct = 100.0 * rng.gen::<f64>().powi(3);
            lang_rows.push(vec![
                Value::str(code),
                Value::str(lang),
                Value::str(if j == 0 { "T" } else { "F" }),
                Value::Float((pct * 10.0).round() / 10.0),
            ]);
        }
    }

    db.add_table(country_schema, country_rows);
    db.add_table(city_schema, city_rows);
    db.add_table(lang_schema, lang_rows);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::query;

    #[test]
    fn cardinalities_match_paper_scale() {
        let db = generate(42);
        assert_eq!(db.table("Country").unwrap().len(), 239);
        assert_eq!(db.table("City").unwrap().len(), 4079);
        let total = db.total_rows();
        assert!(
            (4800..6000).contains(&total),
            "world total rows ~5302, got {total}"
        );
        assert_eq!(db.num_tables(), 3);
    }

    #[test]
    fn country_has_13_non_key_attributes() {
        let db = generate(1);
        let c = db.table("Country").unwrap();
        assert_eq!(c.schema.arity(), 14);
        assert_eq!(c.schema.non_key_columns().len(), 13);
        for a in COUNTRY_ATTRS {
            assert!(c.schema.column_index(a).is_some(), "missing {a}");
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(9);
        let b = generate(9);
        assert_eq!(
            a.table("Country").unwrap().rows,
            b.table("Country").unwrap().rows
        );
    }

    #[test]
    fn benchmark_queries_run() {
        let db = generate(3);
        let out = query(&db, "SELECT * FROM Country WHERE ID < 120").unwrap();
        assert_eq!(out.rows.len(), 119);
        let out = query(
            &db,
            "SELECT Region, AVG(LifeExpectancy) FROM Country GROUP BY Region LIMIT 5",
        )
        .unwrap();
        assert!(out.rows.len() <= 5);
        let out = query(
            &db,
            "SELECT * FROM Country C, CountryLanguage CL WHERE C.Code = CL.CountryCode AND CL.Percentage < 50",
        )
        .unwrap();
        assert!(!out.rows.is_empty());
    }

    #[test]
    fn fixed_codes_present() {
        let db = generate(5);
        let out = query(&db, "SELECT count(*) FROM Country WHERE Code = 'USA'").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(1));
        let out = query(&db, "SELECT count(*) FROM City WHERE CountryCode = 'GRC'").unwrap();
        assert!(out.rows[0][0].as_i64().unwrap() >= 0);
    }

    #[test]
    fn language_percentage_spread() {
        let db = generate(11);
        let lo = query(
            &db,
            "SELECT count(*) FROM CountryLanguage WHERE Percentage < 1",
        )
        .unwrap();
        let hi = query(
            &db,
            "SELECT count(*) FROM CountryLanguage WHERE Percentage < 100",
        )
        .unwrap();
        assert!(lo.rows[0][0].as_i64().unwrap() > 0);
        assert!(hi.rows[0][0].as_i64().unwrap() > lo.rows[0][0].as_i64().unwrap());
    }
}
