//! TPC-H data generator (scaled).
//!
//! Implements the TPC-H schema — 8 relations, 61 attributes — with the
//! standard cardinality ratios and the value distributions the paper's query
//! subset {Q1, Q2, Q4, Q5, Q6, Q11, Q12, Q17} filters on (brands,
//! containers, regions, priorities, ship modes, date ranges, discounts).
//! `dbgen`'s exact text corpus is irrelevant to pricing, so comment columns
//! are short synthetic strings.
//!
//! The scale factor works as in the spec: `sf = 1.0` means 6M lineitem rows.
//! Experiments in this repository default to a reduced factor (the engine is
//! a single-node in-memory substrate); every harness takes `--sf`.

use crate::names::{pick, synth_name};
use qirana_sqlengine::value::days_from_civil;
use qirana_sqlengine::{ColumnDef, DataType, Database, Row, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 5 TPC-H regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// The 25 TPC-H nations with their region index.
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

const CONTAINER_S1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_S2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// Generates a TPC-H database at the given scale factor.
pub fn generate(sf: f64, seed: u64) -> Database {
    assert!(sf > 0.0, "scale factor must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();

    let n_supplier = ((10_000.0 * sf) as usize).max(10);
    let n_customer = ((150_000.0 * sf) as usize).max(30);
    let n_part = ((200_000.0 * sf) as usize).max(40);
    let n_orders = ((1_500_000.0 * sf) as usize).max(150);

    // ---- region ----
    let region_schema = TableSchema::new(
        "region",
        vec![
            ColumnDef::new("r_regionkey", DataType::Int),
            ColumnDef::new("r_name", DataType::Str),
            ColumnDef::new("r_comment", DataType::Str),
        ],
        &["r_regionkey"],
    );
    let region_rows: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int(i as i64),
                Value::str(name),
                Value::str(synth_name(&mut rng)),
            ]
        })
        .collect();
    db.add_table(region_schema, region_rows);

    // ---- nation ----
    let mut nation_schema = TableSchema::new(
        "nation",
        vec![
            ColumnDef::new("n_nationkey", DataType::Int),
            ColumnDef::new("n_name", DataType::Str),
            ColumnDef::new("n_regionkey", DataType::Int),
            ColumnDef::new("n_comment", DataType::Str),
        ],
        &["n_nationkey"],
    );
    #[allow(clippy::unwrap_used)] // parent table added above
    nation_schema.add_foreign_key(
        &["n_regionkey"],
        "region",
        &db.table("region").unwrap().schema, // qirana-lint::allow(QL007): parent table added above
        &["r_regionkey"],
    );
    let nation_rows: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            vec![
                Value::Int(i as i64),
                Value::str(name),
                Value::Int(*region as i64),
                Value::str(synth_name(&mut rng)),
            ]
        })
        .collect();
    db.add_table(nation_schema, nation_rows);

    // ---- supplier ----
    let mut supplier_schema = TableSchema::new(
        "supplier",
        vec![
            ColumnDef::new("s_suppkey", DataType::Int),
            ColumnDef::new("s_name", DataType::Str),
            ColumnDef::new("s_address", DataType::Str),
            ColumnDef::new("s_nationkey", DataType::Int),
            ColumnDef::new("s_phone", DataType::Str),
            ColumnDef::new("s_acctbal", DataType::Float),
            ColumnDef::new("s_comment", DataType::Str),
        ],
        &["s_suppkey"],
    );
    #[allow(clippy::unwrap_used)] // parent table added above
    supplier_schema.add_foreign_key(
        &["s_nationkey"],
        "nation",
        &db.table("nation").unwrap().schema, // qirana-lint::allow(QL007): parent table added above
        &["n_nationkey"],
    );
    let supplier_rows: Vec<Row> = (1..=n_supplier as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::str(format!("Supplier#{k:09}")),
                Value::str(synth_name(&mut rng)),
                Value::Int(rng.gen_range(0..25)),
                Value::str(phone(&mut rng)),
                Value::Float(money(&mut rng, -999.99, 9999.99)),
                Value::str(synth_name(&mut rng)),
            ]
        })
        .collect();
    db.add_table(supplier_schema, supplier_rows);

    // ---- customer ----
    let mut customer_schema = TableSchema::new(
        "customer",
        vec![
            ColumnDef::new("c_custkey", DataType::Int),
            ColumnDef::new("c_name", DataType::Str),
            ColumnDef::new("c_address", DataType::Str),
            ColumnDef::new("c_nationkey", DataType::Int),
            ColumnDef::new("c_phone", DataType::Str),
            ColumnDef::new("c_acctbal", DataType::Float),
            ColumnDef::new("c_mktsegment", DataType::Str),
            ColumnDef::new("c_comment", DataType::Str),
        ],
        &["c_custkey"],
    );
    #[allow(clippy::unwrap_used)] // parent table added above
    customer_schema.add_foreign_key(
        &["c_nationkey"],
        "nation",
        &db.table("nation").unwrap().schema, // qirana-lint::allow(QL007): parent table added above
        &["n_nationkey"],
    );
    let customer_rows: Vec<Row> = (1..=n_customer as i64)
        .map(|k| {
            vec![
                Value::Int(k),
                Value::str(format!("Customer#{k:09}")),
                Value::str(synth_name(&mut rng)),
                Value::Int(rng.gen_range(0..25)),
                Value::str(phone(&mut rng)),
                Value::Float(money(&mut rng, -999.99, 9999.99)),
                Value::str(pick(&mut rng, &SEGMENTS)),
                Value::str(synth_name(&mut rng)),
            ]
        })
        .collect();
    db.add_table(customer_schema, customer_rows);

    // ---- part ----
    let part_schema = TableSchema::new(
        "part",
        vec![
            ColumnDef::new("p_partkey", DataType::Int),
            ColumnDef::new("p_name", DataType::Str),
            ColumnDef::new("p_mfgr", DataType::Str),
            ColumnDef::new("p_brand", DataType::Str),
            ColumnDef::new("p_type", DataType::Str),
            ColumnDef::new("p_size", DataType::Int),
            ColumnDef::new("p_container", DataType::Str),
            ColumnDef::new("p_retailprice", DataType::Float),
            ColumnDef::new("p_comment", DataType::Str),
        ],
        &["p_partkey"],
    );
    let part_rows: Vec<Row> = (1..=n_part as i64)
        .map(|k| {
            let m = rng.gen_range(1..=5);
            let b = rng.gen_range(1..=5);
            vec![
                Value::Int(k),
                Value::str(synth_name(&mut rng)),
                Value::str(format!("Manufacturer#{m}")),
                Value::str(format!("Brand#{m}{b}")),
                Value::str(format!(
                    "{} {} {}",
                    pick(&mut rng, &TYPE_S1),
                    pick(&mut rng, &TYPE_S2),
                    pick(&mut rng, &TYPE_S3)
                )),
                Value::Int(rng.gen_range(1..=50)),
                Value::str(format!(
                    "{} {}",
                    pick(&mut rng, &CONTAINER_S1),
                    pick(&mut rng, &CONTAINER_S2)
                )),
                Value::Float(money(&mut rng, 900.0, 2000.0)),
                Value::str(synth_name(&mut rng)),
            ]
        })
        .collect();
    db.add_table(part_schema, part_rows);

    // ---- partsupp ----
    let mut ps_schema = TableSchema::new(
        "partsupp",
        vec![
            ColumnDef::new("ps_partkey", DataType::Int),
            ColumnDef::new("ps_suppkey", DataType::Int),
            ColumnDef::new("ps_availqty", DataType::Int),
            ColumnDef::new("ps_supplycost", DataType::Float),
            ColumnDef::new("ps_comment", DataType::Str),
        ],
        &["ps_partkey", "ps_suppkey"],
    );
    #[allow(clippy::unwrap_used)] // parent table added above
    ps_schema.add_foreign_key(
        &["ps_partkey"],
        "part",
        &db.table("part").unwrap().schema, // qirana-lint::allow(QL007): parent table added above
        &["p_partkey"],
    );
    #[allow(clippy::unwrap_used)] // parent table added above
    ps_schema.add_foreign_key(
        &["ps_suppkey"],
        "supplier",
        &db.table("supplier").unwrap().schema, // qirana-lint::allow(QL007): parent table added above
        &["s_suppkey"],
    );
    let mut ps_rows: Vec<Row> = Vec::with_capacity(n_part * 4);
    for pk in 1..=n_part as i64 {
        // 4 suppliers per part, distinct, as in dbgen.
        let mut used = std::collections::HashSet::new();
        for _ in 0..4 {
            let mut sk = rng.gen_range(1..=n_supplier as i64);
            while !used.insert(sk) {
                sk = rng.gen_range(1..=n_supplier as i64);
            }
            ps_rows.push(vec![
                Value::Int(pk),
                Value::Int(sk),
                Value::Int(rng.gen_range(1..=9999)),
                Value::Float(money(&mut rng, 1.0, 1000.0)),
                Value::str(synth_name(&mut rng)),
            ]);
        }
    }
    db.add_table(ps_schema, ps_rows);

    // ---- orders & lineitem ----
    let mut orders_schema = TableSchema::new(
        "orders",
        vec![
            ColumnDef::new("o_orderkey", DataType::Int),
            ColumnDef::new("o_custkey", DataType::Int),
            ColumnDef::new("o_orderstatus", DataType::Str),
            ColumnDef::new("o_totalprice", DataType::Float),
            ColumnDef::new("o_orderdate", DataType::Date),
            ColumnDef::new("o_orderpriority", DataType::Str),
            ColumnDef::new("o_clerk", DataType::Str),
            ColumnDef::new("o_shippriority", DataType::Int),
            ColumnDef::new("o_comment", DataType::Str),
        ],
        &["o_orderkey"],
    );
    #[allow(clippy::unwrap_used)] // parent table added above
    orders_schema.add_foreign_key(
        &["o_custkey"],
        "customer",
        &db.table("customer").unwrap().schema, // qirana-lint::allow(QL007): parent table added above
        &["c_custkey"],
    );
    let mut li_schema = TableSchema::new(
        "lineitem",
        vec![
            ColumnDef::new("l_orderkey", DataType::Int),
            ColumnDef::new("l_partkey", DataType::Int),
            ColumnDef::new("l_suppkey", DataType::Int),
            ColumnDef::new("l_linenumber", DataType::Int),
            ColumnDef::new("l_quantity", DataType::Int),
            ColumnDef::new("l_extendedprice", DataType::Float),
            ColumnDef::new("l_discount", DataType::Float),
            ColumnDef::new("l_tax", DataType::Float),
            ColumnDef::new("l_returnflag", DataType::Str),
            ColumnDef::new("l_linestatus", DataType::Str),
            ColumnDef::new("l_shipdate", DataType::Date),
            ColumnDef::new("l_commitdate", DataType::Date),
            ColumnDef::new("l_receiptdate", DataType::Date),
            ColumnDef::new("l_shipinstruct", DataType::Str),
            ColumnDef::new("l_shipmode", DataType::Str),
            ColumnDef::new("l_comment", DataType::Str),
        ],
        &["l_orderkey", "l_linenumber"],
    );
    li_schema.add_foreign_key(&["l_orderkey"], "orders", &orders_schema, &["o_orderkey"]);

    let start = days_from_civil(1992, 1, 1);
    let end = days_from_civil(1998, 8, 2);
    let mut orders_rows: Vec<Row> = Vec::with_capacity(n_orders);
    let mut li_rows: Vec<Row> = Vec::new();
    let current = days_from_civil(1995, 6, 17); // dbgen's CURRENTDATE
    for ok in 1..=n_orders as i64 {
        let odate = rng.gen_range(start..end);
        let nlines = rng.gen_range(1..=7usize);
        let mut total = 0.0;
        let mut any_open = false;
        for ln in 1..=nlines as i64 {
            let partkey = rng.gen_range(1..=n_part as i64);
            let suppkey = rng.gen_range(1..=n_supplier as i64);
            let qty = rng.gen_range(1..=50i64);
            // qirana-lint::allow(QL002): qty is drawn from 1..=50
            let price = money(&mut rng, 900.0, 2000.0) * qty as f64 / 100.0 * 100.0;
            // qirana-lint::allow(QL002): draw is bounded by 10
            let discount = rng.gen_range(0..=10) as f64 / 100.0;
            // qirana-lint::allow(QL002): draw is bounded by 8
            let tax = rng.gen_range(0..=8) as f64 / 100.0;
            let shipdate = odate + rng.gen_range(1..=121);
            let commitdate = odate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let (rf, ls) = if receiptdate <= current {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            if ls == "O" {
                any_open = true;
            }
            total += price * (1.0 - discount) * (1.0 + tax);
            li_rows.push(vec![
                Value::Int(ok),
                Value::Int(partkey),
                Value::Int(suppkey),
                Value::Int(ln),
                Value::Int(qty),
                Value::Float((price * 100.0).round() / 100.0),
                Value::Float(discount),
                Value::Float(tax),
                Value::str(rf),
                Value::str(ls),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::str(pick(&mut rng, &INSTRUCTIONS)),
                Value::str(pick(&mut rng, &SHIP_MODES)),
                Value::str(synth_name(&mut rng)),
            ]);
        }
        orders_rows.push(vec![
            Value::Int(ok),
            Value::Int(rng.gen_range(1..=n_customer as i64)),
            Value::str(if any_open { "O" } else { "F" }),
            Value::Float((total * 100.0).round() / 100.0),
            Value::Date(odate),
            Value::str(pick(&mut rng, &PRIORITIES)),
            Value::str(format!("Clerk#{:09}", rng.gen_range(1..=1000))),
            Value::Int(0),
            Value::str(synth_name(&mut rng)),
        ]);
    }
    db.add_table(orders_schema, orders_rows);
    db.add_table(li_schema, li_rows);

    db
}

fn phone(rng: &mut StdRng) -> String {
    format!(
        "{}-{}-{}-{}",
        rng.gen_range(10..35),
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    )
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    (rng.gen_range(lo..hi) * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::query;

    #[test]
    fn schema_has_61_attributes_and_8_relations() {
        let db = generate(0.001, 1);
        assert_eq!(db.num_tables(), 8);
        assert_eq!(db.total_attributes(), 61);
    }

    #[test]
    fn cardinality_ratios() {
        let db = generate(0.01, 2);
        assert_eq!(db.table("region").unwrap().len(), 5);
        assert_eq!(db.table("nation").unwrap().len(), 25);
        assert_eq!(db.table("supplier").unwrap().len(), 100);
        assert_eq!(db.table("customer").unwrap().len(), 1500);
        assert_eq!(db.table("part").unwrap().len(), 2000);
        assert_eq!(db.table("partsupp").unwrap().len(), 8000);
        assert_eq!(db.table("orders").unwrap().len(), 15000);
        let li = db.table("lineitem").unwrap().len();
        assert!((45_000..75_000).contains(&li), "lineitem ~4x orders: {li}");
    }

    #[test]
    fn q6_style_filter_nonempty() {
        let db = generate(0.005, 3);
        let out = query(
            &db,
            "select sum(l_extendedprice * l_discount) from lineitem where l_shipdate >= date '1994-01-01' and l_shipdate < date '1994-01-01' + interval '1' year and l_discount between 0.05 and 0.07 and l_quantity < 24",
        )
        .unwrap();
        assert!(out.rows[0][0].as_f64().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn q1_groups_by_flags() {
        let db = generate(0.002, 4);
        let out = query(
            &db,
            "select l_returnflag, l_linestatus, count(*) from lineitem group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus",
        )
        .unwrap();
        assert!(out.rows.len() >= 3, "R/F, A/F, N/O groups expected");
    }

    #[test]
    fn joins_link_up() {
        let db = generate(0.002, 5);
        let out = query(
            &db,
            "select count(*) from nation, region where n_regionkey = r_regionkey and r_name = 'AMERICA'",
        )
        .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(5));
        // Every lineitem joins to an order.
        let li = db.table("lineitem").unwrap().len() as i64;
        let joined = query(
            &db,
            "select count(*) from lineitem, orders where l_orderkey = o_orderkey",
        )
        .unwrap();
        assert_eq!(joined.rows[0][0], Value::Int(li));
    }

    #[test]
    fn partsupp_distinct_suppliers_per_part() {
        let db = generate(0.002, 6);
        let out = query(
            &db,
            "select ps_partkey, count(distinct ps_suppkey) as c from partsupp group by ps_partkey having c < 4",
        )
        .unwrap();
        assert!(out.rows.is_empty(), "each part has 4 distinct suppliers");
    }

    #[test]
    fn deterministic() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        assert_eq!(
            a.table("lineitem").unwrap().rows,
            b.table("lineitem").unwrap().rows
        );
    }
}
