//! The paper's query workloads, as SQL text.
//!
//! * §2.4 benchmark queries `Qσ_u`, `Qπ_u`, `Q⋈_u`, `Qγ_u` over `world`;
//! * Appendix B workloads: `Qw1..Qw34` (world), `Qd1..Qd7` (DBLP),
//!   `Qc1..Qc4` (US car crash);
//! * the 13 SSB queries (Figure 4e/4f, 5a) and the TPC-H subset
//!   {Q1, Q2, Q4, Q5, Q6, Q11, Q12, Q17} (Figure 5b);
//! * parameterized SSB Q1.1 instances (Figure 4g).

use crate::world::COUNTRY_ATTRS;
use rand::rngs::StdRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// §2.4 benchmark queries
// ---------------------------------------------------------------------------

/// `Qσ_u: SELECT * FROM Country WHERE ID < u` — selectivity sweep.
pub fn q_sigma(u: i64) -> String {
    format!("SELECT * FROM Country WHERE ID < {u}")
}

/// `Qπ_u: SELECT A1, ..., Au FROM Country` — projection-width sweep over the
/// 13 non-key attributes.
pub fn q_pi(u: usize) -> String {
    assert!((1..=COUNTRY_ATTRS.len()).contains(&u), "u must be 1..=13");
    format!("SELECT {} FROM Country", COUNTRY_ATTRS[..u].join(", "))
}

/// `Q⋈_u`: join of Country and CountryLanguage filtered on `Percentage < u`.
pub fn q_join(u: f64) -> String {
    format!(
        "SELECT * FROM Country C, CountryLanguage CL \
         WHERE C.Code = CL.CountryCode AND CL.Percentage < {u}"
    )
}

/// `Qγ_u`: grouped average with a LIMIT sweep.
pub fn q_gamma(u: usize) -> String {
    format!("SELECT Region, AVG(LifeExpectancy) FROM Country GROUP BY Region LIMIT {u}")
}

/// `Qr1` of §5.1 (swap-ratio experiment).
pub const QR1: &str = "SELECT AVG(Population) FROM Country";
/// `Qr2` of §5.1 (swap-ratio experiment).
pub const QR2: &str = "SELECT Name FROM Country WHERE Population > 2000000000";

// ---------------------------------------------------------------------------
// Appendix B: world workload Qw1..Qw34
// ---------------------------------------------------------------------------

/// The 34 world queries of Appendix B (Figure 7 of the paper).
pub const WORLD_QUERIES: [&str; 34] = [
    "select count(Name) from Country where Continent = 'Asia'",
    "select count(distinct Continent) from Country",
    "select avg(Population) from Country",
    "select max(Population) from Country",
    "select min(LifeExpectancy) from Country",
    "select count(Name) from Country where Name like 'A%'",
    "select Region, max(SurfaceArea) from Country group by Region",
    "select Continent, max(Population) from Country group by Continent",
    "select Continent, count(Code) from Country group by Continent",
    "select * from Country",
    "select Name from Country where Name like 'A%'",
    "select * from Country where Continent='Europe' and Population > 5000000",
    "select * from Country where Region='Caribbean'",
    "select Name from Country where Region='Caribbean'",
    "select Name from Country where Population between 10000000 and 20000000",
    "select * from Country where Continent='Europe' limit 2",
    "select Population from Country where Code = 'USA'",
    "select GovernmentForm from Country",
    "select distinct GovernmentForm from Country",
    "select * from City where Population >= 1000000 and CountryCode = 'USA'",
    "select distinct Language from CountryLanguage where CountryCode='USA'",
    "select * from CountryLanguage where IsOfficial = 'T'",
    "select Language, count(CountryCode) from CountryLanguage group by Language",
    "select count(Language) from CountryLanguage where CountryCode = 'USA'",
    "select CountryCode, sum(Population) from City group by CountryCode",
    "select CountryCode, count(ID) from City group by CountryCode",
    "select * from City where CountryCode = 'GRC'",
    "select distinct 1 from City where CountryCode = 'USA' and Population > 10000000",
    "select Name from Country, CountryLanguage where Code = CountryCode and Language = 'Greek'",
    "select C.Name from Country C, CountryLanguage L where C.Code = L.CountryCode and L.Language = 'English' and L.Percentage >= 50",
    "select T.District from Country C, City T where C.Code = 'USA' and C.Capital = T.ID",
    "select * from Country C, CountryLanguage L where C.Code = L.CountryCode and L.Language = 'Spanish'",
    "select Name, Language from Country, CountryLanguage where Code = CountryCode",
    "select * from Country, CountryLanguage where Code = CountryCode",
];

// ---------------------------------------------------------------------------
// Appendix B: DBLP workload Qd1..Qd7
// ---------------------------------------------------------------------------

/// The 7 DBLP queries of Appendix B (Figure 8). Node-id constants are scaled
/// into the generated graph's range by [`dblp_queries`].
pub fn dblp_queries(num_nodes: usize) -> Vec<String> {
    // The paper's constants (38868, 148255, 45479) lie inside the SNAP id
    // space; map them proportionally into ours.
    let scale = |paper_id: usize| -> usize { paper_id * num_nodes / crate::dblp::PAPER_NODES };
    let hub = scale(38_868).max(1);
    let a = scale(148_255).max(2);
    let b = scale(45_479).max(3);
    // Qd1's ">100 collaborators" threshold assumes the full 317k-node
    // graph; hub degrees shrink with the instance, so scale it down
    // (floored) to keep the query's selectivity comparable.
    let degree_threshold = (100 * num_nodes / crate::dblp::PAPER_NODES).max(10);
    vec![
        format!(
            "select FromNodeId, count(ToNodeId) from dblp group by FromNodeId having count(ToNodeId) > {degree_threshold}"
        ),
        "select avg(cnt) from (select FromNodeId, count(ToNodeId) as cnt from dblp group by FromNodeId) as rc"
            .to_string(),
        format!(
            "select count(*) from dblp A where FromNodeId > {}",
            num_nodes / 30
        ),
        format!(
            "select FromNodeId, count(*) from dblp A where A.FromNodeId in (select FromNodeId from dblp B where B.ToNodeId = {hub}) group by FromNodeId"
        ),
        format!(
            "select ToNodeId from dblp where (FromNodeId = {a} or FromNodeId = {b})"
        ),
        "select FromNodeId, count(*) as collab from dblp group by ToNodeId having collab = 1"
            .to_string(),
        format!(
            "select * from dblp A where A.FromNodeId = {hub} or A.ToNodeId = {hub}"
        ),
    ]
}

// ---------------------------------------------------------------------------
// Appendix B: US car crash workload Qc1..Qc4
// ---------------------------------------------------------------------------

/// The 4 car-crash queries of Appendix B (Figure 9).
pub const CARCRASH_QUERIES: [&str; 4] = [
    "select State, count(*) from crash group by State",
    "select count(*) from crash where State = 'Texas' and Gender = 'Male' and Alcohol_Results > 0.0",
    "select sum(Fatalities_in_crash) from crash where State = 'California' and Crash_Date >= date '2011-01-01' and Crash_Date < date '2011-01-01' + interval '6' month",
    "select count(Fatalities_in_crash) from crash where State = 'Wisconsin' and Injury_Severity = 'Fatal Injury (K)' and (Atmospheric_Condition = 'Snow')",
];

// ---------------------------------------------------------------------------
// SSB queries (13)
// ---------------------------------------------------------------------------

/// The 13 SSB queries: `("Q1.1", sql), ...` in flight order.
pub fn ssb_queries() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "Q1.1",
            "select sum(lo_extendedprice * lo_discount) as revenue from lineorder, dwdate \
             where lo_orderdate = d_datekey and d_year = 1993 \
             and lo_discount between 1 and 3 and lo_quantity < 25",
        ),
        (
            "Q1.2",
            "select sum(lo_extendedprice * lo_discount) as revenue from lineorder, dwdate \
             where lo_orderdate = d_datekey and d_yearmonthnum = 199401 \
             and lo_discount between 4 and 6 and lo_quantity between 26 and 35",
        ),
        (
            "Q1.3",
            "select sum(lo_extendedprice * lo_discount) as revenue from lineorder, dwdate \
             where lo_orderdate = d_datekey and d_weeknuminyear = 6 and d_year = 1994 \
             and lo_discount between 5 and 7 and lo_quantity between 26 and 35",
        ),
        (
            "Q2.1",
            "select sum(lo_revenue), d_year, p_brand1 from lineorder, dwdate, part, supplier \
             where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey \
             and p_category = 'MFGR#12' and s_region = 'AMERICA' \
             group by d_year, p_brand1 order by d_year, p_brand1",
        ),
        (
            "Q2.2",
            "select sum(lo_revenue), d_year, p_brand1 from lineorder, dwdate, part, supplier \
             where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey \
             and p_brand1 between 'MFGR#2221' and 'MFGR#2228' and s_region = 'ASIA' \
             group by d_year, p_brand1 order by d_year, p_brand1",
        ),
        (
            "Q2.3",
            "select sum(lo_revenue), d_year, p_brand1 from lineorder, dwdate, part, supplier \
             where lo_orderdate = d_datekey and lo_partkey = p_partkey and lo_suppkey = s_suppkey \
             and p_brand1 = 'MFGR#2221' and s_region = 'EUROPE' \
             group by d_year, p_brand1 order by d_year, p_brand1",
        ),
        (
            "Q3.1",
            "select c_nation, s_nation, d_year, sum(lo_revenue) as revenue \
             from customer, lineorder, supplier, dwdate \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey \
             and c_region = 'ASIA' and s_region = 'ASIA' and d_year >= 1992 and d_year <= 1997 \
             group by c_nation, s_nation, d_year order by d_year asc, revenue desc",
        ),
        (
            "Q3.2",
            "select c_city, s_city, d_year, sum(lo_revenue) as revenue \
             from customer, lineorder, supplier, dwdate \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey \
             and c_nation = 'UNITED STATES' and s_nation = 'UNITED STATES' \
             and d_year >= 1992 and d_year <= 1997 \
             group by c_city, s_city, d_year order by d_year asc, revenue desc",
        ),
        (
            "Q3.3",
            "select c_city, s_city, d_year, sum(lo_revenue) as revenue \
             from customer, lineorder, supplier, dwdate \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey \
             and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5') \
             and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5') \
             and d_year >= 1992 and d_year <= 1997 \
             group by c_city, s_city, d_year order by d_year asc, revenue desc",
        ),
        (
            "Q3.4",
            "select c_city, s_city, d_year, sum(lo_revenue) as revenue \
             from customer, lineorder, supplier, dwdate \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_orderdate = d_datekey \
             and (c_city = 'UNITED KI1' or c_city = 'UNITED KI5') \
             and (s_city = 'UNITED KI1' or s_city = 'UNITED KI5') \
             and d_yearmonth = 'Dec1997' \
             group by c_city, s_city, d_year order by d_year asc, revenue desc",
        ),
        (
            "Q4.1",
            "select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit \
             from dwdate, customer, supplier, part, lineorder \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey \
             and lo_orderdate = d_datekey and c_region = 'AMERICA' and s_region = 'AMERICA' \
             and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2') \
             group by d_year, c_nation order by d_year, c_nation",
        ),
        (
            "Q4.2",
            "select d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) as profit \
             from dwdate, customer, supplier, part, lineorder \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey \
             and lo_orderdate = d_datekey and c_region = 'AMERICA' and s_region = 'AMERICA' \
             and (d_year = 1997 or d_year = 1998) and (p_mfgr = 'MFGR#1' or p_mfgr = 'MFGR#2') \
             group by d_year, s_nation, p_category order by d_year, s_nation, p_category",
        ),
        (
            "Q4.3",
            "select d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) as profit \
             from dwdate, customer, supplier, part, lineorder \
             where lo_custkey = c_custkey and lo_suppkey = s_suppkey and lo_partkey = p_partkey \
             and lo_orderdate = d_datekey and s_nation = 'UNITED STATES' \
             and (d_year = 1997 or d_year = 1998) and p_category = 'MFGR#14' \
             group by d_year, s_city, p_brand1 order by d_year, s_city, p_brand1",
        ),
    ]
}

/// A random parameterization of SSB Q1.1 (year, discount window, quantity
/// cap), sampled uniformly from the attribute domains — Figure 4g.
pub fn ssb_q11_instance(rng: &mut StdRng) -> String {
    let year = rng.gen_range(1992..=1998);
    let dlo = rng.gen_range(0..=8i64);
    let dhi = dlo + 2;
    let qty = rng.gen_range(10..=45i64);
    format!(
        "select sum(lo_extendedprice * lo_discount) as revenue from lineorder, dwdate \
         where lo_orderdate = d_datekey and d_year = {year} \
         and lo_discount between {dlo} and {dhi} and lo_quantity < {qty}"
    )
}

// ---------------------------------------------------------------------------
// TPC-H subset {Q1, Q2, Q4, Q5, Q6, Q11, Q12, Q17}
// ---------------------------------------------------------------------------

/// The TPC-H queries of Figure 5b. `sf` parameterizes Q11's threshold
/// fraction, exactly as the spec requires (`0.0001 / SF`).
pub fn tpch_queries(sf: f64) -> Vec<(&'static str, String)> {
    let q11_fraction = 0.0001 / sf;
    vec![
        (
            "Q1",
            "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
             sum(l_extendedprice) as sum_base_price, \
             sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
             sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
             avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, \
             avg(l_discount) as avg_disc, count(*) as count_order \
             from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day \
             group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus"
                .to_string(),
        ),
        (
            "Q2",
            "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone \
             from part, supplier, partsupp, nation, region \
             where p_partkey = ps_partkey and s_suppkey = ps_suppkey and p_size = 15 \
             and p_type like '%BRASS' and s_nationkey = n_nationkey \
             and n_regionkey = r_regionkey and r_name = 'EUROPE' \
             and ps_supplycost = (select min(ps2.ps_supplycost) from partsupp ps2, supplier s2, nation n2, region r2 \
                                  where p_partkey = ps2.ps_partkey and s2.s_suppkey = ps2.ps_suppkey \
                                  and s2.s_nationkey = n2.n_nationkey and n2.n_regionkey = r2.r_regionkey \
                                  and r2.r_name = 'EUROPE') \
             order by s_acctbal desc, n_name, s_name, p_partkey limit 100"
                .to_string(),
        ),
        (
            "Q4",
            "select o_orderpriority, count(*) as order_count from orders \
             where o_orderdate >= date '1993-07-01' \
             and o_orderdate < date '1993-07-01' + interval '3' month \
             and exists (select 1 from lineitem where l_orderkey = o_orderkey \
                         and l_commitdate < l_receiptdate) \
             group by o_orderpriority order by o_orderpriority"
                .to_string(),
        ),
        (
            "Q5",
            "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
             from customer, orders, lineitem, supplier, nation, region \
             where c_custkey = o_custkey and l_orderkey = o_orderkey \
             and l_suppkey = s_suppkey and c_nationkey = s_nationkey \
             and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
             and r_name = 'ASIA' and o_orderdate >= date '1994-01-01' \
             and o_orderdate < date '1994-01-01' + interval '1' year \
             group by n_name order by revenue desc"
                .to_string(),
        ),
        (
            "Q6",
            "select sum(l_extendedprice * l_discount) as revenue from lineitem \
             where l_shipdate >= date '1994-01-01' \
             and l_shipdate < date '1994-01-01' + interval '1' year \
             and l_discount between 0.05 and 0.07 and l_quantity < 24"
                .to_string(),
        ),
        (
            "Q11",
            format!(
                "select ps_partkey, sum(ps_supplycost * ps_availqty) as value \
                 from partsupp, supplier, nation \
                 where ps_suppkey = s_suppkey and s_nationkey = n_nationkey \
                 and n_name = 'GERMANY' \
                 group by ps_partkey \
                 having sum(ps_supplycost * ps_availqty) > \
                   (select sum(ps2.ps_supplycost * ps2.ps_availqty) * {q11_fraction} \
                    from partsupp ps2, supplier s2, nation n2 \
                    where ps2.ps_suppkey = s2.s_suppkey and s2.s_nationkey = n2.n_nationkey \
                    and n2.n_name = 'GERMANY') \
                 order by value desc"
            ),
        ),
        (
            "Q12",
            "select l_shipmode, \
             sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH' \
                 then 1 else 0 end) as high_line_count, \
             sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' \
                 then 1 else 0 end) as low_line_count \
             from orders, lineitem where o_orderkey = l_orderkey \
             and l_shipmode in ('MAIL', 'SHIP') and l_commitdate < l_receiptdate \
             and l_shipdate < l_commitdate and l_receiptdate >= date '1994-01-01' \
             and l_receiptdate < date '1994-01-01' + interval '1' year \
             group by l_shipmode order by l_shipmode"
                .to_string(),
        ),
        (
            "Q17",
            "select sum(l_extendedprice) / 7.0 as avg_yearly from lineitem, part \
             where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX' \
             and l_quantity < (select 0.2 * avg(l2.l_quantity) from lineitem l2 \
                               where l2.l_partkey = p_partkey)"
                .to_string(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::query;
    use rand::SeedableRng;

    #[test]
    fn benchmark_query_builders() {
        assert!(q_sigma(100).contains("ID < 100"));
        assert!(q_pi(1).contains("Code"));
        assert!(!q_pi(1).contains("Name"));
        assert!(q_pi(13).contains("Capital"));
        assert!(q_join(0.5).contains("0.5"));
        assert!(q_gamma(7).contains("LIMIT 7"));
    }

    #[test]
    #[should_panic(expected = "u must be 1..=13")]
    fn q_pi_bounds_checked() {
        q_pi(14);
    }

    #[test]
    fn all_world_queries_execute() {
        let db = crate::world::generate(1);
        for (i, q) in WORLD_QUERIES.iter().enumerate() {
            query(&db, q).unwrap_or_else(|e| panic!("Qw{} failed: {e}\n{q}", i + 1));
        }
    }

    #[test]
    fn all_dblp_queries_execute() {
        let db = crate::dblp::generate(2000, 2);
        for (i, q) in dblp_queries(2000).iter().enumerate() {
            query(&db, q).unwrap_or_else(|e| panic!("Qd{} failed: {e}\n{q}", i + 1));
        }
    }

    #[test]
    fn all_carcrash_queries_execute() {
        let db = crate::carcrash::generate(2000, 3);
        for (i, q) in CARCRASH_QUERIES.iter().enumerate() {
            query(&db, q).unwrap_or_else(|e| panic!("Qc{} failed: {e}\n{q}", i + 1));
        }
    }

    #[test]
    fn all_ssb_queries_execute() {
        let db = crate::ssb::generate(0.002, 4);
        for (name, q) in ssb_queries() {
            query(&db, q).unwrap_or_else(|e| panic!("{name} failed: {e}\n{q}"));
        }
    }

    #[test]
    fn all_tpch_queries_execute() {
        let db = crate::tpch::generate(0.002, 5);
        for (name, q) in tpch_queries(0.002) {
            query(&db, &q).unwrap_or_else(|e| panic!("{name} failed: {e}\n{q}"));
        }
    }

    #[test]
    fn q11_threshold_scales_with_sf() {
        let q = tpch_queries(0.01);
        let q11 = &q.iter().find(|(n, _)| *n == "Q11").unwrap().1;
        assert!(q11.contains("0.01"), "0.0001/0.01 = 0.01: {q11}");
    }

    #[test]
    fn parameterized_q11_instances_vary_and_run() {
        let db = crate::ssb::generate(0.002, 6);
        let mut rng = StdRng::seed_from_u64(0);
        let a = ssb_q11_instance(&mut rng);
        let b = ssb_q11_instance(&mut rng);
        assert_ne!(a, b);
        query(&db, &a).unwrap();
        query(&db, &b).unwrap();
    }
}
