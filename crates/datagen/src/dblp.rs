//! Synthetic DBLP co-authorship graph.
//!
//! The paper uses the SNAP `com-DBLP` snapshot: 317 080 nodes and 1 049 866
//! directed edge tuples (each undirected collaboration stored in both
//! directions), schema `dblp(FromNodeId, ToNodeId)`. This generator
//! reproduces the two structural properties the paper's Table 3 prices rely
//! on:
//!
//! * the directed-edge-to-node ratio (~3.3), so the *publicly known* node
//!   and edge counts give the same "average degree" that makes `Qd2` free;
//! * a heavily skewed degree distribution where the majority of nodes have
//!   exactly one collaborator, which is why `Qd6` (authors with exactly one
//!   collaborator) prices at ~59% of the dataset.
//!
//! The relation carries a surrogate `id` primary key: QIRANA's support-set
//! updates never touch key columns, and with `(FromNodeId, ToNodeId)` as
//! the key the relation would have no neighbors at all — the paper's DBLP
//! prices (e.g. `Qd6` at $58.82) imply its prototype likewise identified
//! edge tuples independently of their endpoints.

use qirana_sqlengine::{ColumnDef, DataType, Database, Row, TableSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paper-scale node count.
pub const PAPER_NODES: usize = 317_080;

/// Generates a graph over `nodes` vertices. Deterministic for a fixed seed.
///
/// Roughly 60% of vertices are leaves with a single collaborator; the rest
/// form a preferentially-attached hub core. Each undirected edge is stored
/// in both directions, as in the SNAP export.
pub fn generate(nodes: usize, seed: u64) -> Database {
    assert!(nodes >= 10, "graph needs at least 10 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    // qirana-lint::allow(QL002): graph sizes are far below 2^53
    let num_hubs = (nodes as f64 * 0.4).ceil() as usize;
    let num_leaves = nodes - num_hubs;

    // Undirected edge set, deduplicated.
    let mut edges: std::collections::HashSet<(i64, i64)> = std::collections::HashSet::new();
    let add = |edges: &mut std::collections::HashSet<(i64, i64)>, a: usize, b: usize| {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b) as i64, a.max(b) as i64);
        edges.insert((a, b));
    };

    // Hubs are node ids [0, num_hubs); leaves [num_hubs, nodes).
    // Leaf attachment is skewed quadratically toward low-id hubs.
    for leaf in num_hubs..nodes {
        let r: f64 = rng.gen();
        // qirana-lint::allow(QL002): graph sizes are far below 2^53
        let hub = ((r * r) * num_hubs as f64) as usize;
        add(&mut edges, leaf, hub.min(num_hubs - 1));
    }
    // Hub core: ~1.05 edges per graph node among hubs.
    // qirana-lint::allow(QL002): graph sizes are far below 2^53
    let hub_edges = (nodes as f64 * 1.05) as usize;
    for _ in 0..hub_edges {
        let r1: f64 = rng.gen();
        // qirana-lint::allow(QL002): graph sizes are far below 2^53
        let a = ((r1 * r1) * num_hubs as f64) as usize;
        let b = rng.gen_range(0..num_hubs);
        add(&mut edges, a.min(num_hubs - 1), b);
    }
    let _ = num_leaves;

    // Materialize both directions, sorted for determinism.
    let mut sorted: Vec<(i64, i64)> = edges.into_iter().collect();
    sorted.sort_unstable();
    let mut rows: Vec<Row> = Vec::with_capacity(sorted.len() * 2);
    for (a, b) in sorted {
        let id = rows.len() as i64;
        rows.push(vec![Value::Int(id), Value::Int(a), Value::Int(b)]);
        rows.push(vec![Value::Int(id + 1), Value::Int(b), Value::Int(a)]);
    }

    let schema = TableSchema::new(
        "dblp",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("FromNodeId", DataType::Int),
            ColumnDef::new("ToNodeId", DataType::Int),
        ],
        &["id"],
    );
    let mut db = Database::new();
    db.add_table(schema, rows);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::query;

    #[test]
    fn edge_node_ratio_near_paper() {
        let db = generate(5000, 1);
        let edges = db.table("dblp").unwrap().len();
        let ratio = edges as f64 / 5000.0;
        assert!(
            (2.5..4.5).contains(&ratio),
            "directed edges per node ~3.3, got {ratio}"
        );
    }

    #[test]
    fn majority_have_one_collaborator() {
        let db = generate(4000, 2);
        let out = query(
            &db,
            "select count(*) from (select FromNodeId, count(*) as collab from dblp group by FromNodeId having collab = 1) as t",
        )
        .unwrap();
        let singles = out.rows[0][0].as_i64().unwrap() as f64;
        let nodes = query(&db, "select count(distinct FromNodeId) from dblp")
            .unwrap()
            .rows[0][0]
            .as_i64()
            .unwrap() as f64;
        let frac = singles / nodes;
        assert!(
            frac > 0.45,
            "majority of nodes should have exactly one collaborator; got {frac}"
        );
    }

    #[test]
    fn symmetric_edges() {
        let db = generate(500, 3);
        let out = query(
            &db,
            "select count(*) from dblp A where not exists (select 1 from dblp B where B.FromNodeId = A.ToNodeId and B.ToNodeId = A.FromNodeId)",
        )
        .unwrap();
        assert_eq!(out.rows[0][0], Value::Int(0), "every edge has its reverse");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let db = generate(500, 4);
        let t = db.table("dblp").unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &t.rows {
            assert_ne!(r[1], r[2], "self loop");
            assert!(seen.insert((r[1].clone(), r[2].clone())), "duplicate edge");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            generate(300, 9).table("dblp").unwrap().rows,
            generate(300, 9).table("dblp").unwrap().rows
        );
    }
}
