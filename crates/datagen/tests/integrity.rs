//! Every generated dataset must be a valid member of its own
//! possible-worlds set: unique non-null primary keys, resolvable foreign
//! keys, and in-domain values.

use qirana_sqlengine::check_database;

#[test]
fn world_is_constraint_valid() {
    let db = qirana_datagen::world::generate(5);
    let v = check_database(&db);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn carcrash_is_constraint_valid() {
    let db = qirana_datagen::carcrash::generate(5000, 5);
    let v = check_database(&db);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn dblp_is_constraint_valid() {
    let db = qirana_datagen::dblp::generate(3000, 5);
    let v = check_database(&db);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn tpch_is_constraint_valid() {
    let db = qirana_datagen::tpch::generate(0.005, 5);
    let v = check_database(&db);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn ssb_is_constraint_valid() {
    let db = qirana_datagen::ssb::generate(0.005, 5);
    let v = check_database(&db);
    assert!(v.is_empty(), "{v:?}");
}
