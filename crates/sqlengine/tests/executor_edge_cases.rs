//! Executor edge cases not covered by the module unit tests: deep
//! correlation, CASE forms, NULL propagation through predicates, and
//! multi-key ordering.

use qirana_sqlengine::{query, ColumnDef, DataType, Database, TableSchema, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("g", DataType::Str),
                ColumnDef::new("v", DataType::Int),
            ],
            &["id"],
        ),
        vec![
            vec![1.into(), "a".into(), 10.into()],
            vec![2.into(), "b".into(), 20.into()],
            vec![3.into(), "a".into(), 30.into()],
            vec![4.into(), "b".into(), Value::Null],
            vec![5.into(), "c".into(), 20.into()],
        ],
    );
    db.add_table(
        TableSchema::new(
            "U",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("x", DataType::Int),
            ],
            &["id"],
        ),
        vec![
            vec![1.into(), 1.into(), 7.into()],
            vec![2.into(), 1.into(), 8.into()],
            vec![3.into(), 3.into(), 9.into()],
        ],
    );
    db
}

#[test]
fn case_with_operand_form() {
    let db = db();
    let out = query(
        &db,
        "select id, case g when 'a' then 1 when 'b' then 2 else 0 end from T order by id",
    )
    .unwrap();
    let tags: Vec<i64> = out.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
    assert_eq!(tags, vec![1, 2, 1, 2, 0]);
}

#[test]
fn case_without_else_yields_null() {
    let db = db();
    let out = query(
        &db,
        "select case when v > 25 then 'big' end from T where id = 1",
    )
    .unwrap();
    assert_eq!(out.rows[0][0], Value::Null);
}

#[test]
fn null_never_satisfies_comparison_filters() {
    let db = db();
    // Row 4 has v = NULL: excluded from both sides of a threshold.
    let lo = query(&db, "select count(*) from T where v <= 20").unwrap();
    let hi = query(&db, "select count(*) from T where v > 20").unwrap();
    assert_eq!(lo.rows[0][0], Value::Int(3));
    assert_eq!(hi.rows[0][0], Value::Int(1));
}

#[test]
fn not_in_with_null_element_filters_everything() {
    let db = db();
    // v NOT IN (20, NULL) is never TRUE (it is FALSE or UNKNOWN).
    let out = query(&db, "select count(*) from T where v not in (20, null)").unwrap();
    assert_eq!(out.rows[0][0], Value::Int(0));
}

#[test]
fn is_null_and_is_not_null() {
    let db = db();
    let n = query(&db, "select count(*) from T where v is null").unwrap();
    let nn = query(&db, "select count(*) from T where v is not null").unwrap();
    assert_eq!(n.rows[0][0], Value::Int(1));
    assert_eq!(nn.rows[0][0], Value::Int(4));
}

#[test]
fn order_by_multiple_keys_mixed_direction() {
    let db = db();
    let out = query(&db, "select g, v from T order by g asc, v desc").unwrap();
    let got: Vec<(String, String)> = out
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect();
    assert_eq!(
        got,
        vec![
            ("a".into(), "30".into()),
            ("a".into(), "10".into()),
            ("b".into(), "20".into()),
            ("b".into(), "NULL".into()), // NULL sorts first asc → last desc
            ("c".into(), "20".into()),
        ]
    );
}

#[test]
fn two_levels_of_correlation() {
    let db = db();
    // For each T row, does a U row exist whose x exceeds every other U.x
    // for the same T row? Exercises OuterSlot depth 1.
    let out = query(
        &db,
        "select id from T where exists (select 1 from U a where a.tid = T.id and not exists \
         (select 1 from U b where b.tid = T.id and b.x > a.x)) order by id",
    )
    .unwrap();
    let ids: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(ids, vec![1, 3], "rows with any U attachment qualify");
}

#[test]
fn scalar_subquery_in_projection() {
    let db = db();
    let out = query(
        &db,
        "select id, (select count(*) from U where U.tid = T.id) from T order by id",
    )
    .unwrap();
    let counts: Vec<i64> = out.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
    assert_eq!(counts, vec![2, 0, 1, 0, 0]);
}

#[test]
fn having_on_average() {
    let db = db();
    let out = query(
        &db,
        "select g, avg(v) as m from T group by g having m >= 20 order by g",
    )
    .unwrap();
    // a: avg 20 ✓; b: avg 20 (null skipped) ✓; c: 20 ✓.
    assert_eq!(out.rows.len(), 3);
}

#[test]
fn group_by_expression_key() {
    let db = db();
    let out = query(
        &db,
        "select v % 20, count(*) from T where v is not null group by v % 20 order by v % 20",
    )
    .unwrap();
    assert_eq!(out.rows.len(), 2); // {0: 3 rows (20, 20, v? 10%20=10...)}
                                   // v values: 10, 20, 30, 20 → v%20: 10, 0, 10, 0.
    assert_eq!(out.rows[0], vec![Value::Int(0), Value::Int(2)]);
    assert_eq!(out.rows[1], vec![Value::Int(10), Value::Int(2)]);
}

#[test]
fn arithmetic_in_projection_and_filter() {
    let db = db();
    let out = query(
        &db,
        "select id, v * 2 + 1 from T where (v + 10) % 3 = 0 order by id",
    )
    .unwrap();
    // v ∈ {20, 20}: (30) % 3 == 0 ✓; v=10 → 20%3=2 ✗; v=30 → 40%3=1 ✗.
    assert_eq!(out.rows.len(), 2);
    assert_eq!(out.rows[0][1], Value::Int(41));
}

#[test]
fn empty_relation_behaviors() {
    let mut db = db();
    db.add_table(
        TableSchema::new(
            "E",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            &["id"],
        ),
        vec![],
    );
    assert_eq!(
        query(&db, "select count(*), sum(v) from E").unwrap().rows,
        vec![vec![Value::Int(0), Value::Null]]
    );
    assert!(query(&db, "select * from E").unwrap().rows.is_empty());
    assert!(query(&db, "select * from T, E").unwrap().rows.is_empty());
    assert_eq!(
        query(&db, "select g, count(*) from E, T group by g")
            .unwrap()
            .rows
            .len(),
        0,
        "grouped query over empty join has no groups"
    );
}

#[test]
fn cross_join_with_residual_inequality() {
    let db = db();
    let out = query(
        &db,
        "select T.id, U.id from T, U where T.v > U.x and T.v < 25",
    )
    .unwrap();
    // T rows with 20 (ids 2, 5) paired with U.x in {7,8,9} → 6 pairs; T.v=10 beats 7,8,9? 10>7,8,9 ✓ id1 adds 3.
    assert_eq!(out.rows.len(), 9);
}

#[test]
fn distinct_on_expressions() {
    let db = db();
    let out = query(&db, "select distinct v % 20 from T where v is not null").unwrap();
    assert_eq!(out.rows.len(), 2);
}

#[test]
fn like_against_non_string_column_uses_display_form() {
    let db = db();
    let out = query(&db, "select count(*) from T where v like '2%'").unwrap();
    assert_eq!(out.rows[0][0], Value::Int(2));
}
