//! Property-based tests of the engine's core invariants.

use proptest::prelude::*;
use qirana_sqlengine::expr::like_match;
use qirana_sqlengine::update::{apply_writes, CellWrite};
use qirana_sqlengine::value::{add_months, civil_from_days, days_from_civil};
use qirana_sqlengine::{
    execute, fingerprint, parse_select, plan_select, query, ColumnDef, DataType, Database,
    ExecContext, QueryOutput, TableSchema, Value,
};

// ---------------------------------------------------------------------------
// Value ordering
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        (-100_000i32..100_000).prop_map(Value::Date),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
    ]
}

proptest! {
    #[test]
    fn value_order_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity via sort stability on a 3-element slice.
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v[0].total_cmp(&v[1]) != Ordering::Greater);
        prop_assert!(v[1].total_cmp(&v[2]) != Ordering::Greater);
        // Eq agrees with cmp.
        prop_assert_eq!(a == b, a.total_cmp(&b) == Ordering::Equal);
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        // Int/Float numeric equality must be hash-compatible — but only
        // when the cast is lossless: an integer beyond 2^53 generally has
        // no equal float, and must NOT share a hash with the float its
        // cast rounds to (that lossy collision was an underpricing bug).
        if let Value::Int(i) = a {
            let f = Value::Float(i as f64);
            if Value::Int(i) == f {
                prop_assert_eq!(h(&Value::Int(i)), h(&f));
            }
        }
        prop_assert_eq!(h(&a), h(&a.clone()));
    }

    #[test]
    fn date_roundtrip(days in -200_000i32..200_000) {
        let (y, m, d) = civil_from_days(days);
        prop_assert_eq!(days_from_civil(y, m, d), days);
    }

    #[test]
    fn add_months_inverts(days in -100_000i32..100_000, months in -240i32..240) {
        // Adding then subtracting months lands within clamp distance
        // (day-of-month clamping can lose at most 3 days).
        let there = add_months(days, months);
        let back = add_months(there, -months);
        prop_assert!((days - back).abs() <= 3, "days={days} back={back}");
    }
}

// ---------------------------------------------------------------------------
// LIKE matcher vs. a naive reference
// ---------------------------------------------------------------------------

fn like_reference(pattern: &[char], s: &[char]) -> bool {
    match (pattern.first(), s.first()) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some('%'), _) => {
            like_reference(&pattern[1..], s) || (!s.is_empty() && like_reference(pattern, &s[1..]))
        }
        (Some('_'), Some(_)) => like_reference(&pattern[1..], &s[1..]),
        (Some(p), Some(c)) => *p == *c && like_reference(&pattern[1..], &s[1..]),
        (Some(_), None) => false,
    }
}

proptest! {
    #[test]
    fn like_matches_reference(pattern in "[ab%_]{0,8}", s in "[ab]{0,10}") {
        let p: Vec<char> = pattern.chars().collect();
        let t: Vec<char> = s.chars().collect();
        prop_assert_eq!(like_match(&pattern, &s), like_reference(&p, &t));
    }
}

// ---------------------------------------------------------------------------
// Update / undo
// ---------------------------------------------------------------------------

fn small_db(rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
                ColumnDef::new("w", DataType::Int),
            ],
            &["id"],
        ),
        rows.iter()
            .enumerate()
            .map(|(i, (v, w))| vec![Value::Int(i as i64), Value::Int(*v), Value::Int(*w)])
            .collect::<Vec<_>>(),
    );
    db
}

proptest! {
    #[test]
    fn write_batches_always_undo(
        rows in prop::collection::vec((0i64..50, 0i64..50), 1..8),
        writes in prop::collection::vec((0usize..8, 1usize..3, 0i64..99), 0..12),
    ) {
        let mut db = small_db(&rows);
        let before = db.table("T").unwrap().rows.clone();
        let writes: Vec<CellWrite> = writes
            .into_iter()
            .map(|(r, c, v)| CellWrite {
                table: 0,
                row: r % rows.len(),
                col: c,
                value: Value::Int(v),
            })
            .collect();
        let undo = apply_writes(&mut db, &writes);
        apply_writes(&mut db, &undo);
        prop_assert_eq!(&db.table("T").unwrap().rows, &before);
    }

    #[test]
    fn fingerprint_invariant_under_row_permutation(
        rows in prop::collection::vec((0i64..50, 0i64..50), 1..8),
        rotate_by in 0usize..8,
    ) {
        let out = QueryOutput {
            columns: vec!["v".into(), "w".into()],
            rows: rows
                .iter()
                .map(|(v, w)| vec![Value::Int(*v), Value::Int(*w)])
                .collect(),
            ordered: false,
        };
        let mut rotated = out.clone();
        rotated.rows.rotate_left(rotate_by % rows.len());
        prop_assert_eq!(fingerprint(&out), fingerprint(&rotated));
    }
}

// ---------------------------------------------------------------------------
// Executor invariants on random data
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn where_filter_is_subset_and_partition(
        rows in prop::collection::vec((0i64..50, 0i64..50), 0..16),
        threshold in 0i64..50,
    ) {
        let db = small_db(&rows);
        let all = query(&db, "select * from T").unwrap().rows.len();
        let lo = query(&db, &format!("select * from T where v < {threshold}"))
            .unwrap()
            .rows
            .len();
        let hi = query(&db, &format!("select * from T where v >= {threshold}"))
            .unwrap()
            .rows
            .len();
        prop_assert_eq!(lo + hi, all, "WHERE must partition the bag");
    }

    #[test]
    fn table_override_is_equivalent_to_replacement(
        rows in prop::collection::vec((0i64..20, 0i64..20), 1..8),
        alt in prop::collection::vec((0i64..20, 0i64..20), 1..8),
    ) {
        // Running a plan with an override must equal running it on a
        // database that actually contains the override rows.
        let db = small_db(&rows);
        let plan = plan_select(
            &parse_select("select v, w from T where v >= w").unwrap(),
            &db,
        )
        .unwrap();
        let alt_rows: Vec<Vec<Value>> = alt
            .iter()
            .enumerate()
            .map(|(i, (v, w))| vec![Value::Int(100 + i as i64), Value::Int(*v), Value::Int(*w)])
            .collect();
        let via_override = execute(&plan, &ExecContext::with_override(&db, 0, &alt_rows)).unwrap();
        let mut db2 = small_db(&[]);
        db2.table_mut("T").unwrap().extend(alt_rows.clone());
        let direct = execute(&plan, &ExecContext::new(&db2)).unwrap();
        prop_assert_eq!(fingerprint(&via_override), fingerprint(&direct));
    }

    #[test]
    fn parser_never_panics(input in ".{0,60}") {
        // Errors are fine; panics are not.
        let _ = qirana_sqlengine::parse_statement(&input);
    }
}

// ---------------------------------------------------------------------------
// Grouped aggregation vs. a hand-rolled reference model
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn grouped_aggregates_match_reference(
        rows in prop::collection::vec((0i64..4, prop::option::of(-20i64..20)), 0..24),
    ) {
        use std::collections::BTreeMap;
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("grp", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            rows.iter()
                .enumerate()
                .map(|(i, (g, v))| {
                    vec![
                        Value::Int(i as i64),
                        Value::Int(*g),
                        v.map(Value::Int).unwrap_or(Value::Null),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let out = query(
            &db,
            "select grp, count(*), count(v), sum(v), min(v), max(v), avg(v) \
             from T group by grp order by grp",
        )
        .unwrap();

        // Reference model.
        let mut groups: BTreeMap<i64, Vec<Option<i64>>> = BTreeMap::new();
        for (g, v) in &rows {
            groups.entry(*g).or_default().push(*v);
        }
        prop_assert_eq!(out.rows.len(), groups.len());
        for (row, (g, vals)) in out.rows.iter().zip(&groups) {
            prop_assert_eq!(&row[0], &Value::Int(*g));
            prop_assert_eq!(&row[1], &Value::Int(vals.len() as i64));
            let nonnull: Vec<i64> = vals.iter().flatten().copied().collect();
            prop_assert_eq!(&row[2], &Value::Int(nonnull.len() as i64));
            if nonnull.is_empty() {
                for cell in &row[3..=6] {
                    prop_assert_eq!(cell, &Value::Null);
                }
            } else {
                prop_assert_eq!(&row[3], &Value::Int(nonnull.iter().sum()));
                prop_assert_eq!(&row[4], &Value::Int(*nonnull.iter().min().unwrap()));
                prop_assert_eq!(&row[5], &Value::Int(*nonnull.iter().max().unwrap()));
                let avg = nonnull.iter().sum::<i64>() as f64 / nonnull.len() as f64;
                prop_assert_eq!(&row[6], &Value::Float(avg));
            }
        }
    }

    #[test]
    fn join_matches_nested_loop_reference(
        left in prop::collection::vec((0i64..5, 0i64..10), 0..10),
        right in prop::collection::vec((0i64..5, 0i64..10), 0..10),
    ) {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "L",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("a", DataType::Int),
                ],
                &["id"],
            ),
            left.iter()
                .enumerate()
                .map(|(i, (k, a))| vec![Value::Int(i as i64), Value::Int(*k), Value::Int(*a)])
                .collect::<Vec<_>>(),
        );
        db.add_table(
            TableSchema::new(
                "R",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("k", DataType::Int),
                    ColumnDef::new("b", DataType::Int),
                ],
                &["id"],
            ),
            right
                .iter()
                .enumerate()
                .map(|(i, (k, b))| vec![Value::Int(i as i64), Value::Int(*k), Value::Int(*b)])
                .collect::<Vec<_>>(),
        );
        let out = query(&db, "select a, b from L, R where L.k = R.k and a < b").unwrap();
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for (lk, a) in &left {
            for (rk, b) in &right {
                if lk == rk && a < b {
                    expect.push((*a, *b));
                }
            }
        }
        let mut got: Vec<(i64, i64)> = out
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
