//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::error::{EngineError, Result};
use crate::lexer::{tokenize, Spanned, Sym, Token};
use crate::value::{days_from_civil, Value};

/// Parses a single SQL statement (trailing semicolon allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        pending_tables: Vec::new(),
    };
    let stmt = if p.peek_kw("select") {
        Statement::Select(p.parse_select()?)
    } else if p.peek_kw("update") {
        Statement::Update(p.parse_update()?)
    } else {
        return Err(p.err("expected SELECT or UPDATE"));
    };
    p.eat_sym(Sym::Semicolon);
    if !p.at_end() {
        return Err(p.err("trailing tokens after statement"));
    }
    Ok(stmt)
}

/// Parses a SQL `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    match parse_statement(sql)? {
        Statement::Select(s) => Ok(s),
        Statement::Update(_) => Err(EngineError::plan("expected a SELECT statement")),
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Extra relations produced by desugaring explicit `JOIN ... ON` chains;
    /// drained into the enclosing FROM list after each from-item.
    pending_tables: Vec<TableRef>,
}

/// Words that terminate an expression / cannot start a table alias.
const RESERVED_AFTER_ITEM: &[&str] = &[
    "from", "where", "group", "having", "order", "limit", "and", "or", "not", "on", "join",
    "inner", "left", "right", "as", "asc", "desc", "when", "then", "else", "end", "between",
    "like", "in", "is", "set", "union", "by", "outer", "exists", "null",
];

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.offset + 1).unwrap_or(0))
    }

    fn err(&self, msg: &str) -> EngineError {
        EngineError::parse(
            self.offset(),
            format!(
                "{msg} (found {:?})",
                self.peek().cloned().unwrap_or(Token::Ident("<eof>".into()))
            ),
        )
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// True if the next token is the given keyword (case-insensitive).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(&format!("expected keyword {}", kw.to_uppercase())))
        }
    }

    fn peek_sym(&self, sym: Sym) -> bool {
        matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym)
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.peek_sym(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {sym:?}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Ident(_)) => match self.advance() {
                Some(Token::Ident(s)) => Ok(s),
                // qirana-lint::allow(QL003, QL007): peek() just saw this token
                _ => unreachable!(),
            },
            _ => Err(self.err("expected identifier")),
        }
    }

    fn expect_string(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token::Str(_)) => match self.advance() {
                Some(Token::Str(s)) => Ok(s),
                // qirana-lint::allow(QL003, QL007): peek() just saw this token
                _ => unreachable!(),
            },
            _ => Err(self.err("expected string literal")),
        }
    }

    // ----- statements -----

    fn parse_select(&mut self) -> Result<SelectStmt> {
        // Shield the join-desugaring buffer of any enclosing SELECT: every
        // nested parse (derived tables, IN/EXISTS/scalar subqueries — even
        // ones appearing inside an ON condition mid-join-chain) starts with
        // an empty buffer and restores the outer one on exit.
        let saved = std::mem::take(&mut self.pending_tables);
        let result = self.parse_select_inner();
        self.pending_tables = saved;
        result
    }

    fn parse_select_inner(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projection = vec![self.parse_select_item()?];
        while self.eat_sym(Sym::Comma) {
            projection.push(self.parse_select_item()?);
        }

        let mut from = Vec::new();
        let mut join_conds: Option<Expr> = None;
        if self.eat_kw("from") {
            loop {
                let (table, cond) = self.parse_from_item()?;
                from.push(table);
                self.drain_pending(&mut from);
                if let Some(c) = cond {
                    join_conds = Some(match join_conds.take() {
                        Some(acc) => acc.and(c),
                        None => c,
                    });
                }
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }

        let mut where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        // Fold ON conditions from desugared explicit joins into WHERE.
        if let Some(jc) = join_conds {
            where_clause = Some(match where_clause.take() {
                Some(w) => jc.and(w),
                None => jc,
            });
        }

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.parse_expr()?);
            while self.eat_sym(Sym::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }

        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderKey { expr, asc });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Some(Token::Number(n)) => Some(
                    n.parse::<u64>()
                        .map_err(|_| self.err("LIMIT requires a non-negative integer"))?,
                ),
                _ => return Err(self.err("LIMIT requires a number")),
            }
        } else {
            None
        };

        Ok(SelectStmt {
            distinct,
            projection,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let Some(Token::Ident(name)) = self.peek() {
            let name = name.clone();
            if matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.token),
                Some(Token::Symbol(Sym::Dot))
            ) && matches!(
                self.tokens.get(self.pos + 2).map(|s| &s.token),
                Some(Token::Symbol(Sym::Star))
            ) {
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// Parses an optional `[AS] alias`.
    fn parse_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.expect_ident()?));
        }
        if let Some(Token::Ident(s)) = self.peek() {
            if !RESERVED_AFTER_ITEM
                .iter()
                .any(|r| s.eq_ignore_ascii_case(r))
            {
                return Ok(Some(self.expect_ident()?));
            }
        }
        Ok(None)
    }

    /// Parses one FROM entry, desugaring any trailing `JOIN ... ON ...`
    /// chains into additional relations plus a conjunction of ON predicates.
    fn parse_from_item(&mut self) -> Result<(TableRef, Option<Expr>)> {
        let first = self.parse_table_ref()?;
        let mut cond: Option<Expr> = None;
        while self.peek_kw("join") || self.peek_kw("inner") {
            self.eat_kw("inner");
            self.expect_kw("join")?;
            let t = self.parse_table_ref()?;
            self.pending_tables.push(t);
            self.expect_kw("on")?;
            let c = self.parse_expr()?;
            cond = Some(match cond.take() {
                Some(acc) => acc.and(c),
                None => c,
            });
        }
        Ok((first, cond))
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        if self.eat_sym(Sym::LParen) {
            let query = self.parse_select()?;
            self.expect_sym(Sym::RParen)?;
            self.eat_kw("as");
            let alias = self.expect_ident()?;
            return Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.expect_ident()?;
        let alias = self.parse_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    fn parse_update(&mut self) -> Result<UpdateStmt> {
        self.expect_kw("update")?;
        let table = self.expect_ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_sym(Sym::Eq)?;
            let e = self.parse_expr()?;
            assignments.push((col, e));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(UpdateStmt {
            table,
            assignments,
            where_clause,
        })
    }

    // ----- expressions (precedence climbing) -----

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let e = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // Postfix predicate forms: IS [NOT] NULL, [NOT] BETWEEN/IN/LIKE.
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_kw("not");
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.expect_string()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_sym(Sym::LParen)?;
            if self.peek_kw("select") {
                let sub = self.parse_select()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(sub),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat_sym(Sym::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.err("expected BETWEEN, LIKE, or IN after NOT"));
        }

        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinaryOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinaryOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinaryOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinaryOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinaryOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = if self.eat_sym(Sym::Plus) {
                BinaryOp::Add
            } else if self.eat_sym(Sym::Minus) {
                BinaryOp::Sub
            } else {
                break;
            };
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = if self.eat_sym(Sym::Star) {
                BinaryOp::Mul
            } else if self.eat_sym(Sym::Slash) {
                BinaryOp::Div
            } else if self.eat_sym(Sym::Percent) {
                BinaryOp::Mod
            } else {
                break;
            };
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Sym::Minus) {
            let e = self.parse_unary()?;
            // Fold negative literals for cleaner ASTs.
            if let Expr::Literal(Value::Int(i)) = e {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            if let Expr::Literal(Value::Float(f)) = e {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            });
        }
        self.eat_sym(Sym::Plus);
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let f = n
                        .parse::<f64>()
                        .map_err(|_| self.err("invalid float literal"))?;
                    Ok(Expr::Literal(Value::Float(f)))
                } else {
                    let i = n
                        .parse::<i64>()
                        .map_err(|_| self.err("invalid integer literal"))?;
                    Ok(Expr::Literal(Value::Int(i)))
                }
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::str(s)))
            }
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                if self.peek_kw("select") {
                    let sub = self.parse_select()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let e = self.parse_expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) => self.parse_ident_expr(word),
            _ => Err(self.err("expected expression")),
        }
    }

    fn parse_ident_expr(&mut self, word: String) -> Result<Expr> {
        let lower = word.to_ascii_lowercase();
        match lower.as_str() {
            "null" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Null));
            }
            "true" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Bool(true)));
            }
            "false" => {
                self.pos += 1;
                return Ok(Expr::Literal(Value::Bool(false)));
            }
            "exists" => {
                self.pos += 1;
                self.expect_sym(Sym::LParen)?;
                let sub = self.parse_select()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::Exists {
                    subquery: Box::new(sub),
                    negated: false,
                });
            }
            "case" => {
                self.pos += 1;
                return self.parse_case();
            }
            "date" => {
                // `DATE '2011-01-01'` — only when followed by a string.
                if let Some(Token::Str(_)) = self.tokens.get(self.pos + 1).map(|s| &s.token) {
                    self.pos += 1;
                    let s = self.expect_string()?;
                    let d =
                        parse_date_literal(&s).ok_or_else(|| self.err("invalid DATE literal"))?;
                    return Ok(Expr::Literal(Value::Date(d)));
                }
            }
            "interval" => {
                // `INTERVAL '6' MONTH`
                if let Some(Token::Str(_)) = self.tokens.get(self.pos + 1).map(|s| &s.token) {
                    self.pos += 1;
                    let n: i64 = self
                        .expect_string()?
                        .trim()
                        .parse()
                        .map_err(|_| self.err("invalid INTERVAL quantity"))?;
                    let unit = self.expect_ident()?.to_ascii_lowercase();
                    let (months, days) = match unit.trim_end_matches('s') {
                        "year" => (n * 12, 0),
                        "month" => (n, 0),
                        "day" => (0, n),
                        _ => return Err(self.err("unsupported INTERVAL unit")),
                    };
                    return Ok(Expr::Interval { months, days });
                }
            }
            _ => {}
        }

        // Aggregate call?
        if let Some(func) = AggFunc::from_name(&word) {
            if matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.token),
                Some(Token::Symbol(Sym::LParen))
            ) {
                self.pos += 2; // name + lparen
                if self.eat_sym(Sym::Star) {
                    self.expect_sym(Sym::RParen)?;
                    if func != AggFunc::Count {
                        return Err(self.err("only COUNT accepts *"));
                    }
                    return Ok(Expr::Agg {
                        func,
                        arg: None,
                        distinct: false,
                    });
                }
                let distinct = self.eat_kw("distinct");
                let arg = self.parse_expr()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::Agg {
                    func,
                    arg: Some(Box::new(arg)),
                    distinct,
                });
            }
        }

        // Column reference, possibly qualified.
        self.pos += 1;
        if self.eat_sym(Sym::Dot) {
            let col = self.expect_ident()?;
            return Ok(Expr::Column {
                table: Some(word),
                column: col,
            });
        }
        Ok(Expr::Column {
            table: None,
            column: word,
        })
    }

    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if self.peek_kw("when") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let w = self.parse_expr()?;
            self.expect_kw("then")?;
            let t = self.parse_expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

/// Parses `YYYY-MM-DD` into days-since-epoch.
fn parse_date_literal(s: &str) -> Option<i32> {
    let mut it = s.trim().split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

impl Parser {
    /// Moves relations produced by JOIN desugaring into the FROM list.
    fn drain_pending(&mut self, from: &mut Vec<TableRef>) {
        from.append(&mut self.pending_tables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        parse_select(sql).unwrap()
    }

    #[test]
    fn simple_select_star() {
        let s = sel("SELECT * FROM Country");
        assert_eq!(s.projection, vec![SelectItem::Wildcard]);
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn aliases_and_qualified_columns() {
        let s =
            sel("select C.Name from Country C, CountryLanguage CL where C.Code = CL.CountryCode");
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[0].binding_name(), "C");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = sel("select Region, AVG(LifeExpectancy) from Country group by Region limit 5");
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.limit, Some(5));
        match &s.projection[1] {
            SelectItem::Expr {
                expr: Expr::Agg { func, .. },
                ..
            } => {
                assert_eq!(*func, AggFunc::Avg)
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn count_star_and_distinct() {
        let s = sel("select count(*), count(distinct Continent) from Country");
        match &s.projection[0] {
            SelectItem::Expr {
                expr: Expr::Agg { arg, .. },
                ..
            } => assert!(arg.is_none()),
            _ => panic!(),
        }
        match &s.projection[1] {
            SelectItem::Expr {
                expr: Expr::Agg { distinct, .. },
                ..
            } => assert!(distinct),
            _ => panic!(),
        }
    }

    #[test]
    fn having_and_alias() {
        let s = sel(
            "select FromNodeId, count(*) as collab from dblp group by ToNodeId having collab = 1",
        );
        assert!(s.having.is_some());
        match &s.projection[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("collab")),
            _ => panic!(),
        }
    }

    #[test]
    fn between_like_in() {
        let s = sel("select Name from Country where Population between 1 and 2 and Name like 'A%' and Code in ('USA','GRC')");
        let w = s.where_clause.unwrap();
        let txt = format!("{w:?}");
        assert!(txt.contains("Between"));
        assert!(txt.contains("Like"));
        assert!(txt.contains("InList"));
    }

    #[test]
    fn in_subquery() {
        let s = sel(
            "select FromNodeId from dblp A where A.FromNodeId in (select FromNodeId from dblp B where B.ToNodeId = 38868)",
        );
        assert!(matches!(s.where_clause.unwrap(), Expr::InSubquery { .. }));
    }

    #[test]
    fn derived_table() {
        let s = sel(
            "select avg(cnt) from (select FromNodeId, count(ToNodeId) as cnt from dblp group by FromNodeId) as rc",
        );
        assert!(matches!(s.from[0], TableRef::Derived { .. }));
    }

    #[test]
    fn date_and_interval() {
        let s = sel(
            "select count(*) from crash where Crash_Date >= date '2011-01-01' and Crash_Date < date '2011-01-01' + interval '6' month",
        );
        let txt = format!("{:?}", s.where_clause.unwrap());
        assert!(txt.contains("Date"));
        assert!(txt.contains("Interval"));
    }

    #[test]
    fn explicit_join_desugars() {
        let s = sel("select * from A join B on A.x = B.y where A.z > 1");
        assert_eq!(s.from.len(), 2);
        // ON condition folded into WHERE as a conjunction.
        let txt = format!("{:?}", s.where_clause.unwrap());
        assert!(txt.contains("And"));
    }

    #[test]
    fn case_expression() {
        let s = sel("select sum(case when a = 1 then b else 0 end) from t");
        let txt = format!("{:?}", s.projection[0]);
        assert!(txt.contains("Case"));
    }

    #[test]
    fn exists_subquery() {
        let s = sel("select * from A where exists (select 1 from B where B.x = A.x)");
        assert!(matches!(s.where_clause.unwrap(), Expr::Exists { .. }));
    }

    #[test]
    fn update_statement() {
        let u = parse_statement("UPDATE User SET gender = 'f' WHERE uid = 1").unwrap();
        match u {
            Statement::Update(u) => {
                assert_eq!(u.table, "User");
                assert_eq!(u.assignments.len(), 1);
                assert!(u.where_clause.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn order_by_directions() {
        let s = sel("select a from t order by a desc, b asc, c");
        assert_eq!(
            s.order_by.iter().map(|k| k.asc).collect::<Vec<_>>(),
            vec![false, true, true]
        );
    }

    #[test]
    fn negative_numbers_folded() {
        let s = sel("select -5, -2.5 from t");
        assert!(matches!(
            s.projection[0],
            SelectItem::Expr {
                expr: Expr::Literal(Value::Int(-5)),
                ..
            }
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_select("select 1 from t blah blah").is_err());
        assert!(parse_select("select 1 from t; select 2").is_err());
    }

    #[test]
    fn qualified_wildcard() {
        let s = sel("select C.* from Country C");
        assert_eq!(
            s.projection,
            vec![SelectItem::QualifiedWildcard("C".into())]
        );
    }

    #[test]
    fn semicolon_tolerated() {
        assert!(parse_select("select 1 from t;").is_ok());
    }
}
