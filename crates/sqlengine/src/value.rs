//! Runtime values.
//!
//! [`Value`] is the single dynamic value type flowing through the engine:
//! table cells, expression results, and aggregate accumulators all hold
//! `Value`s. The type implements a *total* order (NULLs first, then booleans,
//! integers/floats interleaved numerically, dates, strings) so that values can
//! be used as grouping keys and sort keys without panics, mirroring how a
//! DBMS's internal comparator behaves rather than SQL's three-valued
//! comparison semantics (which live in [`crate::expr`]).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Number of days between 1970-01-01 and 2000-01-01, used by date tests.
#[cfg(test)]
const DAYS_1970_TO_2000: i32 = 10957;

/// A dynamically typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean, produced by predicates.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Calendar date, stored as days since the Unix epoch.
    Date(i32),
    /// UTF-8 string. `Arc<str>` keeps row clones cheap: the pricing layer
    /// clones rows for every candidate update it evaluates.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Returns true iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one (`Int`, `Float`, `Bool`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            // qirana-lint::allow(QL002): documented lossy float *view* —
            Value::Int(i) => Some(*i as f64), // exact callers use lossless_f64
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness under SQL semantics: NULL is "unknown" (None).
    pub fn as_bool3(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            _ => Some(true),
        }
    }

    /// Builds a [`Value::Date`] from a calendar date. Panics on out-of-range
    /// months; days are not validated beyond `1..=31` (matching the lenient
    /// behavior of the generators that call this).
    pub fn date(year: i32, month: u32, day: u32) -> Self {
        Value::Date(days_from_civil(year, month, day))
    }

    /// SQL equality used for grouping and join keys: numeric types compare by
    /// value (`1 = 1.0`), everything else by variant. NULL equals NULL here —
    /// this is the *grouping* notion of equality (SQL `GROUP BY` places NULLs
    /// in one group), not the three-valued `=` operator.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// Total order over all values. NULL sorts first; numeric variants are
    /// interleaved; distinct non-comparable variants order by a fixed type
    /// rank. `NaN` sorts after all other floats via `total_cmp`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => cmp_int_float(*a, *b),
            (Float(a), Int(b)) => cmp_int_float(*b, *a).reverse(),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

/// `2^63` as an `f64` — the first float at or above which every `i64`
/// compares less.
const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;

/// The `f64` equal to `i`, when one exists. An `i64` whose magnitude
/// exceeds 2^53 is generally not representable; casting would round to a
/// *different* number, so callers must not treat the cast as the value.
/// (`i64::MAX as f64` additionally rounds up to 2^63, which saturates back
/// to `i64::MAX` under `as`, so the naive round-trip test alone is wrong.)
pub fn lossless_f64(i: i64) -> Option<f64> {
    // qirana-lint::allow(QL002): canonical exact-cast site, round-trip-checked below
    let f = i as f64;
    if f < TWO_POW_63 && f as i64 == i {
        Some(f)
    } else {
        None
    }
}

/// Exact comparison of an `i64` against an `f64`.
///
/// Casting the integer to `f64` (the old implementation) collapses
/// distinct integers beyond 2^53 onto one float — `i64::MAX` compared
/// equal to `2^63 as f64` — which silently zeroed disagreement bits in the
/// pricing layer. Instead the float is decomposed: its truncation fits an
/// `i64` whenever it is in range, and the comparison reduces to integer
/// comparison plus the sign of the fractional part.
fn cmp_int_float(a: i64, b: f64) -> Ordering {
    if b.is_nan() {
        // Mirror f64::total_cmp: -NaN sorts below every number, +NaN above.
        return if b.is_sign_negative() {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }
    if b == 0.0 && b.is_sign_negative() {
        // f64::total_cmp has -0.0 < 0.0; keep Int(0) aligned with
        // Float(0.0) (strictly above -0.0) so the order stays transitive.
        return if a >= 0 {
            Ordering::Greater
        } else {
            Ordering::Less
        };
    }
    if b >= TWO_POW_63 {
        return Ordering::Less; // every i64 is below 2^63 (and below +inf)
    }
    if b < -TWO_POW_63 {
        return Ordering::Greater; // below i64::MIN (and above -inf)
    }
    // b ∈ [-2^63, 2^63): truncation toward zero is exact in this range.
    let t = b as i64;
    match a.cmp(&t) {
        // a and trunc(b) agree; the fractional part decides. (|t| ≥ 2^52
        // implies b was already integral, so `t as f64` is exact here.)
        Ordering::Equal => {
            // qirana-lint::allow(QL002): exact by the range analysis above
            if b > t as f64 {
                Ordering::Less
            // qirana-lint::allow(QL002): exact by the range analysis above
            } else if b < t as f64 {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        }
        // a ≠ trunc(b): since b is within 1 of its truncation, integer
        // comparison against the truncation is already exact.
        ord => ord,
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) => 2,
        Value::Float(_) => 2, // numeric types share a rank; handled above
        Value::Date(_) => 3,
        Value::Str(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            // Int and Float must hash identically when numerically equal,
            // because `sql_eq` treats 1 and 1.0 as the same grouping key.
            // An integer with no exact f64 (|i| > 2^53, roughly) equals no
            // float, so it hashes its own bits under a distinct tag —
            // casting it would collide distinct huge integers.
            Value::Int(i) => match lossless_f64(*i) {
                Some(f) => {
                    state.write_u8(2);
                    hash_f64(f, state);
                }
                None => {
                    state.write_u8(5);
                    state.write_u64(*i as u64);
                }
            },
            Value::Float(f) => {
                state.write_u8(2);
                hash_f64(*f, state);
            }
            Value::Date(d) => {
                state.write_u8(3);
                state.write_i32(*d);
            }
            Value::Str(s) => {
                state.write_u8(4);
                s.hash(state);
            }
        }
    }
}

fn hash_f64<H: Hasher>(f: f64, state: &mut H) {
    // Normalize -0.0 to 0.0 so they hash identically (they compare equal
    // numerically via total_cmp only for identical bit patterns, but the
    // engine never produces -0.0 keys; normalizing is still the safe choice).
    let f = if f == 0.0 { 0.0 } else { f };
    state.write_u64(f.to_bits());
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Date(d) => {
                let (y, m, dd) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian calendar date.
///
/// Port of Howard Hinnant's `days_from_civil` algorithm.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    debug_assert!((1..=12).contains(&m), "month out of range: {m}");
    debug_assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era: i32 = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era: i32 = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Adds `months` calendar months to a date expressed in days-since-epoch,
/// clamping the day-of-month (e.g. Jan 31 + 1 month = Feb 28/29). This is the
/// semantics of SQL's `date + INTERVAL 'n' MONTH`.
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = civil_from_days(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = (total.rem_euclid(12) + 1) as u32;
    let max_d = days_in_month(ny, nm);
    days_from_civil(ny, nm, d.min(max_d))
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        // qirana-lint::allow(QL003, QL007): caller clamps m to 1..=12
        _ => unreachable!("month out of range: {m}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
    }

    #[test]
    fn numeric_cross_type_hash_agrees() {
        assert_eq!(h(&Value::Int(42)), h(&Value::Float(42.0)));
    }

    #[test]
    fn large_int_float_comparison_is_exact() {
        // Regression: 2^53 and 2^53 + 1 both cast to the same f64, so the
        // old cast-based comparison called them equal to Float(2^53).
        let p53 = 1i64 << 53;
        assert_eq!(Value::Int(p53), Value::Float(p53 as f64));
        assert!(Value::Int(p53 + 1) > Value::Float(p53 as f64));
        assert!(Value::Float(p53 as f64) < Value::Int(p53 + 1));
        // Regression: i64::MAX as f64 rounds up to 2^63; the old code
        // compared Int(i64::MAX) equal to that float.
        assert!(Value::Int(i64::MAX) < Value::Float(9_223_372_036_854_775_808.0));
        assert_eq!(
            Value::Int(i64::MIN),
            Value::Float(-9_223_372_036_854_775_808.0)
        );
        assert!(Value::Int(i64::MIN + 1) > Value::Float(-9_223_372_036_854_775_808.0));
        // Fractional floats between huge integers order correctly.
        assert!(Value::Int(p53 + 1) < Value::Float(1e17));
        assert!(Value::Int(100) > Value::Float(99.5));
        assert!(Value::Int(-100) < Value::Float(-99.5));
        assert!(Value::Int(0) > Value::Float(-0.5));
    }

    #[test]
    fn large_int_hash_distinguishes() {
        let p53 = 1i64 << 53;
        // Equal values still hash equal…
        assert_eq!(h(&Value::Int(p53)), h(&Value::Float(p53 as f64)));
        // …but 2^53 + 1 no longer collides with 2^53 (old lossy cast).
        assert_ne!(h(&Value::Int(p53 + 1)), h(&Value::Int(p53)));
        assert_ne!(h(&Value::Int(i64::MAX)), h(&Value::Int(i64::MAX - 1)));
    }

    #[test]
    fn lossless_f64_boundaries() {
        assert_eq!(lossless_f64(5), Some(5.0));
        assert_eq!(lossless_f64(1 << 53), Some((1i64 << 53) as f64));
        assert_eq!(lossless_f64((1 << 53) + 1), None);
        assert_eq!(lossless_f64(i64::MAX), None); // saturating-cast trap
        assert_eq!(lossless_f64(i64::MIN), Some(-9_223_372_036_854_775_808.0));
    }

    #[test]
    fn string_ordering() {
        assert!(Value::str("abc") < Value::str("abd"));
        assert_eq!(Value::str("x"), Value::str("x"));
    }

    #[test]
    fn nan_is_totally_ordered() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (2011, 12, 31), (1969, 7, 20)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 1, 1), DAYS_1970_TO_2000);
    }

    #[test]
    fn add_months_clamps() {
        let jan31 = days_from_civil(2011, 1, 31);
        assert_eq!(civil_from_days(add_months(jan31, 1)), (2011, 2, 28));
        let jul1 = days_from_civil(2011, 1, 1);
        assert_eq!(civil_from_days(add_months(jul1, 6)), (2011, 7, 1));
        // Crossing a year boundary backwards.
        assert_eq!(civil_from_days(add_months(jan31, -2)), (2010, 11, 30));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::date(2011, 3, 7).to_string(), "2011-03-07");
        assert_eq!(Value::str("hi").to_string(), "hi");
    }

    #[test]
    fn bool3_semantics() {
        assert_eq!(Value::Null.as_bool3(), None);
        assert_eq!(Value::Bool(true).as_bool3(), Some(true));
        assert_eq!(Value::Int(0).as_bool3(), Some(false));
    }
}
