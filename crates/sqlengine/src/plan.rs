//! Name resolution: turns a parsed [`SelectStmt`] into an executable
//! [`ResolvedSelect`] where every column reference is a slot index into the
//! joined row.
//!
//! The resolved form is deliberately *open* (public fields, slot-rewriting
//! helpers): QIRANA's pricing optimizer programmatically derives variant
//! queries from it — the key-augmented query `Q̂`, unrolled aggregates `Q°γ`,
//! and the batch queries of §4.2 which extend one relation with a synthetic
//! `upid` column.

use crate::ast::{AggFunc, BinaryOp, Expr, SelectItem, SelectStmt, TableRef, UnaryOp};
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::value::Value;

/// A resolved (planned) SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedSelect {
    /// Relations in FROM order.
    pub relations: Vec<PRelation>,
    /// Slot offset of each relation within the joined row.
    pub offsets: Vec<usize>,
    /// Total width of the joined row.
    pub width: usize,
    /// WHERE predicate (join + selection conditions), if any.
    pub filter: Option<PExpr>,
    /// Group-key expressions (row context).
    pub group_by: Vec<PExpr>,
    /// Aggregate calls extracted from the select list / HAVING / ORDER BY.
    pub aggregates: Vec<AggSpec>,
    /// True iff execution needs a grouping phase (GROUP BY or aggregates).
    pub grouped: bool,
    /// HAVING predicate (aggregate context).
    pub having: Option<PExpr>,
    /// Output columns.
    pub projections: Vec<Projection>,
    /// SELECT DISTINCT.
    pub distinct: bool,
    /// Sort keys (aggregate context when grouped) and direction (asc=true).
    pub order_by: Vec<(PExpr, bool)>,
    /// Row-count cap applied last.
    pub limit: Option<u64>,
}

/// One relation of the FROM clause after resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum PRelation {
    /// A base table, by catalog index.
    Base {
        table: usize,
        binding: String,
        arity: usize,
    },
    /// A derived table with its own resolved plan.
    Derived {
        plan: Box<ResolvedSelect>,
        binding: String,
        arity: usize,
    },
}

impl PRelation {
    /// Number of slots this relation contributes.
    pub fn arity(&self) -> usize {
        match self {
            PRelation::Base { arity, .. } | PRelation::Derived { arity, .. } => *arity,
        }
    }

    /// The binding name of the relation in the query.
    pub fn binding(&self) -> &str {
        match self {
            PRelation::Base { binding, .. } | PRelation::Derived { binding, .. } => binding,
        }
    }
}

/// An output column.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    pub expr: PExpr,
    pub name: String,
}

/// One aggregate computation for the grouping phase.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    /// `None` means `COUNT(*)`.
    pub arg: Option<PExpr>,
    pub distinct: bool,
}

/// A resolved scalar expression. Slots index into the joined row; `AggRef`
/// indexes into the per-group aggregate results and may only appear in
/// post-aggregation expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    Literal(Value),
    Interval {
        months: i64,
        days: i64,
    },
    Slot(usize),
    /// Correlated reference to an enclosing query's row; `depth` counts
    /// outward (0 = nearest enclosing query).
    OuterSlot {
        depth: usize,
        slot: usize,
    },
    AggRef(usize),
    Unary {
        op: UnaryOp,
        expr: Box<PExpr>,
    },
    Binary {
        left: Box<PExpr>,
        op: BinaryOp,
        right: Box<PExpr>,
    },
    Like {
        expr: Box<PExpr>,
        pattern: String,
        negated: bool,
    },
    Between {
        expr: Box<PExpr>,
        low: Box<PExpr>,
        high: Box<PExpr>,
        negated: bool,
    },
    InList {
        expr: Box<PExpr>,
        list: Vec<PExpr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<PExpr>,
        plan: Box<ResolvedSelect>,
        negated: bool,
    },
    Exists {
        plan: Box<ResolvedSelect>,
        negated: bool,
    },
    ScalarSubquery(Box<ResolvedSelect>),
    IsNull {
        expr: Box<PExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<PExpr>>,
        branches: Vec<(PExpr, PExpr)>,
        else_expr: Option<Box<PExpr>>,
    },
}

impl PExpr {
    /// Splits a predicate into its top-level conjuncts.
    pub fn conjuncts(self) -> Vec<PExpr> {
        match self {
            PExpr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => {
                let mut v = left.conjuncts();
                v.extend(right.conjuncts());
                v
            }
            other => vec![other],
        }
    }

    /// Rebuilds a conjunction from conjuncts; `None` for an empty list.
    pub fn conjoin(mut parts: Vec<PExpr>) -> Option<PExpr> {
        let mut acc = parts.pop()?;
        while let Some(p) = parts.pop() {
            acc = PExpr::Binary {
                left: Box::new(p),
                op: BinaryOp::And,
                right: Box::new(acc),
            };
        }
        Some(acc)
    }

    /// Collects the row slots (depth-0 only) referenced by this expression.
    pub fn collect_slots(&self, out: &mut Vec<usize>) {
        self.walk(&mut |e| {
            if let PExpr::Slot(s) = e {
                out.push(*s);
            }
        });
    }

    /// Pre-order traversal of this expression (not descending into
    /// subquery plans; their slots live in a different frame).
    pub fn walk(&self, f: &mut impl FnMut(&PExpr)) {
        f(self);
        match self {
            PExpr::Literal(_)
            | PExpr::Interval { .. }
            | PExpr::Slot(_)
            | PExpr::OuterSlot { .. }
            | PExpr::AggRef(_) => {}
            PExpr::Unary { expr, .. } | PExpr::Like { expr, .. } | PExpr::IsNull { expr, .. } => {
                expr.walk(f)
            }
            PExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            PExpr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            PExpr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            PExpr::InSubquery { expr, .. } => expr.walk(f),
            PExpr::Exists { .. } | PExpr::ScalarSubquery(_) => {}
            PExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
        }
    }

    /// True iff this expression contains a subquery plan.
    pub fn has_subquery(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(
                e,
                PExpr::InSubquery { .. } | PExpr::Exists { .. } | PExpr::ScalarSubquery(_)
            ) {
                found = true;
            }
        });
        found
    }

    /// Rewrites every depth-0 slot through `f`. Used by the batching
    /// optimizer when a relation's arity grows.
    ///
    /// # Panics
    /// Panics if the expression contains a subquery (the optimizer only
    /// rewrites subquery-free plans; a subquery's `OuterSlot`s would need
    /// coordinated shifting).
    #[allow(clippy::panic)] // documented: callers rewrite subquery-free plans
    pub fn map_slots(&mut self, f: &mut impl FnMut(usize) -> usize) {
        match self {
            PExpr::Slot(s) => *s = f(*s),
            PExpr::Literal(_)
            | PExpr::Interval { .. }
            | PExpr::OuterSlot { .. }
            | PExpr::AggRef(_) => {}
            PExpr::Unary { expr, .. } | PExpr::Like { expr, .. } | PExpr::IsNull { expr, .. } => {
                expr.map_slots(f)
            }
            PExpr::Binary { left, right, .. } => {
                left.map_slots(f);
                right.map_slots(f);
            }
            PExpr::Between {
                expr, low, high, ..
            } => {
                expr.map_slots(f);
                low.map_slots(f);
                high.map_slots(f);
            }
            PExpr::InList { expr, list, .. } => {
                expr.map_slots(f);
                for e in list {
                    e.map_slots(f);
                }
            }
            PExpr::InSubquery { .. } | PExpr::Exists { .. } | PExpr::ScalarSubquery(_) => {
                panic!("map_slots on an expression containing a subquery") // qirana-lint::allow(QL007): documented contract; planners strip subqueries before slot mapping
            }
            PExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.map_slots(f);
                }
                for (w, t) in branches {
                    w.map_slots(f);
                    t.map_slots(f);
                }
                if let Some(e) = else_expr {
                    e.map_slots(f);
                }
            }
        }
    }
}

impl ResolvedSelect {
    /// Applies a slot rewrite to every expression of this plan.
    pub fn map_slots(&mut self, f: &mut impl FnMut(usize) -> usize) {
        if let Some(e) = &mut self.filter {
            e.map_slots(f);
        }
        for e in &mut self.group_by {
            e.map_slots(f);
        }
        for a in &mut self.aggregates {
            if let Some(e) = &mut a.arg {
                e.map_slots(f);
            }
        }
        if let Some(e) = &mut self.having {
            e.map_slots(f);
        }
        for p in &mut self.projections {
            p.expr.map_slots(f);
        }
        for (e, _) in &mut self.order_by {
            e.map_slots(f);
        }
    }

    /// Grows relation `rel` by one trailing column, shifting all slots that
    /// follow it. Returns the global slot index of the new column. The
    /// caller must supply override rows of the widened arity at execution.
    pub fn append_column(&mut self, rel: usize) -> usize {
        let insert_at = self.offsets[rel] + self.relations[rel].arity();
        match &mut self.relations[rel] {
            PRelation::Base { arity, .. } | PRelation::Derived { arity, .. } => *arity += 1,
        }
        for o in self.offsets.iter_mut().skip(rel + 1) {
            *o += 1;
        }
        self.width += 1;
        self.map_slots(&mut |s| if s >= insert_at { s + 1 } else { s });
        insert_at
    }

    /// The slot range `[offset, offset+arity)` of relation `rel`.
    pub fn relation_slots(&self, rel: usize) -> std::ops::Range<usize> {
        let o = self.offsets[rel];
        o..o + self.relations[rel].arity()
    }

    /// True iff any expression in the plan contains a subquery.
    pub fn has_subquery(&self) -> bool {
        let exprs = self
            .filter
            .iter()
            .chain(self.group_by.iter())
            .chain(self.aggregates.iter().filter_map(|a| a.arg.as_ref()))
            .chain(self.having.iter())
            .chain(self.projections.iter().map(|p| &p.expr))
            .chain(self.order_by.iter().map(|(e, _)| e));
        for e in exprs {
            if e.has_subquery() {
                return true;
            }
        }
        self.relations
            .iter()
            .any(|r| matches!(r, PRelation::Derived { .. }))
    }
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

/// Recursively replaces unqualified column references that match a
/// select-list alias with the aliased expression (MySQL-style alias
/// visibility in GROUP BY / HAVING / ORDER BY). Does not descend into
/// subqueries, whose names resolve in their own scope first.
fn substitute_aliases(e: &Expr, aliases: &[(String, &Expr)]) -> Expr {
    let sub = |x: &Expr| substitute_aliases(x, aliases);
    match e {
        Expr::Column {
            table: None,
            column,
        } => {
            for (a, target) in aliases {
                if a.eq_ignore_ascii_case(column) {
                    return (*target).clone();
                }
            }
            e.clone()
        }
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(sub(expr)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(sub(left)),
            op: *op,
            right: Box::new(sub(right)),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(sub(expr)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(sub(expr)),
            low: Box::new(sub(low)),
            high: Box::new(sub(high)),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(sub(expr)),
            list: list.iter().map(sub).collect(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(sub(expr)),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(sub(o))),
            branches: branches.iter().map(|(w, t)| (sub(w), sub(t))).collect(),
            else_expr: else_expr.as_ref().map(|x| Box::new(sub(x))),
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Agg {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(sub(a))),
            distinct: *distinct,
        },
        // Subqueries and leaves pass through unchanged.
        _ => e.clone(),
    }
}

/// One name scope: the FROM bindings of a single SELECT.
#[derive(Debug, Clone)]
struct Scope {
    bindings: Vec<Binding>,
}

#[derive(Debug, Clone)]
struct Binding {
    name: String,
    columns: Vec<String>,
    offset: usize,
}

impl Scope {
    /// Resolves `table.column` / `column` to a slot. Errors on ambiguity.
    fn resolve(&self, table: Option<&str>, column: &str) -> Result<Option<usize>> {
        let mut found = None;
        for b in &self.bindings {
            if let Some(t) = table {
                if !b.name.eq_ignore_ascii_case(t) {
                    continue;
                }
            }
            if let Some(ci) = b
                .columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(column))
            {
                if found.is_some() {
                    return Err(EngineError::plan(format!(
                        "ambiguous column reference {column}"
                    )));
                }
                found = Some(b.offset + ci);
            }
        }
        Ok(found)
    }
}

/// Plans a SELECT against a database.
pub fn plan_select(stmt: &SelectStmt, db: &Database) -> Result<ResolvedSelect> {
    Resolver { db }.resolve_select(stmt, &[])
}

struct Resolver<'a> {
    db: &'a Database,
}

/// Expression-resolution context.
struct ExprCtx<'s> {
    /// Innermost scope first? No: `scopes[0]` is the *current* scope,
    /// followed by enclosing scopes outward.
    scopes: &'s [Scope],
    /// When `Some`, aggregate calls are allowed and register here.
    aggregates: Option<&'s mut Vec<AggSpec>>,
}

impl<'a> Resolver<'a> {
    fn resolve_select(&self, stmt: &SelectStmt, outer: &[Scope]) -> Result<ResolvedSelect> {
        // 1. FROM clause: build relations and the current scope.
        let mut relations = Vec::new();
        let mut offsets = Vec::new();
        let mut bindings = Vec::new();
        let mut width = 0usize;
        for tref in &stmt.from {
            let (rel, columns) = match tref {
                TableRef::Table { name, alias } => {
                    let idx = self
                        .db
                        .table_index(name)
                        .ok_or_else(|| EngineError::plan(format!("unknown table {name}")))?;
                    let schema = &self.db.table_at(idx).schema;
                    let cols: Vec<String> = schema.columns.iter().map(|c| c.name.clone()).collect();
                    (
                        PRelation::Base {
                            table: idx,
                            binding: alias.clone().unwrap_or_else(|| name.clone()),
                            arity: schema.arity(),
                        },
                        cols,
                    )
                }
                TableRef::Derived { query, alias } => {
                    // Derived tables are uncorrelated (no LATERAL), so they
                    // resolve against an empty outer chain.
                    let plan = self.resolve_select(query, &[])?;
                    let cols: Vec<String> =
                        plan.projections.iter().map(|p| p.name.clone()).collect();
                    let arity = cols.len();
                    (
                        PRelation::Derived {
                            plan: Box::new(plan),
                            binding: alias.clone(),
                            arity,
                        },
                        cols,
                    )
                }
            };
            let binding_name = rel.binding().to_string();
            if bindings
                .iter()
                .any(|b: &Binding| b.name.eq_ignore_ascii_case(&binding_name))
            {
                return Err(EngineError::plan(format!(
                    "duplicate relation binding {binding_name} (self-joins need distinct aliases)"
                )));
            }
            offsets.push(width);
            bindings.push(Binding {
                name: binding_name,
                columns,
                offset: width,
            });
            width += rel.arity();
            relations.push(rel);
        }
        let scope = Scope { bindings };
        // scope chain: current first, then outer scopes outward.
        let mut chain = Vec::with_capacity(outer.len() + 1);
        chain.push(scope);
        chain.extend(outer.iter().cloned());

        // 2. WHERE (row context; aggregates forbidden).
        let filter = match &stmt.where_clause {
            Some(e) => {
                if e.contains_aggregate() {
                    return Err(EngineError::plan("aggregates are not allowed in WHERE"));
                }
                Some(self.resolve_expr(
                    e,
                    &mut ExprCtx {
                        scopes: &chain,
                        aggregates: None,
                    },
                )?)
            }
            None => None,
        };

        // 3. Select-list aliases, usable in GROUP BY / HAVING / ORDER BY.
        let aliases: Vec<(String, &Expr)> = stmt
            .projection
            .iter()
            .filter_map(|it| match it {
                SelectItem::Expr {
                    expr,
                    alias: Some(a),
                } => Some((a.clone(), expr)),
                _ => None,
            })
            .collect();
        let dealias = |e: &Expr| -> Expr { substitute_aliases(e, &aliases) };

        // 4. Grouping decision.
        let any_agg = stmt
            .projection
            .iter()
            .any(|it| matches!(it, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || stmt
                .having
                .as_ref()
                .is_some_and(|h| dealias(h).contains_aggregate())
            || stmt
                .order_by
                .iter()
                .any(|k| dealias(&k.expr).contains_aggregate());
        let grouped = any_agg || !stmt.group_by.is_empty();
        if stmt.having.is_some() && !grouped {
            return Err(EngineError::plan("HAVING requires GROUP BY or aggregates"));
        }

        let mut aggregates: Vec<AggSpec> = Vec::new();

        // 5. GROUP BY keys (row context).
        let mut group_by = Vec::new();
        for g in &stmt.group_by {
            let g = dealias(g);
            if g.contains_aggregate() {
                return Err(EngineError::plan("aggregates are not allowed in GROUP BY"));
            }
            group_by.push(self.resolve_expr(
                &g,
                &mut ExprCtx {
                    scopes: &chain,
                    aggregates: None,
                },
            )?);
        }

        // 6. Projections.
        let mut projections = Vec::new();
        for (i, item) in stmt.projection.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    for b in &chain[0].bindings {
                        for (ci, cname) in b.columns.iter().enumerate() {
                            projections.push(Projection {
                                expr: PExpr::Slot(b.offset + ci),
                                name: cname.clone(),
                            });
                        }
                    }
                    if grouped {
                        return Err(EngineError::plan(
                            "SELECT * cannot be combined with aggregation",
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(t) => {
                    let b = chain[0]
                        .bindings
                        .iter()
                        .find(|b| b.name.eq_ignore_ascii_case(t))
                        .ok_or_else(|| {
                            EngineError::plan(format!("unknown relation {t} in {t}.*"))
                        })?;
                    for (ci, cname) in b.columns.iter().enumerate() {
                        projections.push(Projection {
                            expr: PExpr::Slot(b.offset + ci),
                            name: cname.clone(),
                        });
                    }
                    if grouped {
                        return Err(EngineError::plan(
                            "SELECT t.* cannot be combined with aggregation",
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let pexpr = self.resolve_expr(
                        expr,
                        &mut ExprCtx {
                            scopes: &chain,
                            aggregates: if grouped { Some(&mut aggregates) } else { None },
                        },
                    )?;
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column { column, .. } => column.clone(),
                        _ => format!("expr{i}"),
                    });
                    projections.push(Projection { expr: pexpr, name });
                }
            }
        }

        // 7. HAVING (aggregate context).
        let having = match &stmt.having {
            Some(h) => {
                let h = dealias(h);
                Some(self.resolve_expr(
                    &h,
                    &mut ExprCtx {
                        scopes: &chain,
                        aggregates: Some(&mut aggregates),
                    },
                )?)
            }
            None => None,
        };

        // 8. ORDER BY.
        let mut order_by = Vec::new();
        for k in &stmt.order_by {
            let e = dealias(&k.expr);
            let pe = self.resolve_expr(
                &e,
                &mut ExprCtx {
                    scopes: &chain,
                    aggregates: if grouped { Some(&mut aggregates) } else { None },
                },
            )?;
            order_by.push((pe, k.asc));
        }

        Ok(ResolvedSelect {
            relations,
            offsets,
            width,
            filter,
            group_by,
            aggregates,
            grouped,
            having,
            projections,
            distinct: stmt.distinct,
            order_by,
            limit: stmt.limit,
        })
    }

    fn resolve_expr(&self, e: &Expr, ctx: &mut ExprCtx<'_>) -> Result<PExpr> {
        Ok(match e {
            Expr::Literal(v) => PExpr::Literal(v.clone()),
            Expr::Interval { months, days } => PExpr::Interval {
                months: *months,
                days: *days,
            },
            Expr::Column { table, column } => {
                // Current scope first, then outward for correlation.
                for (depth, scope) in ctx.scopes.iter().enumerate() {
                    if let Some(slot) = scope.resolve(table.as_deref(), column)? {
                        return Ok(if depth == 0 {
                            PExpr::Slot(slot)
                        } else {
                            PExpr::OuterSlot {
                                depth: depth - 1,
                                slot,
                            }
                        });
                    }
                }
                return Err(EngineError::plan(format!(
                    "unknown column {}{column}",
                    table
                        .as_deref()
                        .map(|t| format!("{t}."))
                        .unwrap_or_default()
                )));
            }
            Expr::Unary { op, expr } => PExpr::Unary {
                op: *op,
                expr: Box::new(self.resolve_expr(expr, ctx)?),
            },
            Expr::Binary { left, op, right } => PExpr::Binary {
                left: Box::new(self.resolve_expr(left, ctx)?),
                op: *op,
                right: Box::new(self.resolve_expr(right, ctx)?),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => PExpr::Like {
                expr: Box::new(self.resolve_expr(expr, ctx)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => PExpr::Between {
                expr: Box::new(self.resolve_expr(expr, ctx)?),
                low: Box::new(self.resolve_expr(low, ctx)?),
                high: Box::new(self.resolve_expr(high, ctx)?),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => PExpr::InList {
                expr: Box::new(self.resolve_expr(expr, ctx)?),
                list: list
                    .iter()
                    .map(|e| self.resolve_expr(e, ctx))
                    .collect::<Result<_>>()?,
                negated: *negated,
            },
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let plan = self.resolve_select(subquery, ctx.scopes)?;
                if plan.projections.len() != 1 {
                    return Err(EngineError::plan("IN subquery must return one column"));
                }
                PExpr::InSubquery {
                    expr: Box::new(self.resolve_expr(expr, ctx)?),
                    plan: Box::new(plan),
                    negated: *negated,
                }
            }
            Expr::Exists { subquery, negated } => PExpr::Exists {
                plan: Box::new(self.resolve_select(subquery, ctx.scopes)?),
                negated: *negated,
            },
            Expr::ScalarSubquery(subquery) => {
                let plan = self.resolve_select(subquery, ctx.scopes)?;
                if plan.projections.len() != 1 {
                    return Err(EngineError::plan("scalar subquery must return one column"));
                }
                PExpr::ScalarSubquery(Box::new(plan))
            }
            Expr::IsNull { expr, negated } => PExpr::IsNull {
                expr: Box::new(self.resolve_expr(expr, ctx)?),
                negated: *negated,
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => PExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| self.resolve_expr(o, ctx).map(Box::new))
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(w, t)| Ok((self.resolve_expr(w, ctx)?, self.resolve_expr(t, ctx)?)))
                    .collect::<Result<_>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|e| self.resolve_expr(e, ctx).map(Box::new))
                    .transpose()?,
            },
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                let arg_resolved = match arg {
                    Some(a) => {
                        if a.contains_aggregate() {
                            return Err(EngineError::plan("nested aggregates are not allowed"));
                        }
                        // Aggregate arguments are row-context expressions.
                        Some(self.resolve_expr(
                            a,
                            &mut ExprCtx {
                                scopes: ctx.scopes,
                                aggregates: None,
                            },
                        )?)
                    }
                    None => None,
                };
                let spec = AggSpec {
                    func: *func,
                    arg: arg_resolved,
                    distinct: *distinct,
                };
                let aggs = ctx.aggregates.as_deref_mut().ok_or_else(|| {
                    EngineError::plan("aggregate call in a non-aggregate context")
                })?;
                let idx = match aggs.iter().position(|s| *s == spec) {
                    Some(i) => i,
                    None => {
                        aggs.push(spec);
                        aggs.len() - 1
                    }
                };
                PExpr::AggRef(idx)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("name", DataType::Str),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![],
        );
        db.add_table(
            TableSchema::new(
                "Tweet",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("location", DataType::Str),
                ],
                &["tid"],
            ),
            vec![],
        );
        db
    }

    fn plan(sql: &str) -> ResolvedSelect {
        plan_select(&parse_select(sql).unwrap(), &db()).unwrap()
    }

    #[test]
    fn wildcard_expansion() {
        let p = plan("select * from User");
        assert_eq!(p.projections.len(), 4);
        assert_eq!(p.projections[0].name, "uid");
        assert_eq!(p.projections[0].expr, PExpr::Slot(0));
        assert_eq!(p.width, 4);
    }

    #[test]
    fn join_slots_offset() {
        let p = plan("select Tweet.uid from User, Tweet where User.uid = Tweet.uid");
        assert_eq!(p.offsets, vec![0, 4]);
        assert_eq!(p.width, 7);
        assert_eq!(p.projections[0].expr, PExpr::Slot(5));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let err =
            plan_select(&parse_select("select uid from User, Tweet").unwrap(), &db()).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(plan_select(&parse_select("select x from User").unwrap(), &db()).is_err());
        assert!(plan_select(&parse_select("select 1 from Nope").unwrap(), &db()).is_err());
    }

    #[test]
    fn aggregates_extracted_and_deduped() {
        let p = plan("select gender, count(*), count(*) from User group by gender");
        assert!(p.grouped);
        assert_eq!(p.aggregates.len(), 1, "identical aggregates share a spec");
        assert_eq!(p.projections[1].expr, PExpr::AggRef(0));
        assert_eq!(p.projections[2].expr, PExpr::AggRef(0));
    }

    #[test]
    fn having_alias_resolution() {
        let p = plan("select gender, count(*) as c from User group by gender having c > 1");
        assert!(p.having.is_some());
        assert_eq!(p.aggregates.len(), 1);
    }

    #[test]
    fn aggregate_in_where_rejected() {
        let err = plan_select(
            &parse_select("select 1 from User where count(*) > 1").unwrap(),
            &db(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("WHERE"));
    }

    #[test]
    fn correlated_subquery_outer_slot() {
        let p = plan(
            "select name from User U where exists (select 1 from Tweet T where T.uid = U.uid)",
        );
        let PExpr::Exists { plan: sub, .. } = p.filter.unwrap() else {
            panic!("expected EXISTS")
        };
        let f = format!("{:?}", sub.filter);
        assert!(f.contains("OuterSlot"), "correlated ref resolved: {f}");
    }

    #[test]
    fn duplicate_binding_rejected() {
        let err =
            plan_select(&parse_select("select 1 from User, User").unwrap(), &db()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn append_column_shifts_slots() {
        let mut p = plan("select Tweet.location from User, Tweet where User.uid = Tweet.uid");
        let before = p.projections[0].expr.clone();
        assert_eq!(before, PExpr::Slot(6));
        let upid = p.append_column(0); // widen User
        assert_eq!(upid, 4);
        assert_eq!(p.offsets, vec![0, 5]);
        assert_eq!(p.width, 8);
        assert_eq!(p.projections[0].expr, PExpr::Slot(7));
        // Widening the *last* relation shifts nothing.
        let mut p2 = plan("select uid from User");
        let upid2 = p2.append_column(0);
        assert_eq!(upid2, 4);
        assert_eq!(p2.projections[0].expr, PExpr::Slot(0));
    }

    #[test]
    fn derived_table_columns_visible() {
        let p = plan(
            "select c from (select gender, count(*) as c from User group by gender) as g where c > 0",
        );
        assert!(matches!(p.relations[0], PRelation::Derived { .. }));
        assert_eq!(p.relations[0].arity(), 2);
        assert!(p.has_subquery());
    }

    #[test]
    fn conjunct_roundtrip() {
        let p = plan("select 1 from User where uid = 1 and age > 2 and gender = 'm'");
        let parts = p.filter.unwrap().conjuncts();
        assert_eq!(parts.len(), 3);
        let rebuilt = PExpr::conjoin(parts).unwrap();
        assert_eq!(rebuilt.conjuncts().len(), 3);
    }
}
