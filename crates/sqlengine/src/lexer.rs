//! SQL tokenizer.
//!
//! Produces a flat token stream for the recursive-descent parser. Keywords
//! are *not* distinguished here — they surface as [`Token::Ident`] and the
//! parser matches them case-insensitively, which keeps the lexer trivial and
//! lets identifiers shadow non-reserved words.

use crate::error::{EngineError, Result};

/// A lexical token, with its byte offset for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (unquoted, case preserved).
    Ident(String),
    /// Numeric literal (integer or decimal), unparsed text.
    Number(String),
    /// Single-quoted string literal, quotes stripped, `''` unescaped.
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

/// A token plus its starting byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// Tokenizes `sql`, skipping whitespace and `--` line comments. The scanner
/// is char-based, so multi-byte UTF-8 (in identifiers or string literals)
/// never splits a code point.
pub fn tokenize(sql: &str) -> Result<Vec<Spanned>> {
    let chars: Vec<(usize, char)> = sql.char_indices().collect();
    let mut out = Vec::new();
    let mut i = 0usize; // index into `chars`
    let at = |i: usize| chars.get(i).map(|&(_, c)| c);
    let off = |i: usize| chars.get(i).map(|&(o, _)| o).unwrap_or(sql.len());

    while let Some(&(start, c)) = chars.get(i) {
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if at(i + 1) == Some('-') => {
                while i < chars.len() && at(i) != Some('\n') {
                    i += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match at(i) {
                        None => {
                            return Err(EngineError::parse(
                                start,
                                "unterminated string literal".into(),
                            ))
                        }
                        Some('\'') if at(i + 1) == Some('\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                while at(i).is_some_and(|c| c.is_ascii_digit()) {
                    i += 1;
                }
                if at(i) == Some('.') {
                    i += 1;
                    while at(i).is_some_and(|c| c.is_ascii_digit()) {
                        i += 1;
                    }
                }
                if matches!(at(i), Some('e' | 'E')) {
                    let mut j = i + 1;
                    if matches!(at(j), Some('+' | '-')) {
                        j += 1;
                    }
                    if at(j).is_some_and(|c| c.is_ascii_digit()) {
                        i = j;
                        while at(i).is_some_and(|c| c.is_ascii_digit()) {
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Number(sql[start..off(i)].to_string()),
                    offset: start,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                while at(i).is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(sql[start..off(i)].to_string()),
                    offset: start,
                });
            }
            _ => {
                let (sym, len) = match (c, at(i + 1)) {
                    ('(', _) => (Sym::LParen, 1),
                    (')', _) => (Sym::RParen, 1),
                    (',', _) => (Sym::Comma, 1),
                    ('.', _) => (Sym::Dot, 1),
                    ('*', _) => (Sym::Star, 1),
                    ('+', _) => (Sym::Plus, 1),
                    ('-', _) => (Sym::Minus, 1),
                    ('/', _) => (Sym::Slash, 1),
                    ('%', _) => (Sym::Percent, 1),
                    (';', _) => (Sym::Semicolon, 1),
                    ('<', Some('=')) => (Sym::LtEq, 2),
                    ('<', Some('>')) => (Sym::NotEq, 2),
                    ('<', _) => (Sym::Lt, 1),
                    ('>', Some('=')) => (Sym::GtEq, 2),
                    ('>', _) => (Sym::Gt, 1),
                    ('!', Some('=')) => (Sym::NotEq, 2),
                    ('=', _) => (Sym::Eq, 1),
                    _ => {
                        return Err(EngineError::parse(
                            start,
                            format!("unexpected character {c:?}"),
                        ))
                    }
                };
                out.push(Spanned {
                    token: Token::Symbol(sym),
                    offset: start,
                });
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn basic_select() {
        assert_eq!(
            toks("SELECT * FROM t"),
            vec![
                Token::Ident("SELECT".into()),
                Token::Symbol(Sym::Star),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 3e10 4.0E-2"),
            vec![
                Token::Number("1".into()),
                Token::Number("2.5".into()),
                Token::Number("3e10".into()),
                Token::Number("4.0E-2".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escape() {
        assert_eq!(
            toks("'it''s' 'ok'"),
            vec![Token::Str("it's".into()), Token::Str("ok".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("a <= b <> c != d >= e < f > g = h"),
            vec![
                Token::Ident("a".into()),
                Token::Symbol(Sym::LtEq),
                Token::Ident("b".into()),
                Token::Symbol(Sym::NotEq),
                Token::Ident("c".into()),
                Token::Symbol(Sym::NotEq),
                Token::Ident("d".into()),
                Token::Symbol(Sym::GtEq),
                Token::Ident("e".into()),
                Token::Symbol(Sym::Lt),
                Token::Ident("f".into()),
                Token::Symbol(Sym::Gt),
                Token::Ident("g".into()),
                Token::Symbol(Sym::Eq),
                Token::Ident("h".into()),
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        assert_eq!(
            toks("select -- the answer\n 42"),
            vec![Token::Ident("select".into()), Token::Number("42".into())]
        );
    }

    #[test]
    fn qualified_names_and_punct() {
        assert_eq!(
            toks("t.a, (x)"),
            vec![
                Token::Ident("t".into()),
                Token::Symbol(Sym::Dot),
                Token::Ident("a".into()),
                Token::Symbol(Sym::Comma),
                Token::Symbol(Sym::LParen),
                Token::Ident("x".into()),
                Token::Symbol(Sym::RParen),
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let s = tokenize("ab  cd").unwrap();
        assert_eq!(s[0].offset, 0);
        assert_eq!(s[1].offset, 4);
    }
}

#[cfg(test)]
mod utf8_tests {
    use super::*;

    #[test]
    fn multibyte_identifiers_and_strings() {
        let toks = tokenize("sélect 'héllo wörld' Ünïcode").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].token, Token::Str("héllo wörld".into()));
    }

    #[test]
    fn multibyte_never_panics() {
        for s in ["é", "'é", "1é2", "日本語 select", "--é\nselect"] {
            let _ = tokenize(s);
        }
    }
}
