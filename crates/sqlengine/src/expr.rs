//! Scalar operation semantics: SQL three-valued logic, arithmetic,
//! comparisons, and `LIKE` matching.
//!
//! These are pure value-level functions; expression-tree evaluation (which
//! needs execution context for subqueries) lives in [`crate::exec`].

use crate::ast::BinaryOp;
use crate::error::{EngineError, Result};
use crate::value::{add_months, Value};

/// Applies a binary operator under SQL semantics.
///
/// * Comparisons and arithmetic with a NULL operand yield NULL.
/// * `AND`/`OR` follow three-valued logic (`false AND NULL = false`,
///   `true OR NULL = true`).
/// * Numeric operands mix freely; `Int op Int` stays integral except `/`,
///   which is integer division like MySQL's `DIV` only when both are ints
///   and divide evenly — otherwise it promotes to float (matching the
///   float-friendly behavior the paper's Python prototype would see).
/// * `Date ± Int` shifts by days.
pub fn binary_op(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => Ok(bool3_and(l, r)),
        Or => Ok(bool3_or(l, r)),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.total_cmp(r);
            let b = match op {
                Eq => ord.is_eq(),
                NotEq => ord.is_ne(),
                Lt => ord.is_lt(),
                LtEq => ord.is_le(),
                Gt => ord.is_gt(),
                GtEq => ord.is_ge(),
                // qirana-lint::allow(QL003, QL007): outer match covers the rest
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => arith(op, l, r),
    }
}

fn bool3_and(l: &Value, r: &Value) -> Value {
    match (l.as_bool3(), r.as_bool3()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn bool3_or(l: &Value, r: &Value) -> Value {
    match (l.as_bool3(), r.as_bool3()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

fn arith(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Date arithmetic: Date ± Int(days).
    if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
        match op {
            Add => return Ok(Value::Date(d + n as i32)),
            Sub => return Ok(Value::Date(d - n as i32)),
            _ => {}
        }
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            Add => Value::Int(a.wrapping_add(*b)),
            Sub => Value::Int(a.wrapping_sub(*b)),
            Mul => Value::Int(a.wrapping_mul(*b)),
            Div => {
                if *b == 0 {
                    Value::Null // SQL: division by zero yields NULL (MySQL default)
                } else if a % b == 0 {
                    Value::Int(a / b)
                } else {
                    // qirana-lint::allow(QL002): SQL promotes inexact int
                    Value::Float(*a as f64 / *b as f64) // division to double
                }
            }
            Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
            // qirana-lint::allow(QL003, QL007): outer match covers the rest
            _ => unreachable!(),
        }),
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(EngineError::eval(format!(
                        "cannot apply {op:?} to {l} and {r}"
                    )))
                }
            };
            Ok(match op {
                Add => Value::Float(a + b),
                Sub => Value::Float(a - b),
                Mul => Value::Float(a * b),
                Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a / b)
                    }
                }
                Mod => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(a % b)
                    }
                }
                // qirana-lint::allow(QL003, QL007): outer match covers the rest
                _ => unreachable!(),
            })
        }
    }
}

/// Shifts a date value by an interval. Errors on non-date operands.
pub fn date_interval(l: &Value, months: i64, days: i64, add: bool) -> Result<Value> {
    match l {
        Value::Null => Ok(Value::Null),
        Value::Date(d) => {
            let sign = if add { 1 } else { -1 };
            let shifted = add_months(*d, (months * sign) as i32) + (days * sign) as i32;
            Ok(Value::Date(shifted))
        }
        other => Err(EngineError::eval(format!(
            "INTERVAL arithmetic requires a date operand, got {other}"
        ))),
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any single char), case-sensitive.
///
/// Iterative two-pointer algorithm with backtracking to the last `%` —
/// linear in practice, worst case O(n·m), no allocation.
pub fn like_match(pattern: &str, s: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = s.chars().collect();
    let (mut pi, mut ti) = (0usize, 0usize);
    let (mut star, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_t = ti;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use BinaryOp::*;

    #[test]
    fn comparisons_with_null_are_null() {
        assert_eq!(
            binary_op(Eq, &Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            binary_op(Lt, &Value::Int(1), &Value::Null).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        let t = Value::Bool(true);
        let f = Value::Bool(false);
        let n = Value::Null;
        assert_eq!(binary_op(And, &f, &n).unwrap(), f);
        assert_eq!(binary_op(And, &t, &n).unwrap(), n);
        assert_eq!(binary_op(Or, &t, &n).unwrap(), t);
        assert_eq!(binary_op(Or, &f, &n).unwrap(), n);
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(
            binary_op(Add, &Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            binary_op(Div, &Value::Int(6), &Value::Int(3)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            binary_op(Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            binary_op(Div, &Value::Int(7), &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            binary_op(Mod, &Value::Int(7), &Value::Int(3)).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn mixed_numeric_promotes() {
        assert_eq!(
            binary_op(Mul, &Value::Int(2), &Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn string_arith_errors() {
        assert!(binary_op(Add, &Value::str("a"), &Value::Int(1)).is_err());
    }

    #[test]
    fn date_plus_days() {
        let d = Value::date(2011, 1, 1);
        assert_eq!(
            binary_op(Add, &d, &Value::Int(30)).unwrap(),
            Value::date(2011, 1, 31)
        );
        assert_eq!(
            binary_op(Sub, &d, &Value::Int(1)).unwrap(),
            Value::date(2010, 12, 31)
        );
    }

    #[test]
    fn date_interval_months() {
        let d = Value::date(2011, 1, 1);
        assert_eq!(
            date_interval(&d, 6, 0, true).unwrap(),
            Value::date(2011, 7, 1)
        );
        assert_eq!(
            date_interval(&d, 0, 90, false).unwrap(),
            Value::date(2010, 10, 3)
        );
        assert_eq!(
            date_interval(&Value::Null, 1, 0, true).unwrap(),
            Value::Null
        );
        assert!(date_interval(&Value::Int(1), 1, 0, true).is_err());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("A%", "Argentina"));
        assert!(!like_match("A%", "Brazil"));
        assert!(like_match("%land", "Finland"));
        assert!(like_match("%an%", "France"));
        assert!(like_match("_razil", "Brazil"));
        assert!(like_match("%", ""));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(like_match("a%b%c", "a__b__c"));
        assert!(!like_match("a%b%c", "a__c__b"));
        assert!(like_match("%%x", "x"));
    }

    #[test]
    fn cross_type_comparison() {
        assert_eq!(
            binary_op(Eq, &Value::Int(1), &Value::Float(1.0)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            binary_op(Lt, &Value::str("a"), &Value::str("b")).unwrap(),
            Value::Bool(true)
        );
    }
}
