//! Primitive cell-level updates with undo.
//!
//! QIRANA represents each support-set instance as an update over the stored
//! database (§3.2) and needs to apply and roll back such updates millions of
//! times. The engine-level primitive is a [`CellWrite`]; applying a batch of
//! writes returns the inverse batch. SQL `UPDATE` statements are also
//! supported for updates expressed as text (the paper stores them in an
//! `UpdateQueries` table).

use crate::ast::{SelectItem, SelectStmt, Statement, UpdateStmt};
use crate::database::Database;
use crate::error::{EngineError, Result};
use crate::exec::{eval_row_expr, ExecContext};
use crate::parser::parse_statement;
use crate::plan::plan_select;
use crate::value::Value;

/// One cell assignment: `table.rows[row][col] = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellWrite {
    pub table: usize,
    pub row: usize,
    pub col: usize,
    pub value: Value,
}

/// Applies the writes in order and returns the inverse writes (in reverse
/// order, so applying the result undoes the batch even when writes overlap).
pub fn apply_writes(db: &mut Database, writes: &[CellWrite]) -> Vec<CellWrite> {
    let mut undo = Vec::with_capacity(writes.len());
    for w in writes {
        let old = db
            .table_at_mut(w.table)
            .set_cell(w.row, w.col, w.value.clone());
        undo.push(CellWrite {
            table: w.table,
            row: w.row,
            col: w.col,
            value: old,
        });
    }
    undo.reverse();
    undo
}

/// Parses and applies a SQL `UPDATE` statement; returns the undo writes.
pub fn apply_update_sql(db: &mut Database, sql: &str) -> Result<Vec<CellWrite>> {
    match parse_statement(sql)? {
        Statement::Update(u) => apply_update_stmt(db, &u),
        Statement::Select(_) => Err(EngineError::plan("expected an UPDATE statement")),
    }
}

/// Applies a parsed `UPDATE` statement; returns the undo writes.
pub fn apply_update_stmt(db: &mut Database, stmt: &UpdateStmt) -> Result<Vec<CellWrite>> {
    let table_idx = db
        .table_index(&stmt.table)
        .ok_or_else(|| EngineError::plan(format!("unknown table {}", stmt.table)))?;

    // Resolve the assignment expressions and WHERE clause against the target
    // table by planning a synthetic single-table SELECT.
    let synthetic = SelectStmt {
        distinct: false,
        projection: stmt
            .assignments
            .iter()
            .map(|(_, e)| SelectItem::Expr {
                expr: e.clone(),
                alias: None,
            })
            .collect(),
        from: vec![crate::ast::TableRef::Table {
            name: stmt.table.clone(),
            alias: None,
        }],
        where_clause: stmt.where_clause.clone(),
        group_by: vec![],
        having: None,
        order_by: vec![],
        limit: None,
    };
    let plan = plan_select(&synthetic, db)?;
    let cols: Vec<usize> = stmt
        .assignments
        .iter()
        .map(|(name, _)| {
            db.table_at(table_idx)
                .schema
                .column_index(name)
                .ok_or_else(|| {
                    EngineError::plan(format!("unknown column {name} in {}", stmt.table))
                })
        })
        .collect::<Result<_>>()?;

    // Evaluate per row; collect writes first (so evaluation sees the
    // pre-update state throughout, as SQL requires).
    let mut writes = Vec::new();
    {
        let ctx = ExecContext::new(db);
        let table = db.table_at(table_idx);
        for (ri, row) in table.rows.iter().enumerate() {
            if let Some(f) = &plan.filter {
                if eval_row_expr(f, row, &ctx)?.as_bool3() != Some(true) {
                    continue;
                }
            }
            for (ci, proj) in cols.iter().zip(&plan.projections) {
                let v = eval_row_expr(&proj.expr, row, &ctx)?;
                writes.push(CellWrite {
                    table: table_idx,
                    row: ri,
                    col: *ci,
                    value: v,
                });
            }
        }
    }
    Ok(apply_writes(db, &writes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![
                vec![1.into(), "m".into(), 25.into()],
                vec![2.into(), "f".into(), 13.into()],
            ],
        );
        db
    }

    #[test]
    fn apply_and_undo_roundtrip() {
        let mut db = db();
        let before = db.table("User").unwrap().rows.clone();
        let writes = vec![
            CellWrite {
                table: 0,
                row: 0,
                col: 1,
                value: "f".into(),
            },
            CellWrite {
                table: 0,
                row: 1,
                col: 2,
                value: 99.into(),
            },
        ];
        let undo = apply_writes(&mut db, &writes);
        assert_eq!(db.table("User").unwrap().rows[0][1], Value::str("f"));
        assert_eq!(db.table("User").unwrap().rows[1][2], Value::Int(99));
        apply_writes(&mut db, &undo);
        assert_eq!(db.table("User").unwrap().rows, before);
    }

    #[test]
    fn overlapping_writes_undo_in_reverse() {
        let mut db = db();
        let writes = vec![
            CellWrite {
                table: 0,
                row: 0,
                col: 2,
                value: 1.into(),
            },
            CellWrite {
                table: 0,
                row: 0,
                col: 2,
                value: 2.into(),
            },
        ];
        let undo = apply_writes(&mut db, &writes);
        assert_eq!(db.table("User").unwrap().rows[0][2], Value::Int(2));
        apply_writes(&mut db, &undo);
        assert_eq!(db.table("User").unwrap().rows[0][2], Value::Int(25));
    }

    #[test]
    fn sql_update_with_where() {
        let mut db = db();
        let undo = apply_update_sql(&mut db, "UPDATE User SET gender = 'f' WHERE uid = 1").unwrap();
        assert_eq!(db.table("User").unwrap().rows[0][1], Value::str("f"));
        assert_eq!(undo.len(), 1);
        apply_writes(&mut db, &undo);
        assert_eq!(db.table("User").unwrap().rows[0][1], Value::str("m"));
    }

    #[test]
    fn sql_update_expression_sees_pre_state() {
        let mut db = db();
        apply_update_sql(&mut db, "UPDATE User SET age = age + 1").unwrap();
        let ages: Vec<i64> = db
            .table("User")
            .unwrap()
            .rows
            .iter()
            .map(|r| r[2].as_i64().unwrap())
            .collect();
        assert_eq!(ages, vec![26, 14]);
    }

    #[test]
    fn sql_update_unknown_column_errors() {
        let mut db = db();
        assert!(apply_update_sql(&mut db, "UPDATE User SET nope = 1").is_err());
        assert!(apply_update_sql(&mut db, "UPDATE Missing SET age = 1").is_err());
    }
}
