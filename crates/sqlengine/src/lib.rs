//! # qirana-sqlengine
//!
//! A from-scratch, in-memory relational SQL engine — the DBMS substrate of
//! the QIRANA query-pricing framework (the original prototype ran on MySQL;
//! see `DESIGN.md` at the repository root for the substitution rationale).
//!
//! The engine supports the query class QIRANA prices:
//!
//! * select-project-join blocks (implicit and explicit inner joins) under
//!   **bag semantics**, with hash-join execution and predicate pushdown;
//! * aggregation (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, `DISTINCT` forms) with
//!   `GROUP BY` and `HAVING`;
//! * `DISTINCT`, `ORDER BY`, `LIMIT`, derived tables, and `IN`/`EXISTS`/
//!   scalar subqueries including correlated ones;
//! * `UPDATE` statements and primitive cell writes with undo.
//!
//! Two pricing-specific capabilities distinguish it from a generic engine:
//! **table overrides** (execute a plan as if a relation contained different
//! rows) and **open plans** ([`plan::ResolvedSelect`] exposes its structure
//! and slot-rewriting helpers so the pricing optimizer can derive augmented,
//! unrolled, and batch queries programmatically).
//!
//! ## Quick example
//!
//! ```
//! use qirana_sqlengine::{Database, TableSchema, ColumnDef, DataType, query};
//!
//! let mut db = Database::new();
//! db.add_table(
//!     TableSchema::new(
//!         "User",
//!         vec![
//!             ColumnDef::new("uid", DataType::Int),
//!             ColumnDef::new("gender", DataType::Str),
//!         ],
//!         &["uid"],
//!     ),
//!     vec![
//!         vec![1.into(), "m".into()],
//!         vec![2.into(), "f".into()],
//!     ],
//! );
//! let out = query(&db, "SELECT count(*) FROM User WHERE gender = 'f'").unwrap();
//! assert_eq!(out.rows[0][0], 1i64.into());
//! ```

pub mod ast;
pub mod database;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod schema;
pub mod table;
pub mod update;
pub mod validate;
pub mod value;

pub use ast::{SelectStmt, Statement};
pub use database::Database;
pub use error::{BudgetResource, EngineError, Result};
pub use exec::{execute, ExecBudget, ExecContext, QueryOutput};
pub use fingerprint::{fingerprint, fingerprint_bundle, output_row_hash, Fingerprint};
pub use parser::{parse_select, parse_statement};
pub use plan::{plan_select, PExpr, PRelation, ResolvedSelect};
pub use schema::{ColumnDef, DataType, Domain, ForeignKey, TableSchema};
pub use table::{Row, Table};
pub use update::{apply_update_sql, apply_writes, CellWrite};
pub use validate::{check_database, Violation};
pub use value::{lossless_f64, Value};

// The pricing layer's parallel executor shares `&Database` and `&ResolvedSelect`
// across a scoped worker pool and moves errors/outputs between threads. These
// compile-time assertions pin the thread-safety contract: every interior-mutable
// piece of execution state (budget meters, subquery caches) must stay inside the
// per-execution `ExecContext`, never inside the shared plan or database types.
const _: () = {
    const fn shareable<T: Send + Sync>() {}
    const fn sendable<T: Send>() {}
    shareable::<Database>();
    shareable::<ResolvedSelect>();
    shareable::<Table>();
    shareable::<Value>();
    shareable::<ExecBudget>();
    sendable::<EngineError>();
    sendable::<QueryOutput>();
    sendable::<Fingerprint>();
};

/// Parses, plans, and executes a SELECT statement in one call.
pub fn query(db: &Database, sql: &str) -> Result<QueryOutput> {
    let stmt = parse_select(sql)?;
    let plan = plan_select(&stmt, db)?;
    execute(&plan, &ExecContext::new(db))
}

/// Plans a SQL string into an executable plan (parse + resolve).
pub fn prepare(db: &Database, sql: &str) -> Result<ResolvedSelect> {
    plan_select(&parse_select(sql)?, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::{ColumnDef, DataType, TableSchema};

    #[test]
    fn end_to_end_query() {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            (0..10i64)
                .map(|i| vec![i.into(), (i * i).into()])
                .collect::<Vec<_>>(),
        );
        let out = query(&db, "select sum(v) from T where id < 4").unwrap();
        assert_eq!(out.rows[0][0], Value::Int(1 + 4 + 9));
    }

    #[test]
    fn prepare_then_execute_with_override() {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            vec![vec![1.into(), 10.into()]],
        );
        let plan = prepare(&db, "select v from T").unwrap();
        let alt: Vec<Row> = vec![vec![1.into(), 77.into()]];
        let ctx = ExecContext::with_override(&db, 0, &alt);
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(77)]]);
    }
}
