//! Order-independent 128-bit result fingerprints.
//!
//! QIRANA's pricing algorithms never compare query outputs row by row — they
//! only test *agreement*: `Q(D) =? Q(D')` (Algorithms 1–3 of the paper hash
//! the output). We fingerprint a result as a 128-bit value:
//!
//! * each row hashes to a 128-bit value via two independently-seeded 64-bit
//!   mixers (position-sensitive within the row);
//! * an unordered result combines row hashes with wrapping addition, which is
//!   commutative and multiset-sensitive (duplicate rows shift the sum), so
//!   bag semantics are respected;
//! * an `ORDER BY` result chains row hashes sequentially instead, making the
//!   fingerprint order-sensitive.
//!
//! Collisions are a *pricing* correctness concern, not just a hashing one: a
//! colliding pair of distinct outputs zeroes a disagreement bit and
//! underprices the query. Two sources must be distinguished:
//!
//! * **Random 128-bit collisions.** Across the `S ≤ 10⁶` agreement tests of
//!   a pricing call the birthday bound gives probability below
//!   `S² / 2¹²⁹ < 10⁻²⁶` — far below any measurable effect on prices.
//! * **Structural collisions** from value canonicalization. Equal values
//!   must fingerprint equally (`1` and `1.0` collide *by design* because
//!   `sql_eq` groups them together), but the canonical form must be
//!   lossless: an earlier revision canonicalized every integer through an
//!   `i64 → f64` cast, which is deterministic — probability 1, not 10⁻²⁶ —
//!   in collapsing distinct integers beyond 2^53 (`2^53` and `2^53 + 1`
//!   fingerprinted identically). Integers with no exact `f64` now hash
//!   their own bits under a distinct tag (see [`write_value`]), so only
//!   genuinely equal numerics share a fingerprint.

use crate::exec::QueryOutput;
use crate::value::{lossless_f64, Value};

/// A 128-bit fingerprint of a query result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

const SEED_LO: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED_HI: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// splitmix64 finalizer — a fast, well-distributed 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental 2×64-bit hasher.
#[derive(Clone, Copy)]
struct H2 {
    lo: u64,
    hi: u64,
}

impl H2 {
    fn new(seed_lo: u64, seed_hi: u64) -> Self {
        H2 {
            lo: seed_lo,
            hi: seed_hi,
        }
    }

    #[inline]
    fn write(&mut self, w: u64) {
        self.lo = mix64(self.lo ^ w);
        self.hi = mix64(self.hi.rotate_left(23) ^ w.wrapping_mul(SEED_HI));
    }

    fn finish(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

fn write_value(h: &mut H2, v: &Value) {
    match v {
        Value::Null => h.write(0x10),
        Value::Bool(b) => {
            h.write(0x20);
            h.write(*b as u64);
        }
        // Ints and floats that compare equal must fingerprint equally
        // (mirrors Value's Hash impl). An integer with no exact f64 equals
        // no float; it hashes its own bits under a distinct tag so 2^53
        // and 2^53 + 1 stay distinguishable.
        Value::Int(i) => match lossless_f64(*i) {
            Some(f) => {
                h.write(0x30);
                h.write(f.to_bits());
            }
            None => {
                h.write(0x31);
                h.write(*i as u64);
            }
        },
        Value::Float(f) => {
            h.write(0x30);
            let f = if *f == 0.0 { 0.0 } else { *f };
            h.write(f.to_bits());
        }
        Value::Date(d) => {
            h.write(0x40);
            h.write(*d as u64);
        }
        Value::Str(s) => {
            h.write(0x50);
            h.write(s.len() as u64);
            for chunk in s.as_bytes().chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                h.write(u64::from_le_bytes(buf));
            }
        }
    }
}

fn row_hash(row: &[Value]) -> u128 {
    let mut h = H2::new(SEED_LO, SEED_HI);
    h.write(row.len() as u64);
    for v in row {
        write_value(&mut h, v);
    }
    h.finish()
}

/// The per-row hash an unordered [`fingerprint`] sums: exposed so the
/// pricing layer's incremental (delta) evaluator can adjust a cached bag
/// fingerprint by adding/removing individual row contributions instead of
/// re-hashing the whole output. Uses the same lossless value
/// canonicalization as [`fingerprint`], so `sql_eq`-equal rows hash
/// equally.
pub fn output_row_hash(row: &[Value]) -> u128 {
    row_hash(row)
}

/// Fingerprints a query output (bag-equality for unordered results,
/// sequence-equality for ordered ones).
pub fn fingerprint(out: &QueryOutput) -> Fingerprint {
    let mut acc: u128 = out.rows.len() as u128 ^ ((out.columns.len() as u128) << 64);
    if out.ordered {
        for r in &out.rows {
            // Sequential chaining: order-sensitive.
            acc = acc
                .rotate_left(1)
                .wrapping_mul(0x1000_0000_0000_0000_0000_0000_0000_0159)
                ^ row_hash(r);
        }
    } else {
        for r in &out.rows {
            acc = acc.wrapping_add(row_hash(r));
        }
    }
    Fingerprint(acc)
}

/// Fingerprints several outputs as one bundle: the bundle fingerprint is the
/// sequential combination of the member fingerprints (bundles are ordered —
/// `Q = (Q1, ..., Qn)`).
pub fn fingerprint_bundle(outs: &[QueryOutput]) -> Fingerprint {
    let mut acc: u128 = 0x5153_4cb9;
    for o in outs {
        acc = acc.rotate_left(5) ^ fingerprint(o).0.wrapping_mul(3);
    }
    Fingerprint(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(rows: Vec<Vec<Value>>, ordered: bool) -> QueryOutput {
        QueryOutput {
            columns: vec!["a".into()],
            rows,
            ordered,
        }
    }

    #[test]
    fn unordered_is_order_independent() {
        let a = out(vec![vec![1.into()], vec![2.into()]], false);
        let b = out(vec![vec![2.into()], vec![1.into()]], false);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn ordered_is_order_sensitive() {
        let a = out(vec![vec![1.into()], vec![2.into()]], true);
        let b = out(vec![vec![2.into()], vec![1.into()]], true);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn multiset_sensitive() {
        let a = out(vec![vec![1.into()], vec![1.into()]], false);
        let b = out(vec![vec![1.into()]], false);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn value_discrimination() {
        let a = out(vec![vec![Value::str("ab")]], false);
        let b = out(vec![vec![Value::str("ba")]], false);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let c = out(vec![vec![Value::Null]], false);
        let d = out(vec![vec![Value::Int(0)]], false);
        assert_ne!(fingerprint(&c), fingerprint(&d));
    }

    #[test]
    fn int_float_equivalence() {
        let a = out(vec![vec![Value::Int(5)]], false);
        let b = out(vec![vec![Value::Float(5.0)]], false);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn large_ints_do_not_collide() {
        // Regression: the lossy i64 → f64 canonicalization fingerprinted
        // 2^53 and 2^53 + 1 identically, silently zeroing disagreement
        // bits (an underpricing bug, not just a hash quality issue).
        let p53 = 1i64 << 53;
        let a = out(vec![vec![Value::Int(p53)]], false);
        let b = out(vec![vec![Value::Int(p53 + 1)]], false);
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // Equal Int/Float pairs still collide by design at the boundary.
        let c = out(vec![vec![Value::Float(p53 as f64)]], false);
        assert_eq!(fingerprint(&a), fingerprint(&c));
        // i64::MAX has no exact f64; it must not collide with the float
        // its cast rounds to, nor with its neighbors.
        let m = out(vec![vec![Value::Int(i64::MAX)]], false);
        let mf = out(vec![vec![Value::Float(i64::MAX as f64)]], false);
        let m1 = out(vec![vec![Value::Int(i64::MAX - 1)]], false);
        assert_ne!(fingerprint(&m), fingerprint(&mf));
        assert_ne!(fingerprint(&m), fingerprint(&m1));
        // A raw-bits integer must not alias the float sharing its bit
        // pattern: k below is odd and > 2^53 (no exact f64, raw-bits
        // path), while k reinterpreted as f64 is nextafter(1.0, inf).
        let k = (1.0f64.to_bits() + 1) as i64;
        let raw = out(vec![vec![Value::Int(k)]], false);
        let aliased = out(vec![vec![Value::Float(f64::from_bits(k as u64))]], false);
        assert_ne!(fingerprint(&raw), fingerprint(&aliased));
    }

    #[test]
    fn row_boundaries_matter() {
        // [("a","b")] vs [("ab","")] must differ.
        let a = QueryOutput {
            columns: vec!["x".into(), "y".into()],
            rows: vec![vec![Value::str("a"), Value::str("b")]],
            ordered: false,
        };
        let b = QueryOutput {
            columns: vec!["x".into(), "y".into()],
            rows: vec![vec![Value::str("ab"), Value::str("")]],
            ordered: false,
        };
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn bundle_order_sensitive() {
        let a = out(vec![vec![1.into()]], false);
        let b = out(vec![vec![2.into()]], false);
        assert_ne!(
            fingerprint_bundle(&[a.clone(), b.clone()]),
            fingerprint_bundle(&[b, a])
        );
    }

    #[test]
    fn empty_vs_one_null_row() {
        let a = out(vec![], false);
        let b = out(vec![vec![Value::Null]], false);
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }
}
