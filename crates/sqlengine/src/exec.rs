//! Query execution.
//!
//! A volcano-free, materializing executor: the FROM clause is evaluated with
//! greedy hash-join ordering (single-relation predicates are pushed down as
//! scan filters, equality conjuncts between two relations become hash joins,
//! everything else is a residual filter applied as soon as its relations are
//! bound), then grouping/aggregation, HAVING, projection, DISTINCT,
//! ORDER BY, and LIMIT run as bulk passes.
//!
//! Two features exist specifically for the pricing layer:
//!
//! * **Table overrides** ([`ExecContext::with_override`]): execute a plan as
//!   if relation `R` contained different rows — this is how QIRANA evaluates
//!   `Q((D ∖ R) ∪ {u⁺})` without touching the stored instance (§4.1) and how
//!   batch queries run over the synthetic `R⁺` relation (§4.2).
//! * **Open plans**: the executor accepts programmatically modified
//!   [`ResolvedSelect`] values (key-augmented, unrolled, widened).

use crate::ast::{AggFunc, BinaryOp, UnaryOp};
use crate::database::Database;
use crate::error::{BudgetResource, EngineError, Result};
use crate::expr::{binary_op, date_interval, like_match};
use crate::plan::{AggSpec, PExpr, PRelation, ResolvedSelect};
use crate::table::Row;
use crate::value::Value;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::{Duration, Instant};

/// Resource limits for one execution context.
///
/// All limits are optional; the default is unlimited. The executor checks
/// them **cooperatively** at every row-materialization point (scan
/// prefilters, hash-join build and probe, cartesian products, group
/// creation, projection), so a tripped budget surfaces as
/// [`EngineError::BudgetExceeded`] within a bounded amount of extra work —
/// no partial results are returned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecBudget {
    /// Wall-clock deadline, measured from [`ExecContext`] creation (or the
    /// last [`ExecContext::set_budget`] call).
    pub timeout: Option<Duration>,
    /// Cap on materialized rows (intermediate and output combined).
    pub max_rows: Option<u64>,
    /// Cap on estimated bytes of materialized row data. The estimate counts
    /// `size_of::<Value>()` per cell and ignores string heap allocations —
    /// it is a safety net against runaway intermediates, not an allocator
    /// audit.
    pub max_bytes: Option<u64>,
}

impl ExecBudget {
    /// No limits (the default).
    pub const UNLIMITED: ExecBudget = ExecBudget {
        timeout: None,
        max_rows: None,
        max_bytes: None,
    };

    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    pub fn with_max_rows(mut self, max_rows: u64) -> Self {
        self.max_rows = Some(max_rows);
        self
    }

    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// True when no limit is set (the meter fast-path).
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.max_rows.is_none() && self.max_bytes.is_none()
    }
}

/// Interior-mutable consumption meter for an [`ExecBudget`].
///
/// Cloning a context clones the meter *state*: the clone continues from the
/// parent's consumption at clone time, and the two track independently
/// afterwards.
#[derive(Debug, Clone)]
struct BudgetMeter {
    budget: ExecBudget,
    start: Instant,
    rows: Cell<u64>,
    bytes: Cell<u64>,
    /// Charge-call counter; the wall clock is only read every
    /// [`DEADLINE_CHECK_PERIOD`] charges to keep per-row overhead negligible.
    tick: Cell<u32>,
}

/// How many budget charges elapse between wall-clock reads.
const DEADLINE_CHECK_PERIOD: u32 = 64;

impl BudgetMeter {
    fn new(budget: ExecBudget) -> Self {
        BudgetMeter {
            budget,
            // qirana-lint::allow(QL004): BudgetMeter IS the sanctioned
            start: Instant::now(), // deadline source for execution budgets

            rows: Cell::new(0),
            bytes: Cell::new(0),
            tick: Cell::new(0),
        }
    }

    fn charge(&self, rows: u64, bytes: u64) -> Result<()> {
        let b = &self.budget;
        if b.is_unlimited() {
            return Ok(());
        }
        let total_rows = self.rows.get().saturating_add(rows);
        self.rows.set(total_rows);
        let total_bytes = self.bytes.get().saturating_add(bytes);
        self.bytes.set(total_bytes);
        if let Some(cap) = b.max_rows {
            if total_rows > cap {
                return Err(EngineError::BudgetExceeded {
                    resource: BudgetResource::Rows,
                    limit: cap,
                });
            }
        }
        if let Some(cap) = b.max_bytes {
            if total_bytes > cap {
                return Err(EngineError::BudgetExceeded {
                    resource: BudgetResource::Memory,
                    limit: cap,
                });
            }
        }
        if b.timeout.is_some() {
            let tick = self.tick.get().wrapping_add(1);
            self.tick.set(tick);
            if tick.is_multiple_of(DEADLINE_CHECK_PERIOD) {
                self.check_deadline()?;
            }
        }
        Ok(())
    }

    fn check_deadline(&self) -> Result<()> {
        if let Some(t) = self.budget.timeout {
            if self.start.elapsed() > t {
                return Err(EngineError::BudgetExceeded {
                    resource: BudgetResource::WallClock,
                    limit: t.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// Execution context: the database, optional per-table row overrides, and
/// an optional resource budget.
#[derive(Clone)]
pub struct ExecContext<'a> {
    db: &'a Database,
    overrides: Vec<(usize, &'a [Row])>,
    meter: BudgetMeter,
}

impl<'a> ExecContext<'a> {
    /// Context executing against the stored instance.
    pub fn new(db: &'a Database) -> Self {
        ExecContext {
            db,
            overrides: Vec::new(),
            meter: BudgetMeter::new(ExecBudget::UNLIMITED),
        }
    }

    /// Context where table `table_idx`'s rows are replaced by `rows`.
    pub fn with_override(db: &'a Database, table_idx: usize, rows: &'a [Row]) -> Self {
        ExecContext {
            db,
            overrides: vec![(table_idx, rows)],
            meter: BudgetMeter::new(ExecBudget::UNLIMITED),
        }
    }

    /// Installs a resource budget; the wall-clock deadline starts now.
    /// Resets any consumption already metered on this context.
    pub fn set_budget(&mut self, budget: ExecBudget) {
        self.meter = BudgetMeter::new(budget);
    }

    /// Builder form of [`ExecContext::set_budget`].
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.set_budget(budget);
        self
    }

    /// The installed budget (default [`ExecBudget::UNLIMITED`]).
    pub fn budget(&self) -> ExecBudget {
        self.meter.budget
    }

    /// Rows charged against the budget so far.
    pub fn rows_charged(&self) -> u64 {
        self.meter.rows.get()
    }

    /// Estimated bytes charged against the budget so far.
    pub fn bytes_charged(&self) -> u64 {
        self.meter.bytes.get()
    }

    /// Charges `n` materialized rows of `row_width` cells each.
    fn charge_rows(&self, n: u64, row_width: usize) -> Result<()> {
        self.meter
            .charge(n, n * (row_width * std::mem::size_of::<Value>()) as u64)
    }

    /// Adds (or replaces) an override.
    pub fn add_override(&mut self, table_idx: usize, rows: &'a [Row]) {
        if let Some(e) = self.overrides.iter_mut().find(|(t, _)| *t == table_idx) {
            e.1 = rows;
        } else {
            self.overrides.push((table_idx, rows));
        }
    }

    /// The database under execution.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    fn rows_for(&self, table_idx: usize) -> &'a [Row] {
        self.overrides
            .iter()
            .find(|(t, _)| *t == table_idx)
            .map(|(_, r)| *r)
            .unwrap_or(&self.db.table_at(table_idx).rows)
    }
}

/// The materialized result of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// True iff the query had an ORDER BY (row order is semantically
    /// meaningful and agreement checks must be order-sensitive).
    pub ordered: bool,
}

/// Executes a resolved plan.
pub fn execute(plan: &ResolvedSelect, ctx: &ExecContext<'_>) -> Result<QueryOutput> {
    execute_nested(plan, ctx, &[])
}

/// Evaluates a row-context expression against a single row.
///
/// Used by the update machinery and by QIRANA's static disagreement checks
/// (evaluating `C[u⁺]` on a candidate tuple without running the query).
/// Subqueries inside `e` execute against `ctx`.
pub fn eval_row_expr(e: &PExpr, row: &[Value], ctx: &ExecContext<'_>) -> Result<Value> {
    let cache: SubCache = RefCell::new(HashMap::new());
    eval(
        e,
        &Env {
            row,
            aggs: None,
            outer: &[],
            ctx,
            cache: &cache,
        },
    )
}

/// Cached result of an uncorrelated subquery, computed once per execution.
enum CachedSub {
    Exists(bool),
    Set {
        set: HashSet<Value>,
        has_null: bool,
    },
    Scalar(Value),
    /// Decorrelated EXISTS: the inner keys that have at least one row.
    SemiKeys {
        keys: HashSet<Value>,
        outer_slot: usize,
    },
    /// Decorrelated IN: inner key → (projected values, saw NULL value).
    InIndex {
        map: HashMap<Value, (HashSet<Value>, bool)>,
        outer_slot: usize,
    },
    /// Decorrelated scalar: inner key → (value, row count); `empty` is the
    /// value the subquery yields when no inner row matches (NULL, or the
    /// empty-input aggregate row for a global aggregate).
    ScalarIndex {
        map: HashMap<Value, (Value, usize)>,
        empty: Value,
        outer_slot: usize,
    },
}

type SubCache = RefCell<HashMap<usize, CachedSub>>;

/// Evaluation environment for one row.
struct Env<'e> {
    row: &'e [Value],
    aggs: Option<&'e [Value]>,
    outer: &'e [&'e [Value]],
    ctx: &'e ExecContext<'e>,
    cache: &'e SubCache,
}

fn execute_nested(
    plan: &ResolvedSelect,
    ctx: &ExecContext<'_>,
    outer: &[&[Value]],
) -> Result<QueryOutput> {
    // Catch an already-expired deadline before doing any work (the periodic
    // in-loop checks only fire once enough rows have been charged).
    ctx.meter.check_deadline()?;
    let cache: SubCache = RefCell::new(HashMap::new());
    let joined = run_from(plan, ctx, outer, &cache)?;

    let columns: Vec<String> = plan.projections.iter().map(|p| p.name.clone()).collect();
    let mut rows: Vec<Row>;

    if plan.grouped {
        rows = run_grouped(plan, ctx, outer, &cache, joined)?;
    } else {
        rows = Vec::with_capacity(joined.len());
        for r in &joined {
            let env = Env {
                row: r,
                aggs: None,
                outer,
                ctx,
                cache: &cache,
            };
            let mut out = Vec::with_capacity(plan.projections.len());
            for p in &plan.projections {
                out.push(eval(&p.expr, &env)?);
            }
            ctx.charge_rows(1, out.len())?;
            rows.push(out);
        }
        if !plan.order_by.is_empty() {
            // Non-grouped ORDER BY keys are row-context expressions; sort the
            // projected rows by keys computed from the source rows.
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for (src, out) in joined.iter().zip(rows) {
                let env = Env {
                    row: src,
                    aggs: None,
                    outer,
                    ctx,
                    cache: &cache,
                };
                let mut key = Vec::with_capacity(plan.order_by.len());
                for (e, _) in &plan.order_by {
                    key.push(eval(e, &env)?);
                }
                keyed.push((key, out));
            }
            sort_keyed(&mut keyed, &plan.order_by);
            rows = keyed.into_iter().map(|(_, r)| r).collect();
        }
    }

    if plan.distinct {
        let mut seen = HashSet::with_capacity(rows.len());
        rows.retain(|r| seen.insert(r.clone()));
    }
    if let Some(limit) = plan.limit {
        rows.truncate(limit as usize);
    }
    Ok(QueryOutput {
        columns,
        rows,
        ordered: !plan.order_by.is_empty(),
    })
}

fn sort_keyed(keyed: &mut [(Vec<Value>, Row)], order_by: &[(PExpr, bool)]) {
    keyed.sort_by(|(a, _), (b, _)| {
        for (i, (_, asc)) in order_by.iter().enumerate() {
            let ord = a[i].total_cmp(&b[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

// ---------------------------------------------------------------------------
// Grouping
// ---------------------------------------------------------------------------

fn run_grouped(
    plan: &ResolvedSelect,
    ctx: &ExecContext<'_>,
    outer: &[&[Value]],
    cache: &SubCache,
    joined: Vec<Row>,
) -> Result<Vec<Row>> {
    struct Group {
        first_row: Row,
        accums: Vec<Accum>,
    }
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Group> = HashMap::new();

    for row in &joined {
        let env = Env {
            row,
            aggs: None,
            outer,
            ctx,
            cache,
        };
        let mut key = Vec::with_capacity(plan.group_by.len());
        for g in &plan.group_by {
            key.push(eval(g, &env)?);
        }
        let group = match groups.get_mut(&key) {
            Some(g) => g,
            None => {
                ctx.charge_rows(1, key.len() + row.len())?;
                order.push(key.clone());
                groups.entry(key).or_insert_with(|| Group {
                    first_row: row.clone(),
                    accums: plan.aggregates.iter().map(Accum::new).collect(),
                })
            }
        };
        for (acc, spec) in group.accums.iter_mut().zip(&plan.aggregates) {
            match &spec.arg {
                None => acc.update_star(),
                Some(a) => {
                    let v = eval(a, &env)?;
                    acc.update(v);
                }
            }
        }
    }

    // Global aggregate over an empty input still yields one group.
    if groups.is_empty() && plan.group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(
            Vec::new(),
            Group {
                first_row: vec![Value::Null; plan.width],
                accums: plan.aggregates.iter().map(Accum::new).collect(),
            },
        );
    }

    let mut out_rows: Vec<Row> = Vec::with_capacity(groups.len());
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    for key in &order {
        let g = &groups[key];
        let agg_vals: Vec<Value> = g.accums.iter().map(Accum::finalize).collect();
        let env = Env {
            row: &g.first_row,
            aggs: Some(&agg_vals),
            outer,
            ctx,
            cache,
        };
        if let Some(h) = &plan.having {
            if eval(h, &env)?.as_bool3() != Some(true) {
                continue;
            }
        }
        let mut out = Vec::with_capacity(plan.projections.len());
        for p in &plan.projections {
            out.push(eval(&p.expr, &env)?);
        }
        if !plan.order_by.is_empty() {
            let mut k = Vec::with_capacity(plan.order_by.len());
            for (e, _) in &plan.order_by {
                k.push(eval(e, &env)?);
            }
            sort_keys.push(k);
        }
        out_rows.push(out);
    }

    if !plan.order_by.is_empty() {
        let mut keyed: Vec<(Vec<Value>, Row)> = sort_keys.into_iter().zip(out_rows).collect();
        sort_keyed(&mut keyed, &plan.order_by);
        out_rows = keyed.into_iter().map(|(_, r)| r).collect();
    }
    Ok(out_rows)
}

/// Streaming aggregate accumulator.
enum Accum {
    Count {
        n: i64,
    },
    Distinct {
        func: AggFunc,
        // A `BTreeSet`, not a `HashSet`: `finalize` folds the set with
        // float addition, which is non-associative, so iteration order is
        // part of the result. `Value`'s total order keeps it stable.
        vals: BTreeSet<Value>,
    },
    Sum {
        i: i64,
        f: f64,
        any_float: bool,
        seen: bool,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
}

impl Accum {
    fn new(spec: &AggSpec) -> Accum {
        match (spec.func, spec.distinct) {
            (AggFunc::Min, _) => Accum::MinMax {
                best: None,
                is_min: true,
            },
            (AggFunc::Max, _) => Accum::MinMax {
                best: None,
                is_min: false,
            },
            (f, true) => Accum::Distinct {
                func: f,
                vals: BTreeSet::new(),
            },
            (AggFunc::Count, false) => Accum::Count { n: 0 },
            (AggFunc::Sum, false) => Accum::Sum {
                i: 0,
                f: 0.0,
                any_float: false,
                seen: false,
            },
            (AggFunc::Avg, false) => Accum::Avg { sum: 0.0, n: 0 },
        }
    }

    /// `COUNT(*)`: counts every row, NULLs included.
    fn update_star(&mut self) {
        if let Accum::Count { n } = self {
            *n += 1;
        } else {
            // qirana-lint::allow(QL003, QL007): the planner rejects other arg-less
            unreachable!("only COUNT may have no argument"); // aggregates
        }
    }

    /// Feeds one value; NULLs are skipped per SQL aggregate semantics.
    fn update(&mut self, v: Value) {
        if v.is_null() {
            return;
        }
        match self {
            Accum::Count { n } => *n += 1,
            Accum::Distinct { vals, .. } => {
                vals.insert(v);
            }
            Accum::Sum {
                i,
                f,
                any_float,
                seen,
            } => {
                *seen = true;
                match v {
                    Value::Int(x) => {
                        *i = i.wrapping_add(x);
                        // qirana-lint::allow(QL002): float shadow-sum, only
                        *f += x as f64; // consulted under SQL double semantics
                    }
                    other => {
                        *any_float = true;
                        *f += other.as_f64().unwrap_or(0.0);
                    }
                }
            }
            Accum::Avg { sum, n } => {
                *sum += v.as_f64().unwrap_or(0.0);
                *n += 1;
            }
            Accum::MinMax { best, is_min } => {
                let better = match best {
                    None => true,
                    Some(b) => {
                        if *is_min {
                            v.total_cmp(b).is_lt()
                        } else {
                            v.total_cmp(b).is_gt()
                        }
                    }
                };
                if better {
                    *best = Some(v);
                }
            }
        }
    }

    fn finalize(&self) -> Value {
        match self {
            Accum::Count { n } => Value::Int(*n),
            Accum::Distinct { func, vals } => match func {
                AggFunc::Count => Value::Int(vals.len() as i64),
                AggFunc::Sum => {
                    if vals.is_empty() {
                        Value::Null
                    } else if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                        Value::Int(vals.iter().filter_map(Value::as_i64).sum())
                    } else {
                        Value::Float(vals.iter().filter_map(Value::as_f64).sum())
                    }
                }
                AggFunc::Avg => {
                    if vals.is_empty() {
                        Value::Null
                    } else {
                        let s: f64 = vals.iter().filter_map(Value::as_f64).sum();
                        // qirana-lint::allow(QL002): distinct-value count
                        Value::Float(s / vals.len() as f64)
                    }
                }
                // qirana-lint::allow(QL003, QL007): Accum::new maps MIN/MAX to MinMax
                AggFunc::Min | AggFunc::Max => unreachable!("MIN/MAX use MinMax"),
            },
            Accum::Sum {
                i,
                f,
                any_float,
                seen,
            } => {
                if !*seen {
                    Value::Null
                } else if *any_float {
                    Value::Float(*f)
                } else {
                    Value::Int(*i)
                }
            }
            Accum::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    // qirana-lint::allow(QL002): n is a row count, < 2^53
                    Value::Float(*sum / *n as f64)
                }
            }
            Accum::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// FROM evaluation (joins)
// ---------------------------------------------------------------------------

enum Source<'a> {
    Borrowed(&'a [Row]),
    Owned(Vec<Row>),
}

impl Source<'_> {
    fn as_slice(&self) -> &[Row] {
        match self {
            Source::Borrowed(r) => r,
            Source::Owned(r) => r,
        }
    }
}

/// A classified WHERE conjunct.
struct Conjunct {
    expr: PExpr,
    /// Bitmask of relations whose slots the conjunct reads. Conjuncts that
    /// contain subqueries conservatively require all relations.
    rels: u64,
    applied: bool,
}

struct EquiEdge {
    left_rel: usize,
    left_expr: PExpr,
    right_rel: usize,
    right_expr: PExpr,
    used: bool,
}

fn rels_of(e: &PExpr, plan: &ResolvedSelect) -> u64 {
    let mut slots = Vec::new();
    e.collect_slots(&mut slots);
    let mut mask = 0u64;
    for s in slots {
        // `offsets` always contains 0, so every slot has a home relation.
        #[allow(clippy::expect_used)]
        let rel = plan
            .offsets
            .iter()
            .rposition(|&o| o <= s)
            .expect("slot below first offset"); // qirana-lint::allow(QL007): offsets[0] == 0
        mask |= 1 << rel;
    }
    mask
}

fn run_from(
    plan: &ResolvedSelect,
    ctx: &ExecContext<'_>,
    outer: &[&[Value]],
    cache: &SubCache,
) -> Result<Vec<Row>> {
    let n = plan.relations.len();
    if n == 0 {
        // `SELECT expr` with no FROM: a single empty row.
        let mut row = vec![Vec::new()];
        if let Some(f) = &plan.filter {
            let env = Env {
                row: &row[0],
                aggs: None,
                outer,
                ctx,
                cache,
            };
            if eval(f, &env)?.as_bool3() != Some(true) {
                row.clear();
            }
        }
        return Ok(row);
    }
    assert!(n <= 64, "at most 64 relations per query block");

    // Classify conjuncts.
    let mut prefilters: Vec<Vec<PExpr>> = vec![Vec::new(); n];
    let mut edges: Vec<EquiEdge> = Vec::new();
    let mut residuals: Vec<Conjunct> = Vec::new();
    let all_mask: u64 = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    if let Some(f) = plan.filter.clone() {
        for c in f.conjuncts() {
            if c.has_subquery() {
                residuals.push(Conjunct {
                    expr: c,
                    rels: all_mask,
                    applied: false,
                });
                continue;
            }
            let rels = rels_of(&c, plan);
            if rels.count_ones() == 1 {
                prefilters[rels.trailing_zeros() as usize].push(c);
                continue;
            }
            if let PExpr::Binary {
                left,
                op: BinaryOp::Eq,
                right,
            } = &c
            {
                let lr = rels_of(left, plan);
                let rr = rels_of(right, plan);
                if lr.count_ones() == 1 && rr.count_ones() == 1 && lr != rr {
                    edges.push(EquiEdge {
                        left_rel: lr.trailing_zeros() as usize,
                        left_expr: (**left).clone(),
                        right_rel: rr.trailing_zeros() as usize,
                        right_expr: (**right).clone(),
                        used: false,
                    });
                    continue;
                }
            }
            residuals.push(Conjunct {
                expr: c,
                rels,
                applied: false,
            });
        }
    }

    // Materialize and prefilter each relation's rows (rows stay relation-local
    // width here; prefilter expressions are rebased to local slots).
    let mut sources: Vec<Source<'_>> = Vec::with_capacity(n);
    for (i, rel) in plan.relations.iter().enumerate() {
        let raw: Source<'_> = match rel {
            PRelation::Base { table, arity, .. } => {
                let rows = ctx.rows_for(*table);
                if let Some(r0) = rows.first() {
                    assert_eq!(
                        r0.len(),
                        *arity,
                        "override rows must match the plan's arity for {}",
                        rel.binding()
                    );
                }
                Source::Borrowed(rows)
            }
            PRelation::Derived { plan: sub, .. } => {
                Source::Owned(execute_nested(sub, ctx, &[])?.rows)
            }
        };
        if prefilters[i].is_empty() {
            sources.push(raw);
            continue;
        }
        let offset = plan.offsets[i];
        let local: Vec<PExpr> = prefilters[i]
            .iter()
            .map(|e| {
                let mut e = e.clone();
                e.map_slots(&mut |s| s - offset);
                e
            })
            .collect();
        let mut kept = Vec::new();
        for row in raw.as_slice() {
            let env = Env {
                row,
                aggs: None,
                outer,
                ctx,
                cache,
            };
            let mut pass = true;
            for e in &local {
                if eval(e, &env)?.as_bool3() != Some(true) {
                    pass = false;
                    break;
                }
            }
            if pass {
                ctx.charge_rows(1, row.len())?;
                kept.push(row.clone());
            }
        }
        sources.push(Source::Owned(kept));
    }

    // Greedy join: start from the smallest relation, repeatedly hash-join a
    // connected relation (falling back to cartesian product).
    // The planner rejects SELECTs with an empty FROM list, so n >= 1.
    let start = (0..n)
        .min_by_key(|&i| sources[i].as_slice().len())
        .ok_or_else(|| EngineError::internal("greedy join started with an empty FROM list"))?;
    let mut bound: u64 = 1 << start;
    let width = plan.width;
    let start_rows = sources[start].as_slice();
    let mut inter: Vec<Row> = Vec::with_capacity(start_rows.len());
    for r in start_rows {
        ctx.charge_rows(1, width)?;
        inter.push(widen(r, plan.offsets[start], width));
    }
    apply_ready_residuals(&mut residuals, bound, &mut inter, ctx, outer, cache)?;

    while bound != all_mask {
        // Gather join keys for every unbound relation connected to `bound`.
        let mut candidate: Option<usize> = None;
        for r in 0..n {
            if bound & (1 << r) != 0 {
                continue;
            }
            let connected = edges.iter().any(|e| {
                !e.used
                    && ((e.left_rel == r && bound & (1 << e.right_rel) != 0)
                        || (e.right_rel == r && bound & (1 << e.left_rel) != 0))
            });
            if connected
                && candidate
                    .map(|c| sources[r].as_slice().len() < sources[c].as_slice().len())
                    .unwrap_or(true)
            {
                candidate = Some(r);
            }
        }

        match candidate {
            Some(r) => {
                // Composite key across every usable edge touching r.
                let mut build_exprs = Vec::new();
                let mut probe_exprs = Vec::new();
                for e in edges.iter_mut().filter(|e| !e.used) {
                    if e.left_rel == r && bound & (1 << e.right_rel) != 0 {
                        build_exprs.push(e.left_expr.clone());
                        probe_exprs.push(e.right_expr.clone());
                        e.used = true;
                    } else if e.right_rel == r && bound & (1 << e.left_rel) != 0 {
                        build_exprs.push(e.right_expr.clone());
                        probe_exprs.push(e.left_expr.clone());
                        e.used = true;
                    }
                }
                let offset = plan.offsets[r];
                let local_build: Vec<PExpr> = build_exprs
                    .into_iter()
                    .map(|mut e| {
                        e.map_slots(&mut |s| s - offset);
                        e
                    })
                    .collect();
                // Build.
                let rows_r = sources[r].as_slice();
                let mut ht: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rows_r.len());
                'build: for (i, row) in rows_r.iter().enumerate() {
                    let env = Env {
                        row,
                        aggs: None,
                        outer,
                        ctx,
                        cache,
                    };
                    let mut key = Vec::with_capacity(local_build.len());
                    for e in &local_build {
                        let v = eval(e, &env)?;
                        if v.is_null() {
                            continue 'build; // NULL never joins
                        }
                        key.push(v);
                    }
                    ctx.charge_rows(1, key.len())?;
                    ht.entry(key).or_default().push(i);
                }
                // Probe.
                let mut next = Vec::new();
                'probe: for irow in &inter {
                    let env = Env {
                        row: irow,
                        aggs: None,
                        outer,
                        ctx,
                        cache,
                    };
                    let mut key = Vec::with_capacity(probe_exprs.len());
                    for e in &probe_exprs {
                        let v = eval(e, &env)?;
                        if v.is_null() {
                            continue 'probe;
                        }
                        key.push(v);
                    }
                    if let Some(matches) = ht.get(&key) {
                        for &mi in matches {
                            ctx.charge_rows(1, width)?;
                            let mut merged = irow.clone();
                            fill(&mut merged, &rows_r[mi], offset);
                            next.push(merged);
                        }
                    }
                }
                inter = next;
                bound |= 1 << r;
            }
            None => {
                // Cartesian product with the smallest unbound relation.
                // The loop runs only while some relation is unbound.
                let r = (0..n)
                    .filter(|&i| bound & (1 << i) == 0)
                    .min_by_key(|&i| sources[i].as_slice().len())
                    .ok_or_else(|| {
                        EngineError::internal("greedy join loop ran with every relation bound")
                    })?;
                let offset = plan.offsets[r];
                let rows_r = sources[r].as_slice();
                let mut next = Vec::with_capacity(inter.len() * rows_r.len().max(1));
                for irow in &inter {
                    for row in rows_r {
                        ctx.charge_rows(1, width)?;
                        let mut merged = irow.clone();
                        fill(&mut merged, row, offset);
                        next.push(merged);
                    }
                }
                inter = next;
                bound |= 1 << r;
            }
        }
        apply_ready_residuals(&mut residuals, bound, &mut inter, ctx, outer, cache)?;
    }

    debug_assert!(residuals.iter().all(|c| c.applied));
    Ok(inter)
}

fn widen(row: &Row, offset: usize, width: usize) -> Row {
    let mut out = vec![Value::Null; width];
    fill(&mut out, row, offset);
    out
}

fn fill(dst: &mut Row, src: &Row, offset: usize) {
    dst[offset..offset + src.len()].clone_from_slice(src);
}

fn apply_ready_residuals(
    residuals: &mut [Conjunct],
    bound: u64,
    inter: &mut Vec<Row>,
    ctx: &ExecContext<'_>,
    outer: &[&[Value]],
    cache: &SubCache,
) -> Result<()> {
    for c in residuals.iter_mut() {
        if c.applied || c.rels & !bound != 0 {
            continue;
        }
        c.applied = true;
        let mut kept = Vec::with_capacity(inter.len());
        for row in inter.drain(..) {
            let env = Env {
                row: &row,
                aggs: None,
                outer,
                ctx,
                cache,
            };
            if eval(&c.expr, &env)?.as_bool3() == Some(true) {
                kept.push(row);
            }
        }
        *inter = kept;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

fn eval(e: &PExpr, env: &Env<'_>) -> Result<Value> {
    Ok(match e {
        PExpr::Literal(v) => v.clone(),
        PExpr::Interval { .. } => {
            return Err(EngineError::eval(
                "INTERVAL literal outside date arithmetic",
            ))
        }
        PExpr::Slot(s) => env.row[*s].clone(),
        PExpr::OuterSlot { depth, slot } => env
            .outer
            .get(*depth)
            .ok_or_else(|| EngineError::eval("correlated reference without outer row"))?[*slot]
            .clone(),
        PExpr::AggRef(i) => {
            let aggs = env
                .aggs
                .ok_or_else(|| EngineError::eval("aggregate reference outside grouping"))?;
            aggs[*i].clone()
        }
        PExpr::Unary { op, expr } => {
            let v = eval(expr, env)?;
            match op {
                UnaryOp::Not => match v.as_bool3() {
                    None => Value::Null,
                    Some(b) => Value::Bool(!b),
                },
                UnaryOp::Neg => match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(-i),
                    Value::Float(f) => Value::Float(-f),
                    other => return Err(EngineError::eval(format!("cannot negate {other}"))),
                },
            }
        }
        PExpr::Binary { left, op, right } => {
            // Date ± INTERVAL is handled structurally.
            if let PExpr::Interval { months, days } = right.as_ref() {
                let l = eval(left, env)?;
                return date_interval(&l, *months, *days, *op == BinaryOp::Add);
            }
            if let PExpr::Interval { months, days } = left.as_ref() {
                if *op == BinaryOp::Add {
                    let r = eval(right, env)?;
                    return date_interval(&r, *months, *days, true);
                }
                return Err(EngineError::eval("INTERVAL may not be the minuend"));
            }
            // Short-circuit AND/OR to skip needless subquery work.
            if *op == BinaryOp::And {
                let l = eval(left, env)?;
                if l.as_bool3() == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let r = eval(right, env)?;
                return binary_op(BinaryOp::And, &l, &r);
            }
            if *op == BinaryOp::Or {
                let l = eval(left, env)?;
                if l.as_bool3() == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let r = eval(right, env)?;
                return binary_op(BinaryOp::Or, &l, &r);
            }
            let l = eval(left, env)?;
            let r = eval(right, env)?;
            binary_op(*op, &l, &r)?
        }
        PExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let s = match &v {
                Value::Str(s) => s.to_string(),
                other => other.to_string(),
            };
            let m = like_match(pattern, &s);
            Value::Bool(m != *negated)
        }
        PExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, env)?;
            let lo = eval(low, env)?;
            let hi = eval(high, env)?;
            let ge = binary_op(BinaryOp::GtEq, &v, &lo)?;
            let le = binary_op(BinaryOp::LtEq, &v, &hi)?;
            let both = binary_op(BinaryOp::And, &ge, &le)?;
            match (both.as_bool3(), negated) {
                (None, _) => Value::Null,
                (Some(b), neg) => Value::Bool(b != *neg),
            }
        }
        PExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, env)?;
            let mut saw_null = v.is_null();
            let mut found = false;
            for item in list {
                let iv = eval(item, env)?;
                if iv.is_null() || v.is_null() {
                    saw_null = true;
                } else if v.sql_eq(&iv) {
                    found = true;
                    break;
                }
            }
            in_result(found, saw_null, *negated)
        }
        PExpr::InSubquery {
            expr,
            plan,
            negated,
        } => {
            let v = eval(expr, env)?;
            let (set, has_null) = subquery_set(plan, env)?;
            if set.is_empty() && !has_null {
                // x IN (empty) is FALSE even for NULL x.
                return Ok(Value::Bool(*negated));
            }
            if v.is_null() {
                return Ok(Value::Null);
            }
            let found = set.contains(&v);
            in_result(found, has_null, *negated)
        }
        PExpr::Exists { plan, negated } => {
            let nonempty = subquery_exists(plan, env)?;
            Value::Bool(nonempty != *negated)
        }
        PExpr::ScalarSubquery(plan) => subquery_scalar(plan, env)?,
        PExpr::IsNull { expr, negated } => {
            let v = eval(expr, env)?;
            Value::Bool(v.is_null() != *negated)
        }
        PExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            match operand {
                Some(op) => {
                    let ov = eval(op, env)?;
                    for (w, t) in branches {
                        let wv = eval(w, env)?;
                        if !ov.is_null() && !wv.is_null() && ov.sql_eq(&wv) {
                            return eval(t, env);
                        }
                    }
                }
                None => {
                    for (w, t) in branches {
                        if eval(w, env)?.as_bool3() == Some(true) {
                            return eval(t, env);
                        }
                    }
                }
            }
            match else_expr {
                Some(e) => eval(e, env)?,
                None => Value::Null,
            }
        }
    })
}

fn in_result(found: bool, saw_null: bool, negated: bool) -> Value {
    if found {
        Value::Bool(!negated)
    } else if saw_null {
        Value::Null
    } else {
        Value::Bool(negated)
    }
}

// ---------------------------------------------------------------------------
// Subquery evaluation with uncorrelated-result caching
// ---------------------------------------------------------------------------

/// True iff any expression inside `plan` references a row more than `level`
/// scopes above it (i.e. escapes the plan and depends on the current row).
fn plan_escapes(plan: &ResolvedSelect, level: usize) -> bool {
    let exprs = plan
        .filter
        .iter()
        .chain(plan.group_by.iter())
        .chain(plan.aggregates.iter().filter_map(|a| a.arg.as_ref()))
        .chain(plan.having.iter())
        .chain(plan.projections.iter().map(|p| &p.expr))
        .chain(plan.order_by.iter().map(|(e, _)| e));
    for e in exprs {
        if expr_escapes(e, level) {
            return true;
        }
    }
    false
}

fn expr_escapes(e: &PExpr, level: usize) -> bool {
    match e {
        PExpr::OuterSlot { depth, .. } => *depth >= level,
        PExpr::Literal(_) | PExpr::Interval { .. } | PExpr::Slot(_) | PExpr::AggRef(_) => false,
        PExpr::Unary { expr, .. } | PExpr::Like { expr, .. } | PExpr::IsNull { expr, .. } => {
            expr_escapes(expr, level)
        }
        PExpr::Binary { left, right, .. } => {
            expr_escapes(left, level) || expr_escapes(right, level)
        }
        PExpr::Between {
            expr, low, high, ..
        } => expr_escapes(expr, level) || expr_escapes(low, level) || expr_escapes(high, level),
        PExpr::InList { expr, list, .. } => {
            expr_escapes(expr, level) || list.iter().any(|e| expr_escapes(e, level))
        }
        PExpr::InSubquery { expr, plan, .. } => {
            expr_escapes(expr, level) || plan_escapes(plan, level + 1)
        }
        PExpr::Exists { plan, .. } => plan_escapes(plan, level + 1),
        PExpr::ScalarSubquery(plan) => plan_escapes(plan, level + 1),
        PExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            operand.as_deref().is_some_and(|o| expr_escapes(o, level))
                || branches
                    .iter()
                    .any(|(w, t)| expr_escapes(w, level) || expr_escapes(t, level))
                || else_expr.as_deref().is_some_and(|e| expr_escapes(e, level))
        }
    }
}

fn run_subquery(plan: &ResolvedSelect, env: &Env<'_>) -> Result<QueryOutput> {
    let stack: Vec<&[Value]> = std::iter::once(env.row)
        .chain(env.outer.iter().copied())
        .collect();
    execute_nested(plan, env.ctx, &stack)
}

// ---------------------------------------------------------------------------
// Decorrelation
// ---------------------------------------------------------------------------

/// A correlated subquery reducible to one keyed index build.
///
/// Applies when the *only* reference to enclosing rows is a single
/// equality conjunct `inner_expr = OuterSlot{depth: 0}`. TPC-H Q4's
/// `EXISTS (… WHERE l_orderkey = o_orderkey …)` and Q17's
/// `(SELECT 0.2 * avg(l_quantity) … WHERE l2.l_partkey = p_partkey)` both
/// fit; without this rewrite every outer row rescans the inner relation.
struct Decorrelated {
    /// The subquery with the correlated conjunct removed (no outer refs).
    inner: ResolvedSelect,
    /// Key expression over the subquery's own joined row.
    inner_key: PExpr,
    /// The parent-row slot the removed conjunct compared against.
    outer_slot: usize,
}

fn decorrelate(plan: &ResolvedSelect) -> Option<Decorrelated> {
    if plan.limit.is_some() {
        return None; // LIMIT interacts with per-key row counts
    }
    let filter = plan.filter.clone()?;
    let conjuncts = filter.conjuncts();
    let mut found: Option<(usize, PExpr, usize)> = None;
    for (i, c) in conjuncts.iter().enumerate() {
        let PExpr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        let pick = |inner: &PExpr, outer: &PExpr| -> Option<(PExpr, usize)> {
            if let PExpr::OuterSlot { depth: 0, slot } = outer {
                if !expr_escapes(inner, 0) && !inner.has_subquery() {
                    return Some((inner.clone(), *slot));
                }
            }
            None
        };
        if let Some((k, s)) = pick(left, right).or_else(|| pick(right, left)) {
            found = Some((i, k, s));
            break;
        }
    }
    let (idx, inner_key, outer_slot) = found?;
    let mut rest = conjuncts;
    rest.remove(idx);
    let mut inner = plan.clone();
    inner.filter = PExpr::conjoin(rest);
    // Everything else must be outer-free, or the rewrite is unsound.
    if plan_escapes(&inner, 0) {
        return None;
    }
    Some(Decorrelated {
        inner,
        inner_key,
        outer_slot,
    })
}

/// The value of the parent-row column a decorrelated lookup keys on.
fn outer_value(env: &Env<'_>, slot: usize) -> Value {
    env.row[slot].clone()
}

fn subquery_exists(plan: &ResolvedSelect, env: &Env<'_>) -> Result<bool> {
    let key = plan as *const _ as usize;
    match env.cache.borrow().get(&key) {
        Some(CachedSub::Exists(b)) => return Ok(*b),
        Some(CachedSub::SemiKeys { keys, outer_slot }) => {
            let v = outer_value(env, *outer_slot);
            return Ok(!v.is_null() && keys.contains(&v));
        }
        _ => {}
    }
    let correlated = plan_escapes(plan, 0);
    if !correlated {
        let out = run_subquery(plan, env)?;
        let b = !out.rows.is_empty();
        env.cache.borrow_mut().insert(key, CachedSub::Exists(b));
        return Ok(b);
    }
    // Correlated: try a one-shot semi-join index.
    if !plan.grouped {
        if let Some(dec) = decorrelate(plan) {
            let mut probe = dec.inner;
            probe.projections = vec![crate::plan::Projection {
                expr: dec.inner_key,
                name: "k".into(),
            }];
            probe.distinct = true;
            probe.order_by.clear();
            let out = execute_nested(&probe, env.ctx, &[])?;
            let keys: HashSet<Value> = out
                .rows
                .into_iter()
                .map(|mut r| r.swap_remove(0))
                .filter(|v| !v.is_null())
                .collect();
            let v = outer_value(env, dec.outer_slot);
            let b = !v.is_null() && keys.contains(&v);
            env.cache.borrow_mut().insert(
                key,
                CachedSub::SemiKeys {
                    keys,
                    outer_slot: dec.outer_slot,
                },
            );
            return Ok(b);
        }
    }
    // Irreducibly correlated: run per row.
    let out = run_subquery(plan, env)?;
    Ok(!out.rows.is_empty())
}

fn subquery_set(plan: &ResolvedSelect, env: &Env<'_>) -> Result<(HashSet<Value>, bool)> {
    let key = plan as *const _ as usize;
    match env.cache.borrow().get(&key) {
        Some(CachedSub::Set { set, has_null }) => return Ok((set.clone(), *has_null)),
        Some(CachedSub::InIndex { map, outer_slot }) => {
            let v = outer_value(env, *outer_slot);
            return Ok(match map.get(&v) {
                Some((set, has_null)) => (set.clone(), *has_null),
                None => (HashSet::new(), false),
            });
        }
        _ => {}
    }
    let collect = |out: QueryOutput| {
        let mut set = HashSet::with_capacity(out.rows.len());
        let mut has_null = false;
        for mut r in out.rows {
            let v = r.swap_remove(0);
            if v.is_null() {
                has_null = true;
            } else {
                set.insert(v);
            }
        }
        (set, has_null)
    };
    let correlated = plan_escapes(plan, 0);
    if !correlated {
        let (set, has_null) = collect(run_subquery(plan, env)?);
        env.cache.borrow_mut().insert(
            key,
            CachedSub::Set {
                set: set.clone(),
                has_null,
            },
        );
        return Ok((set, has_null));
    }
    if !plan.grouped && !plan.distinct {
        if let Some(dec) = decorrelate(plan) {
            let mut probe = dec.inner;
            let value_proj = probe.projections.swap_remove(0);
            probe.projections = vec![
                crate::plan::Projection {
                    expr: dec.inner_key,
                    name: "k".into(),
                },
                value_proj,
            ];
            probe.order_by.clear();
            let out = execute_nested(&probe, env.ctx, &[])?;
            let mut map: HashMap<Value, (HashSet<Value>, bool)> = HashMap::new();
            for mut r in out.rows {
                let v = r.swap_remove(1);
                let k = r.swap_remove(0);
                if k.is_null() {
                    continue; // NULL keys never equal any outer value
                }
                let entry = map.entry(k).or_default();
                if v.is_null() {
                    entry.1 = true;
                } else {
                    entry.0.insert(v);
                }
            }
            let v = outer_value(env, dec.outer_slot);
            let result = match map.get(&v) {
                Some((set, has_null)) => (set.clone(), *has_null),
                None => (HashSet::new(), false),
            };
            env.cache.borrow_mut().insert(
                key,
                CachedSub::InIndex {
                    map,
                    outer_slot: dec.outer_slot,
                },
            );
            return Ok(result);
        }
    }
    Ok(collect(run_subquery(plan, env)?))
}

fn subquery_scalar(plan: &ResolvedSelect, env: &Env<'_>) -> Result<Value> {
    let key = plan as *const _ as usize;
    match env.cache.borrow().get(&key) {
        Some(CachedSub::Scalar(v)) => return Ok(v.clone()),
        Some(CachedSub::ScalarIndex {
            map,
            empty,
            outer_slot,
        }) => {
            let v = outer_value(env, *outer_slot);
            return match map.get(&v) {
                Some((value, 1)) => Ok(value.clone()),
                Some((_, n)) => Err(EngineError::eval(format!(
                    "scalar subquery returned {n} rows"
                ))),
                None => Ok(empty.clone()),
            };
        }
        _ => {}
    }
    let scalar_of = |out: QueryOutput| -> Result<Value> {
        match out.rows.len() {
            0 => Ok(Value::Null),
            1 => Ok(out.rows[0][0].clone()),
            n => Err(EngineError::eval(format!(
                "scalar subquery returned {n} rows"
            ))),
        }
    };
    let correlated = plan_escapes(plan, 0);
    if !correlated {
        let v = scalar_of(run_subquery(plan, env)?)?;
        env.cache
            .borrow_mut()
            .insert(key, CachedSub::Scalar(v.clone()));
        return Ok(v);
    }
    if let Some(built) = build_scalar_index(plan, env)? {
        let v = outer_value(env, built.2);
        let result = match built.0.get(&v) {
            Some((value, 1)) => Ok(value.clone()),
            Some((_, n)) => Err(EngineError::eval(format!(
                "scalar subquery returned {n} rows"
            ))),
            None => Ok(built.1.clone()),
        };
        env.cache.borrow_mut().insert(
            key,
            CachedSub::ScalarIndex {
                map: built.0,
                empty: built.1,
                outer_slot: built.2,
            },
        );
        return result;
    }
    scalar_of(run_subquery(plan, env)?)
}

/// Builds a `(key → (value, count), empty-input value, outer slot)` index
/// for a decorrelatable scalar subquery, or `None` if the shape doesn't
/// qualify.
#[allow(clippy::type_complexity)]
fn build_scalar_index(
    plan: &ResolvedSelect,
    env: &Env<'_>,
) -> Result<Option<(HashMap<Value, (Value, usize)>, Value, usize)>> {
    if plan.distinct || plan.having.is_some() || plan.projections.len() != 1 {
        return Ok(None);
    }
    let global_agg = plan.grouped && plan.group_by.is_empty();
    if plan.grouped && !global_agg {
        return Ok(None); // correlated grouped-with-keys scalars stay per-row
    }
    if plan.projections[0].expr.has_subquery() {
        return Ok(None);
    }
    let Some(dec) = decorrelate(plan) else {
        return Ok(None);
    };

    let mut probe = dec.inner;
    let value_proj = probe.projections.swap_remove(0);
    probe.order_by.clear();
    if global_agg {
        // γ_{key}(inner): one row per key; a missing key yields the
        // empty-input aggregate row (COUNT = 0, others NULL), exactly what
        // the original produces for a non-matching outer row.
        probe.group_by = vec![dec.inner_key.clone()];
        probe.projections = vec![
            crate::plan::Projection {
                expr: dec.inner_key,
                name: "k".into(),
            },
            value_proj,
        ];
        let empty = {
            let empties: Vec<Value> = probe
                .aggregates
                .iter()
                .map(|spec| Accum::new(spec).finalize())
                .collect();
            let null_row = vec![Value::Null; probe.width];
            let tmp_cache: SubCache = RefCell::new(HashMap::new());
            eval(
                &probe.projections[1].expr,
                &Env {
                    row: &null_row,
                    aggs: Some(&empties),
                    outer: &[],
                    ctx: env.ctx,
                    cache: &tmp_cache,
                },
            )?
        };
        let out = execute_nested(&probe, env.ctx, &[])?;
        let mut map = HashMap::with_capacity(out.rows.len());
        for mut r in out.rows {
            let v = r.swap_remove(1);
            let k = r.swap_remove(0);
            if !k.is_null() {
                map.insert(k, (v, 1));
            }
        }
        Ok(Some((map, empty, dec.outer_slot)))
    } else {
        probe.projections = vec![
            crate::plan::Projection {
                expr: dec.inner_key,
                name: "k".into(),
            },
            value_proj,
        ];
        let out = execute_nested(&probe, env.ctx, &[])?;
        let mut map: HashMap<Value, (Value, usize)> = HashMap::with_capacity(out.rows.len());
        for mut r in out.rows {
            let v = r.swap_remove(1);
            let k = r.swap_remove(0);
            if k.is_null() {
                continue;
            }
            let e = map.entry(k).or_insert((v, 0));
            e.1 += 1;
        }
        Ok(Some((map, Value::Null, dec.outer_slot)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;
    use crate::plan::plan_select;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("name", DataType::Str),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![
                vec![1.into(), "John".into(), "m".into(), 25.into()],
                vec![2.into(), "Alice".into(), "f".into(), 13.into()],
                vec![3.into(), "Bob".into(), "m".into(), 45.into()],
                vec![4.into(), "Anna".into(), "f".into(), 19.into()],
            ],
        );
        db.add_table(
            TableSchema::new(
                "Tweet",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("location", DataType::Str),
                ],
                &["tid"],
            ),
            vec![
                vec![1.into(), 3.into(), "CA".into()],
                vec![2.into(), 3.into(), "WA".into()],
                vec![3.into(), 1.into(), "OR".into()],
                vec![4.into(), 2.into(), "CA".into()],
            ],
        );
        db
    }

    fn run(db: &Database, sql: &str) -> QueryOutput {
        let plan = plan_select(&parse_select(sql).unwrap(), db).unwrap();
        execute(&plan, &ExecContext::new(db)).unwrap()
    }

    #[test]
    fn select_star() {
        let db = db();
        let out = run(&db, "select * from User");
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.columns, vec!["uid", "name", "gender", "age"]);
    }

    #[test]
    fn filter_and_projection() {
        let db = db();
        let out = run(&db, "select name from User where age > 20 and gender = 'm'");
        let names: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["John", "Bob"]);
    }

    #[test]
    fn count_star_and_where() {
        let db = db();
        let out = run(&db, "select count(*) from User where gender = 'f'");
        assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn group_by_with_aggregates() {
        let db = db();
        let out = run(
            &db,
            "select gender, count(*), avg(age) from User group by gender order by gender",
        );
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][0], Value::str("f"));
        assert_eq!(out.rows[0][1], Value::Int(2));
        assert_eq!(out.rows[0][2], Value::Float(16.0));
        assert_eq!(out.rows[1][2], Value::Float(35.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let out = run(
            &db,
            "select count(*), sum(age), min(age) from User where age > 100",
        );
        assert_eq!(
            out.rows,
            vec![vec![Value::Int(0), Value::Null, Value::Null]]
        );
    }

    #[test]
    fn hash_join() {
        let db = db();
        let out = run(
            &db,
            "select name, location from User, Tweet where User.uid = Tweet.uid order by tid",
        );
        assert_eq!(out.rows.len(), 4);
        assert_eq!(out.rows[0][0], Value::str("Bob"));
        assert_eq!(out.rows[0][1], Value::str("CA"));
        assert_eq!(out.rows[2][0], Value::str("John"));
    }

    #[test]
    fn join_with_selection() {
        let db = db();
        let out = run(
            &db,
            "select name from User U, Tweet T where U.uid = T.uid and T.location = 'CA' and U.age > 20 order by name",
        );
        let names: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["Bob"]);
    }

    #[test]
    fn cartesian_product() {
        let db = db();
        let out = run(&db, "select 1 from User, Tweet");
        assert_eq!(out.rows.len(), 16);
    }

    #[test]
    fn distinct_and_limit() {
        let db = db();
        let out = run(&db, "select distinct location from Tweet order by location");
        assert_eq!(out.rows.len(), 3);
        let out = run(
            &db,
            "select distinct location from Tweet order by location limit 2",
        );
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][0], Value::str("CA"));
    }

    #[test]
    fn order_desc() {
        let db = db();
        let out = run(&db, "select age from User order by age desc");
        let ages: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ages, vec![45, 25, 19, 13]);
        assert!(out.ordered);
    }

    #[test]
    fn having_filters_groups() {
        let db = db();
        let out = run(
            &db,
            "select uid, count(*) as c from Tweet group by uid having c > 1",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(3));
        assert_eq!(out.rows[0][1], Value::Int(2));
    }

    #[test]
    fn in_subquery_correlation_free() {
        let db = db();
        let out = run(
            &db,
            "select name from User where uid in (select uid from Tweet where location = 'CA') order by name",
        );
        let names: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["Alice", "Bob"]);
    }

    #[test]
    fn exists_correlated() {
        let db = db();
        let out = run(
            &db,
            "select name from User U where exists (select 1 from Tweet T where T.uid = U.uid and T.location = 'WA')",
        );
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::str("Bob"));
    }

    #[test]
    fn not_exists() {
        let db = db();
        let out = run(
            &db,
            "select name from User U where not exists (select 1 from Tweet T where T.uid = U.uid) order by name",
        );
        let names: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["Anna"]);
    }

    #[test]
    fn scalar_subquery_correlated() {
        let db = db();
        // Users whose age exceeds the average age.
        let out = run(
            &db,
            "select name from User where age > (select avg(age) from User) order by name",
        );
        let names: Vec<String> = out.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["Bob"]); // avg = 25.5
    }

    #[test]
    fn derived_table() {
        let db = db();
        let out = run(
            &db,
            "select avg(c) from (select uid, count(*) as c from Tweet group by uid) as t",
        );
        assert_eq!(out.rows[0][0], Value::Float(4.0 / 3.0));
    }

    #[test]
    fn table_override_substitutes_rows() {
        let db = db();
        let plan = plan_select(
            &parse_select("select count(*) from User where gender = 'f'").unwrap(),
            &db,
        )
        .unwrap();
        let singleton: Vec<Row> = vec![vec![9.into(), "Zoe".into(), "f".into(), 33.into()]];
        let user_idx = db.table_index("User").unwrap();
        let ctx = ExecContext::with_override(&db, user_idx, &singleton);
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn count_distinct() {
        let db = db();
        let out = run(&db, "select count(distinct location) from Tweet");
        assert_eq!(out.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn case_expression() {
        let db = db();
        let out = run(
            &db,
            "select sum(case when gender = 'm' then 1 else 0 end) from User",
        );
        assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn like_in_where() {
        let db = db();
        let out = run(&db, "select count(*) from User where name like 'A%'");
        assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn between() {
        let db = db();
        let out = run(&db, "select count(*) from User where age between 13 and 25");
        assert_eq!(out.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn no_from_select() {
        let db = db();
        let out = run(&db, "select 40 + 2");
        assert_eq!(out.rows, vec![vec![Value::Int(42)]]);
    }

    #[test]
    fn group_key_null_handling() {
        let mut db = db();
        db.table_mut("User").unwrap().set_cell(0, 2, Value::Null);
        let out = run(&db, "select gender, count(*) from User group by gender");
        // NULL forms its own group.
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn join_on_null_never_matches() {
        let mut db = db();
        db.table_mut("Tweet").unwrap().set_cell(0, 1, Value::Null);
        let out = run(
            &db,
            "select count(*) from User, Tweet where User.uid = Tweet.uid",
        );
        assert_eq!(out.rows, vec![vec![Value::Int(3)]]);
    }

    // -- budget enforcement --------------------------------------------------

    fn run_budgeted(db: &Database, sql: &str, budget: ExecBudget) -> Result<QueryOutput> {
        let plan = plan_select(&parse_select(sql).unwrap(), db).unwrap();
        execute(&plan, &ExecContext::new(db).with_budget(budget))
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let db = db();
        let sql = "select count(*) from User, Tweet where User.uid = Tweet.uid";
        let plain = run(&db, sql);
        let budgeted = run_budgeted(&db, sql, ExecBudget::UNLIMITED).unwrap();
        assert_eq!(plain.rows, budgeted.rows);
    }

    #[test]
    fn row_cap_trips_on_join() {
        let db = db();
        let err = run_budgeted(
            &db,
            "select * from User, Tweet",
            ExecBudget::default().with_max_rows(6),
        )
        .unwrap_err();
        assert_eq!(
            err,
            EngineError::BudgetExceeded {
                resource: BudgetResource::Rows,
                limit: 6,
            }
        );
    }

    #[test]
    fn generous_row_cap_does_not_trip() {
        let db = db();
        let out = run_budgeted(
            &db,
            "select name from User where age > 18",
            ExecBudget::default().with_max_rows(1000),
        )
        .unwrap();
        assert_eq!(out.rows.len(), 3);
    }

    #[test]
    fn memory_cap_trips_on_cartesian_product() {
        let db = db();
        let err = run_budgeted(
            &db,
            "select * from User, Tweet",
            ExecBudget::default().with_max_bytes(64),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::BudgetExceeded {
                    resource: BudgetResource::Memory,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let db = db();
        let err = run_budgeted(
            &db,
            "select count(*) from User",
            ExecBudget::default().with_timeout(Duration::ZERO),
        )
        .unwrap_err();
        assert!(err.is_budget_exceeded(), "got {err:?}");
        assert!(
            matches!(
                err,
                EngineError::BudgetExceeded {
                    resource: BudgetResource::WallClock,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn budget_meter_reports_consumption() {
        let db = db();
        let plan = plan_select(&parse_select("select name from User").unwrap(), &db).unwrap();
        let ctx = ExecContext::new(&db).with_budget(ExecBudget::default().with_max_rows(100));
        execute(&plan, &ctx).unwrap();
        // 4 scanned rows widened + 4 projected rows.
        assert_eq!(ctx.rows_charged(), 8);
        assert!(ctx.bytes_charged() > 0);
    }
}
