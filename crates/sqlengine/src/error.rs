//! Engine error type.

use std::fmt;

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors produced by parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexical or syntactic error, with byte offset into the SQL text.
    Parse { offset: usize, message: String },
    /// Name-resolution or semantic error (unknown table/column, ambiguous
    /// reference, misplaced aggregate, ...).
    Plan(String),
    /// Runtime evaluation error (type mismatch, scalar subquery returned
    /// multiple rows, ...).
    Eval(String),
}

impl EngineError {
    pub(crate) fn parse(offset: usize, message: String) -> Self {
        EngineError::Parse { offset, message }
    }

    pub(crate) fn plan(message: impl Into<String>) -> Self {
        EngineError::Plan(message.into())
    }

    pub(crate) fn eval(message: impl Into<String>) -> Self {
        EngineError::Eval(message.into())
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = EngineError::parse(7, "bad token".into());
        assert_eq!(e.to_string(), "parse error at byte 7: bad token");
    }

    #[test]
    fn variants_display() {
        assert!(EngineError::plan("x").to_string().contains("plan error"));
        assert!(EngineError::eval("y").to_string().contains("evaluation"));
    }
}
