//! Engine error type.

use std::fmt;

/// Result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

/// The resource dimension an execution budget was exceeded on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// Wall-clock deadline (limit is in milliseconds).
    WallClock,
    /// Materialized-row cap (limit is a row count).
    Rows,
    /// Estimated-memory cap (limit is in bytes).
    Memory,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::WallClock => write!(f, "wall-clock (ms)"),
            BudgetResource::Rows => write!(f, "rows"),
            BudgetResource::Memory => write!(f, "memory (bytes)"),
        }
    }
}

/// Errors produced by parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Lexical or syntactic error, with byte offset into the SQL text.
    Parse { offset: usize, message: String },
    /// Name-resolution or semantic error (unknown table/column, ambiguous
    /// reference, misplaced aggregate, ...).
    Plan(String),
    /// Runtime evaluation error (type mismatch, scalar subquery returned
    /// multiple rows, ...).
    Eval(String),
    /// Schema construction or catalog error (bad primary key, unknown
    /// relation referenced by a foreign key, ...).
    Schema(String),
    /// An [`ExecBudget`](crate::exec::ExecBudget) limit was hit; execution
    /// stopped cooperatively before completing. `limit` is the configured
    /// cap in the units of `resource`.
    BudgetExceeded {
        resource: BudgetResource,
        limit: u64,
    },
    /// An internal invariant did not hold. Replaces panics on paths
    /// reachable from public API (qirana-lint QL007): the broker must
    /// degrade a purchase, not abort, when an engine invariant breaks.
    Internal(String),
}

impl EngineError {
    pub(crate) fn parse(offset: usize, message: String) -> Self {
        EngineError::Parse { offset, message }
    }

    pub(crate) fn plan(message: impl Into<String>) -> Self {
        EngineError::Plan(message.into())
    }

    pub(crate) fn eval(message: impl Into<String>) -> Self {
        EngineError::Eval(message.into())
    }

    pub(crate) fn schema(message: impl Into<String>) -> Self {
        EngineError::Schema(message.into())
    }

    /// Internal-invariant failure. Public (unlike the other constructors)
    /// so downstream crates (`core::optimized`, `core::parallel`) can
    /// surface their own broken invariants through the same channel.
    pub fn internal(message: impl Into<String>) -> Self {
        EngineError::Internal(message.into())
    }

    /// True when this error is a budget trip (as opposed to a genuine
    /// query failure); callers use this to decide whether a retry with a
    /// larger budget could succeed.
    pub fn is_budget_exceeded(&self) -> bool {
        matches!(self, EngineError::BudgetExceeded { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            EngineError::Plan(m) => write!(f, "plan error: {m}"),
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::Schema(m) => write!(f, "schema error: {m}"),
            EngineError::BudgetExceeded { resource, limit } => {
                write!(f, "execution budget exceeded: {resource} limit {limit}")
            }
            EngineError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = EngineError::parse(7, "bad token".into());
        assert_eq!(e.to_string(), "parse error at byte 7: bad token");
    }

    #[test]
    fn variants_display() {
        assert!(EngineError::plan("x").to_string().contains("plan error"));
        assert!(EngineError::eval("y").to_string().contains("evaluation"));
    }
}
