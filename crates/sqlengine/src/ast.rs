//! Abstract syntax tree for the supported SQL dialect.
//!
//! The dialect covers the query class QIRANA prices: select-project-join
//! blocks (implicit comma joins and explicit `INNER JOIN ... ON`, desugared
//! by the parser), aggregation with `GROUP BY`/`HAVING`, `DISTINCT`,
//! `ORDER BY`/`LIMIT`, derived tables, and `IN`/`EXISTS`/scalar subqueries
//! (including correlated ones, needed for TPC-H Q2/Q4/Q11/Q17). `UPDATE` is
//! supported for applying support-set updates expressed as SQL.

use crate::value::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Update(UpdateStmt),
}

/// A `SELECT` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// An expression with an optional alias.
    Expr { expr: Expr, alias: Option<String> },
}

/// One entry of the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A base table, optionally aliased.
    Table { name: String, alias: Option<String> },
    /// A derived table `(SELECT ...) AS alias`.
    Derived {
        query: Box<SelectStmt>,
        alias: String,
    },
}

impl TableRef {
    /// The name this relation is referred to by in the query scope.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Derived { alias, .. } => alias,
        }
    }
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: Expr,
    pub asc: bool,
}

/// `UPDATE table SET col = expr, ... [WHERE pred]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub where_clause: Option<Expr>,
}

/// Binary operators, lowest to highest precedence handled by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Parses a function-name keyword into an aggregate, if it is one.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// Interval literal, e.g. `INTERVAL '6' MONTH`; participates in date
    /// arithmetic only.
    Interval {
        months: i64,
        days: i64,
    },
    /// Possibly-qualified column reference.
    Column {
        table: Option<String>,
        column: String,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// `expr [NOT] LIKE pattern` (pattern is a literal string with `%`/`_`).
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        subquery: Box<SelectStmt>,
        negated: bool,
    },
    /// A scalar subquery in expression position.
    ScalarSubquery(Box<SelectStmt>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Aggregate call. `arg == None` means `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            column: name.to_string(),
        }
    }

    /// Qualified column reference helper.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_string()),
            column: name.to_string(),
        }
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Builds `self AND other`, treating either side being absent elsewhere.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// True iff the expression tree contains an aggregate call (without
    /// descending into subqueries, which have their own aggregate scope).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Interval { .. } | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_deref().is_some_and(Expr::contains_aggregate)
            }
        }
    }

    /// True iff the expression contains any subquery form.
    pub fn contains_subquery(&self) -> bool {
        match self {
            Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_) => true,
            Expr::Literal(_) | Expr::Interval { .. } | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_subquery(),
            Expr::Binary { left, right, .. } => {
                left.contains_subquery() || right.contains_subquery()
            }
            Expr::Like { expr, .. } => expr.contains_subquery(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_subquery() || low.contains_subquery() || high.contains_subquery(),
            Expr::InList { expr, list, .. } => {
                expr.contains_subquery() || list.iter().any(Expr::contains_subquery)
            }
            Expr::IsNull { expr, .. } => expr.contains_subquery(),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_subquery)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_subquery() || t.contains_subquery())
                    || else_expr.as_deref().is_some_and(Expr::contains_subquery)
            }
            Expr::Agg { arg, .. } => arg.as_deref().is_some_and(Expr::contains_subquery),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_from_name() {
        assert_eq!(AggFunc::from_name("COUNT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::from_name("aVg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("concat"), None);
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let e = Expr::lit(1i64).and(Expr::Agg {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        });
        assert!(e.contains_aggregate());
        assert!(!Expr::col("a").contains_aggregate());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef::Table {
            name: "Country".into(),
            alias: Some("C".into()),
        };
        assert_eq!(t.binding_name(), "C");
        let t = TableRef::Table {
            name: "Country".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "Country");
    }

    #[test]
    fn subquery_detection() {
        let sub = SelectStmt {
            distinct: false,
            projection: vec![SelectItem::Wildcard],
            from: vec![],
            where_clause: None,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        let e = Expr::Exists {
            subquery: Box::new(sub),
            negated: false,
        };
        assert!(e.contains_subquery());
        assert!(!Expr::lit(1i64).contains_subquery());
    }
}
