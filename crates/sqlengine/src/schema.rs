//! Schema metadata: column types, table definitions, keys, and attribute
//! domains.
//!
//! QIRANA's possible-worlds model (`I` in the paper) is defined by the schema
//! plus the constraints the buyer knows: primary keys, foreign keys, attribute
//! domains, and fixed relation cardinalities. All of that metadata lives here
//! so both the executor and the pricing layer share one source of truth.

use crate::error::{EngineError, Result};
use crate::value::Value;
use std::fmt;

/// Logical column type. The engine is dynamically typed at runtime ([`Value`])
/// but declared types drive domain inference and update generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Date,
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "DOUBLE",
            DataType::Date => "DATE",
            DataType::Str => "VARCHAR",
        };
        f.write_str(s)
    }
}

/// The set of values an attribute may take in any possible database.
///
/// The seller may specify a domain explicitly; otherwise QIRANA defaults to
/// the *active domain* (the values present in the instance), which §3.1 of the
/// paper notes does not compromise arbitrage-freeness.
#[derive(Debug, Clone, PartialEq)]
pub enum Domain {
    /// Use the active domain of the column (default).
    Active,
    /// Explicit finite set of values.
    Values(Vec<Value>),
    /// Inclusive integer range.
    IntRange(i64, i64),
    /// Inclusive float range (sampled continuously).
    FloatRange(f64, f64),
}

impl Domain {
    /// Whether the domain is the implicit active domain.
    pub fn is_active(&self) -> bool {
        matches!(self, Domain::Active)
    }
}

/// A single column definition.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name (case-preserved; lookups are case-insensitive).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
    /// Seller-specified domain; `Active` means derive from the data.
    pub domain: Domain,
}

impl ColumnDef {
    /// Creates a column with the active domain.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            domain: Domain::Active,
        }
    }

    /// Creates a column with an explicit domain.
    pub fn with_domain(name: impl Into<String>, ty: DataType, domain: Domain) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            domain,
        }
    }
}

/// A foreign-key constraint: `columns` of this table reference
/// `parent_columns` of `parent_table`.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    pub columns: Vec<usize>,
    pub parent_table: String,
    pub parent_columns: Vec<usize>,
}

/// Full definition of one relation.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Relation name (case-preserved; lookups are case-insensitive).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indexes of the primary-key columns (possibly composite, never empty
    /// for tables participating in pricing — the disagreement algorithms
    /// identify tuples by key).
    pub primary_key: Vec<usize>,
    /// Foreign keys out of this table.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Creates a schema; `primary_key` lists column *names*.
    ///
    /// # Panics
    /// Panics if a primary-key name does not match any column. Callers
    /// handling untrusted schema definitions should use
    /// [`TableSchema::try_new`] instead.
    #[allow(clippy::panic)] // documented panicking wrapper over try_new
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>, primary_key: &[&str]) -> Self {
        // qirana-lint::allow(QL007): documented panicking wrapper; fallible callers use try_new
        Self::try_new(name, columns, primary_key).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`TableSchema::new`]: returns
    /// [`EngineError::Schema`] instead of panicking when a primary-key name
    /// does not match any column.
    pub fn try_new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        primary_key: &[&str],
    ) -> Result<Self> {
        let name = name.into();
        let pk = primary_key
            .iter()
            .map(|k| {
                columns
                    .iter()
                    .position(|c| c.name.eq_ignore_ascii_case(k))
                    .ok_or_else(|| {
                        EngineError::schema(format!("primary key column {k} not found in {name}"))
                    })
            })
            .collect::<Result<Vec<usize>>>()?;
        Ok(TableSchema {
            name,
            columns,
            primary_key: pk,
            foreign_keys: Vec::new(),
        })
    }

    /// Registers a foreign key by column names.
    ///
    /// # Panics
    /// Panics if a named column is missing (programmer error in a generator).
    pub fn add_foreign_key(
        &mut self,
        columns: &[&str],
        parent_table: &str,
        parent: &TableSchema,
        parent_columns: &[&str],
    ) {
        // Schema-construction helper: like [`TableSchema::new`], bad
        // column names are a programming error in the fixture, not data.
        #[allow(clippy::expect_used)]
        let cols = columns
            .iter()
            .map(|c| self.column_index(c).expect("fk column not found")) // qirana-lint::allow(QL007): fixture programming error, not data
            .collect();
        #[allow(clippy::expect_used)]
        let pcols = parent_columns
            .iter()
            .map(|c| parent.column_index(c).expect("fk parent column not found")) // qirana-lint::allow(QL007): fixture programming error, not data
            .collect();
        self.foreign_keys.push(ForeignKey {
            columns: cols,
            parent_table: parent_table.to_string(),
            parent_columns: pcols,
        });
    }

    /// Case-insensitive column lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Indexes of columns that are *not* part of the primary key. These are
    /// the attributes the support-set generator may perturb (updating a key
    /// would change tuple identity, which row/swap updates never do).
    pub fn non_key_columns(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|i| !self.primary_key.contains(i))
            .collect()
    }

    /// True iff `col` is part of the primary key.
    pub fn is_key_column(&self, col: usize) -> bool {
        self.primary_key.contains(&col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user_schema() -> TableSchema {
        TableSchema::new(
            "User",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("gender", DataType::Str),
                ColumnDef::new("age", DataType::Int),
            ],
            &["uid"],
        )
    }

    #[test]
    fn pk_resolution() {
        let s = user_schema();
        assert_eq!(s.primary_key, vec![0]);
        assert_eq!(s.non_key_columns(), vec![1, 2, 3]);
        assert!(s.is_key_column(0));
        assert!(!s.is_key_column(2));
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = user_schema();
        assert_eq!(s.column_index("GENDER"), Some(2));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "primary key column missing not found")]
    fn bad_pk_panics() {
        TableSchema::new("T", vec![ColumnDef::new("a", DataType::Int)], &["missing"]);
    }

    #[test]
    fn bad_pk_try_new_returns_schema_error() {
        let err = TableSchema::try_new("T", vec![ColumnDef::new("a", DataType::Int)], &["missing"])
            .unwrap_err();
        assert!(matches!(err, EngineError::Schema(_)), "got {err:?}");
        assert!(err.to_string().contains("primary key column missing"));
    }

    #[test]
    fn try_new_accepts_valid_composite_key() {
        let schema = TableSchema::try_new(
            "T",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ],
            &["b", "a"],
        )
        .unwrap();
        assert_eq!(schema.primary_key, vec![1, 0]);
    }

    #[test]
    fn foreign_key_registration() {
        let user = user_schema();
        let mut tweet = TableSchema::new(
            "Tweet",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("uid", DataType::Int),
            ],
            &["tid"],
        );
        tweet.add_foreign_key(&["uid"], "User", &user, &["uid"]);
        assert_eq!(tweet.foreign_keys.len(), 1);
        assert_eq!(tweet.foreign_keys[0].columns, vec![1]);
        assert_eq!(tweet.foreign_keys[0].parent_columns, vec![0]);
    }

    #[test]
    fn explicit_domain() {
        let c = ColumnDef::with_domain(
            "gender",
            DataType::Str,
            Domain::Values(vec![Value::str("m"), Value::str("f")]),
        );
        assert!(!c.domain.is_active());
    }
}
