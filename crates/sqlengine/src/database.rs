//! A database instance: a set of named tables.

use crate::schema::TableSchema;
use crate::table::{Row, Table};
use std::collections::HashMap;

/// An in-memory database instance (the `D` of the paper).
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    /// Lowercased table name -> index into `tables`.
    by_name: HashMap<String, usize>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a table definition with no rows.
    ///
    /// # Panics
    /// Panics if a table with the same (case-insensitive) name exists.
    pub fn create_table(&mut self, schema: TableSchema) -> usize {
        let key = schema.name.to_ascii_lowercase();
        assert!(
            !self.by_name.contains_key(&key),
            "table {} already exists",
            schema.name
        );
        let idx = self.tables.len();
        self.by_name.insert(key, idx);
        self.tables.push(Table::new(schema));
        idx
    }

    /// Adds a table and its rows in one step.
    pub fn add_table(&mut self, schema: TableSchema, rows: impl IntoIterator<Item = Row>) -> usize {
        let idx = self.create_table(schema);
        self.tables[idx].extend(rows);
        idx
    }

    /// Case-insensitive lookup of a table index.
    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(&name.to_ascii_lowercase()).copied()
    }

    /// Table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.table_index(name).map(|i| &self.tables[i])
    }

    /// Mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.table_index(name).map(move |i| &mut self.tables[i])
    }

    /// Table by index.
    pub fn table_at(&self, idx: usize) -> &Table {
        &self.tables[idx]
    }

    /// Mutable table by index.
    pub fn table_at_mut(&mut self, idx: usize) -> &mut Table {
        &mut self.tables[idx]
    }

    /// All tables in creation order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total tuple count across all relations.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Total attribute (column) count across all relations.
    pub fn total_attributes(&self) -> usize {
        self.tables.iter().map(|t| t.schema.arity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Str),
            ],
            &["id"],
        )
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        db.add_table(schema("Users"), vec![vec![1.into(), "a".into()]]);
        assert!(db.table("users").is_some());
        assert!(db.table("USERS").is_some());
        assert!(db.table("nope").is_none());
        assert_eq!(db.table("Users").unwrap().len(), 1);
        assert_eq!(db.num_tables(), 1);
        assert_eq!(db.total_rows(), 1);
        assert_eq!(db.total_attributes(), 2);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_name_panics() {
        let mut db = Database::new();
        db.create_table(schema("T"));
        db.create_table(schema("t"));
    }

    #[test]
    fn mutation_via_table_mut() {
        let mut db = Database::new();
        db.add_table(schema("T"), vec![vec![1.into(), "a".into()]]);
        db.table_mut("T").unwrap().set_cell(0, 1, "b".into());
        assert_eq!(db.table("T").unwrap().rows[0][1], "b".into());
    }
}
