//! Database constraint validation.
//!
//! QIRANA's possible-worlds set `I` is defined by the constraints the buyer
//! knows: primary keys, foreign keys, declared domains, and fixed
//! cardinalities (§3.1 of the paper). This module checks that an instance
//! actually satisfies them — used to validate the dataset generators, to
//! assert that support-set updates stay inside `I`, and as a sanity gate
//! for seller-loaded data.

use crate::database::Database;
use crate::schema::Domain;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// One constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two rows share a primary key.
    DuplicateKey { table: String, key: Vec<Value> },
    /// A primary-key column holds NULL.
    NullInKey { table: String, row: usize },
    /// A foreign-key value has no parent row.
    DanglingForeignKey {
        table: String,
        row: usize,
        parent: String,
        key: Vec<Value>,
    },
    /// A cell value lies outside its declared domain.
    OutOfDomain {
        table: String,
        row: usize,
        column: String,
        value: Value,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DuplicateKey { table, key } => {
                write!(f, "{table}: duplicate primary key {key:?}")
            }
            Violation::NullInKey { table, row } => {
                write!(f, "{table}: NULL in primary key at row {row}")
            }
            Violation::DanglingForeignKey {
                table,
                row,
                parent,
                key,
            } => write!(
                f,
                "{table} row {row}: foreign key {key:?} has no parent in {parent}"
            ),
            Violation::OutOfDomain {
                table,
                row,
                column,
                value,
            } => write!(
                f,
                "{table} row {row}: {column} = {value} outside its domain"
            ),
        }
    }
}

/// Checks every declared constraint of every table; returns all violations
/// (empty ⇒ the instance is a member of its own `I`).
pub fn check_database(db: &Database) -> Vec<Violation> {
    let mut out = Vec::new();
    for table in db.tables() {
        let schema = &table.schema;

        // Primary keys: non-null and unique.
        let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(table.len());
        for (ri, row) in table.rows.iter().enumerate() {
            let key: Vec<Value> = schema.primary_key.iter().map(|&c| row[c].clone()).collect();
            if key.iter().any(Value::is_null) {
                out.push(Violation::NullInKey {
                    table: schema.name.clone(),
                    row: ri,
                });
                continue;
            }
            if !seen.insert(key.clone()) {
                out.push(Violation::DuplicateKey {
                    table: schema.name.clone(),
                    key,
                });
            }
        }

        // Declared (non-active) domains.
        for (ci, col) in schema.columns.iter().enumerate() {
            let in_domain = |v: &Value| -> bool {
                match &col.domain {
                    Domain::Active => true,
                    Domain::Values(vs) => vs.contains(v),
                    Domain::IntRange(lo, hi) => {
                        v.as_i64().is_some_and(|x| (*lo..=*hi).contains(&x))
                    }
                    Domain::FloatRange(lo, hi) => v.as_f64().is_some_and(|x| x >= *lo && x <= *hi),
                }
            };
            if col.domain.is_active() {
                continue;
            }
            for (ri, row) in table.rows.iter().enumerate() {
                if !row[ci].is_null() && !in_domain(&row[ci]) {
                    out.push(Violation::OutOfDomain {
                        table: schema.name.clone(),
                        row: ri,
                        column: col.name.clone(),
                        value: row[ci].clone(),
                    });
                }
            }
        }

        // Foreign keys: every (non-null) reference resolves.
        for fk in &schema.foreign_keys {
            let Some(parent) = db.table(&fk.parent_table) else {
                continue; // schema-level issue caught at registration
            };
            let parent_keys: HashSet<Vec<Value>> = parent
                .rows
                .iter()
                .map(|r| fk.parent_columns.iter().map(|&c| r[c].clone()).collect())
                .collect();
            for (ri, row) in table.rows.iter().enumerate() {
                let key: Vec<Value> = fk.columns.iter().map(|&c| row[c].clone()).collect();
                if key.iter().any(Value::is_null) {
                    continue; // SQL: NULL FKs are not violations
                }
                if !parent_keys.contains(&key) {
                    out.push(Violation::DanglingForeignKey {
                        table: schema.name.clone(),
                        row: ri,
                        parent: fk.parent_table.clone(),
                        key,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType, TableSchema};

    fn parent_child() -> Database {
        let mut db = Database::new();
        let parent = TableSchema::new("P", vec![ColumnDef::new("id", DataType::Int)], &["id"]);
        db.add_table(parent.clone(), vec![vec![1.into()], vec![2.into()]]);
        let mut child = TableSchema::new(
            "C",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("pid", DataType::Int),
            ],
            &["id"],
        );
        child.add_foreign_key(&["pid"], "P", &parent, &["id"]);
        db.add_table(
            child,
            vec![vec![1.into(), 1.into()], vec![2.into(), 2.into()]],
        );
        db
    }

    #[test]
    fn valid_instance_passes() {
        assert!(check_database(&parent_child()).is_empty());
    }

    #[test]
    fn duplicate_key_detected() {
        let mut db = parent_child();
        db.table_mut("P").unwrap().set_cell(1, 0, 1.into());
        let v = check_database(&db);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::DuplicateKey { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn null_key_detected() {
        let mut db = parent_child();
        db.table_mut("P").unwrap().set_cell(0, 0, Value::Null);
        let v = check_database(&db);
        assert!(v.iter().any(|x| matches!(x, Violation::NullInKey { .. })));
    }

    #[test]
    fn dangling_fk_detected() {
        let mut db = parent_child();
        db.table_mut("C").unwrap().set_cell(0, 1, 99.into());
        let v = check_database(&db);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::DanglingForeignKey { .. })));
        // NULL FK is fine.
        db.table_mut("C").unwrap().set_cell(0, 1, Value::Null);
        assert!(check_database(&db)
            .iter()
            .all(|x| !matches!(x, Violation::DanglingForeignKey { .. })));
    }

    #[test]
    fn domain_violation_detected() {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::with_domain("v", DataType::Int, Domain::IntRange(0, 10)),
                ],
                &["id"],
            ),
            vec![vec![1.into(), 5.into()], vec![2.into(), 50.into()]],
        );
        let v = check_database(&db);
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::OutOfDomain { row: 1, .. }));
    }

    #[test]
    fn violations_display() {
        let v = Violation::DuplicateKey {
            table: "T".into(),
            key: vec![1.into()],
        };
        assert!(v.to_string().contains("duplicate"));
    }
}
