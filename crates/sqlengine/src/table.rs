//! Row-oriented table storage.

use crate::schema::TableSchema;
use crate::value::Value;
use std::collections::HashMap;

/// A tuple; always exactly `schema.arity()` values long.
pub type Row = Vec<Value>;

/// One relation instance: a schema plus a bag of rows.
///
/// Storage is a plain `Vec<Row>`. The pricing layer identifies tuples by
/// *row index* (stable because row/swap updates never insert or delete — the
/// possible-worlds model fixes relation cardinality, §3.1), and by primary
/// key through [`Table::find_by_key`].
#[derive(Debug, Clone)]
pub struct Table {
    /// The relation's schema.
    pub schema: TableSchema,
    /// The rows, in insertion order.
    pub rows: Vec<Row>,
    /// Lazy primary-key index: key tuple -> row index. Built on first use.
    key_index: Option<HashMap<Vec<Value>, usize>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            key_index: None,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row arity does not match the schema.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity mismatch for table {}",
            self.schema.name
        );
        self.key_index = None;
        self.rows.push(row);
    }

    /// Bulk-appends rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        self.key_index = None;
        for r in rows {
            self.push(r);
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extracts the primary-key tuple of a row.
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.schema
            .primary_key
            .iter()
            .map(|&i| row[i].clone())
            .collect()
    }

    /// Looks up a row index by primary key, building the index on first use.
    pub fn find_by_key(&mut self, key: &[Value]) -> Option<usize> {
        if self.key_index.is_none() {
            let mut idx = HashMap::with_capacity(self.rows.len());
            for (i, row) in self.rows.iter().enumerate() {
                idx.insert(self.key_of(row), i);
            }
            self.key_index = Some(idx);
        }
        self.key_index
            .as_ref()
            .and_then(|idx| idx.get(key))
            .copied()
    }

    /// Overwrites `row[col] = v` and returns the previous value.
    ///
    /// Used by the update machinery; invalidates the key index only when a
    /// key column changes (which the pricing layer never does, but the
    /// storage layer stays correct regardless).
    pub fn set_cell(&mut self, row: usize, col: usize, v: Value) -> Value {
        if self.schema.is_key_column(col) {
            self.key_index = None;
        }
        std::mem::replace(&mut self.rows[row][col], v)
    }

    /// The active domain of a column: sorted, deduplicated values present in
    /// the instance, excluding NULLs.
    pub fn active_domain(&self, col: usize) -> Vec<Value> {
        let mut vals: Vec<Value> = self
            .rows
            .iter()
            .map(|r| r[col].clone())
            .filter(|v| !v.is_null())
            .collect();
        vals.sort();
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, DataType};

    fn t() -> Table {
        let schema = TableSchema::new(
            "User",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("gender", DataType::Str),
                ColumnDef::new("age", DataType::Int),
            ],
            &["uid"],
        );
        let mut t = Table::new(schema);
        t.push(vec![1.into(), "m".into(), 25.into()]);
        t.push(vec![2.into(), "f".into(), 13.into()]);
        t.push(vec![3.into(), "m".into(), 45.into()]);
        t
    }

    #[test]
    fn push_and_len() {
        let t = t();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        t().push(vec![4.into()]);
    }

    #[test]
    fn key_lookup() {
        let mut t = t();
        assert_eq!(t.find_by_key(&[Value::Int(2)]), Some(1));
        assert_eq!(t.find_by_key(&[Value::Int(99)]), None);
    }

    #[test]
    fn set_cell_returns_old() {
        let mut t = t();
        let old = t.set_cell(0, 2, 30.into());
        assert_eq!(old, Value::Int(25));
        assert_eq!(t.rows[0][2], Value::Int(30));
    }

    #[test]
    fn key_index_invalidated_on_key_change() {
        let mut t = t();
        assert_eq!(t.find_by_key(&[Value::Int(1)]), Some(0));
        t.set_cell(0, 0, 10.into());
        assert_eq!(t.find_by_key(&[Value::Int(1)]), None);
        assert_eq!(t.find_by_key(&[Value::Int(10)]), Some(0));
    }

    #[test]
    fn active_domain_sorted_dedup() {
        let mut t = t();
        t.push(vec![4.into(), Value::Null, 25.into()]);
        assert_eq!(
            t.active_domain(1),
            vec![Value::str("f"), Value::str("m")],
            "nulls excluded, sorted, deduped"
        );
        assert_eq!(
            t.active_domain(2),
            vec![Value::Int(13), Value::Int(25), Value::Int(45)]
        );
    }
}
