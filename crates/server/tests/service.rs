//! End-to-end tests of the pricing service over real sockets.
//!
//! Every test boots a [`PricingServer`] on a kernel-assigned loopback
//! port and talks plain HTTP/1.1 to it. The load-bearing assertions are
//! bitwise: a price served over the wire must equal the price the same
//! broker computes in-process, down to the last mantissa bit — the JSON
//! layer uses shortest-round-trip formatting, so `f64 -> text -> f64` is
//! the identity on finite values.

// Test binary: panicking on a broken fixture is the intended failure mode.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{BufReader, Write};
use std::net::TcpStream;

use qirana_bench::json::{self, Json};
use qirana_core::{PricingFunction, Qirana, QiranaConfig, SupportConfig, SupportType, Telemetry};
use qirana_server::http::{read_request, write_response};
use qirana_server::{PricingServer, ServerConfig};
use qirana_sqlengine::{ColumnDef, DataType, Database, TableSchema};

fn small_db() -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "User",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("gender", DataType::Str),
                ColumnDef::new("age", DataType::Int),
            ],
            &["uid"],
        ),
        vec![
            vec![1.into(), "m".into(), 25.into()],
            vec![2.into(), "f".into(), 13.into()],
            vec![3.into(), "m".into(), 45.into()],
            vec![4.into(), "f".into(), 19.into()],
        ],
    );
    db
}

fn config(function: PricingFunction) -> QiranaConfig {
    QiranaConfig {
        total_price: 100.0,
        function,
        support: SupportConfig {
            size: 120,
            seed: 11,
            ..Default::default()
        },
        support_type: SupportType::Neighborhood,
        ..Default::default()
    }
}

fn broker(function: PricingFunction) -> Qirana {
    Qirana::new(small_db(), config(function)).expect("broker construction")
}

fn serve(function: PricingFunction) -> PricingServer {
    PricingServer::start(
        broker(function),
        ServerConfig::default(),
        Telemetry::disabled(),
    )
    .expect("server boot")
}

/// A tiny blocking HTTP client over one keep-alive connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &PricingServer) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
        self.read_response()
    }

    /// Reads one response without having sent a request (for the
    /// accept-time 503).
    fn read_response(&mut self) -> (u16, Json) {
        // Responses are valid request-shaped frames except for the
        // status line, so read the raw line then reuse the header/body
        // logic by hand.
        use std::io::{BufRead, Read};
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_ascii_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        let text = String::from_utf8(body).expect("utf8");
        (status, json::parse(&text).expect("json body"))
    }
}

fn quote_req(sql: &str) -> String {
    json::render(&Json::Obj(vec![(
        "sql".to_string(),
        Json::Str(sql.to_string()),
    )]))
}

fn buy_req(buyer: &str, sql: &str) -> String {
    json::render(&Json::Obj(vec![
        ("buyer".to_string(), Json::Str(buyer.to_string())),
        ("sql".to_string(), Json::Str(sql.to_string())),
    ]))
}

fn num(doc: &Json, key: &str) -> f64 {
    doc.get(key).and_then(Json::as_num).expect("number field")
}

#[test]
fn served_quotes_match_the_direct_broker_bitwise() {
    for function in [
        PricingFunction::WeightedCoverage,
        PricingFunction::ShannonEntropy,
    ] {
        let direct = broker(function);
        let server = serve(function);
        let mut client = Client::connect(&server);
        for sql in [
            "SELECT * FROM User",
            "SELECT count(*) FROM User WHERE gender = 'f'",
            "SELECT age FROM User WHERE uid = 3",
        ] {
            let (status, doc) = client.request("POST", "/v1/quote", &quote_req(sql));
            assert_eq!(status, 200, "{function:?} {sql}: {doc:?}");
            let wire = num(&doc, "price");
            let local = direct.quote(sql).expect("direct quote");
            assert_eq!(
                wire.to_bits(),
                local.to_bits(),
                "{function:?}: served price diverged for {sql}"
            );
        }
        // Bundle quote too: subadditive price, same bits as in-process.
        let bundle = json::render(&Json::Obj(vec![(
            "sqls".to_string(),
            Json::Arr(vec![
                Json::Str("SELECT * FROM User".to_string()),
                Json::Str("SELECT age FROM User WHERE uid = 3".to_string()),
            ]),
        )]));
        let (status, doc) = client.request("POST", "/v1/bundle-quote", &bundle);
        assert_eq!(status, 200);
        let local = direct
            .quote_bundle(&["SELECT * FROM User", "SELECT age FROM User WHERE uid = 3"])
            .expect("direct bundle");
        assert_eq!(num(&doc, "price").to_bits(), local.to_bits());
        server.shutdown();
    }
}

#[test]
fn buys_charge_accounts_and_history_reports_them() {
    // Entropy family: it keeps the per-query history bundle the
    // `/v1/history` route reports (coverage charges through a bitmap and
    // records no SQL texts).
    let server = serve(PricingFunction::ShannonEntropy);
    let mut client = Client::connect(&server);

    let sql = "SELECT count(*) FROM User WHERE gender = 'f'";
    let (status, first) = client.request("POST", "/v1/buy", &buy_req("alice", sql));
    assert_eq!(status, 200, "{first:?}");
    assert!(num(&first, "price") > 0.0);
    assert_eq!(
        num(&first, "price").to_bits(),
        num(&first, "total_paid").to_bits()
    );
    assert_eq!(num(&first, "row_count"), 1.0);
    assert_eq!(
        first
            .get("rows")
            .and_then(Json::as_arr)
            .expect("rows")
            .len(),
        1
    );

    // History-aware: the identical repurchase is free.
    let (_, again) = client.request("POST", "/v1/buy", &buy_req("alice", sql));
    assert_eq!(num(&again, "price"), 0.0);
    assert_eq!(
        num(&again, "total_paid").to_bits(),
        num(&first, "total_paid").to_bits()
    );

    let (status, account) = client.request("GET", "/v1/account/alice", "");
    assert_eq!(status, 200);
    assert_eq!(
        num(&account, "paid").to_bits(),
        num(&first, "total_paid").to_bits()
    );
    assert_eq!(num(&account, "purchases"), 2.0);

    let (status, history) = client.request("GET", "/v1/history/alice", "");
    assert_eq!(status, 200);
    let queries = history
        .get("queries")
        .and_then(Json::as_arr)
        .expect("queries");
    assert_eq!(queries.len(), 2);
    assert_eq!(queries[0].as_str(), Some(sql));

    // Unknown buyers are 404, not empty accounts.
    let (status, _) = client.request("GET", "/v1/account/nobody", "");
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn admin_update_changes_served_prices_like_the_direct_broker() {
    let mut direct = broker(PricingFunction::WeightedCoverage);
    let server = serve(PricingFunction::WeightedCoverage);
    let mut client = Client::connect(&server);

    let probe = "SELECT count(*) FROM User WHERE age > 20";
    let update = "UPDATE User SET age = 50 WHERE uid = 2";

    let (_, before) = client.request("POST", "/v1/quote", &quote_req(probe));
    let direct_before = direct.quote(probe).expect("quote");
    assert_eq!(num(&before, "price").to_bits(), direct_before.to_bits());

    let update_body = quote_req(update);
    let (status, updated) = client.request("POST", "/v1/admin/update", &update_body);
    assert_eq!(status, 200, "{updated:?}");
    let direct_cells = direct.commit_update(update).expect("update");
    assert_eq!(num(&updated, "updated") as usize, direct_cells);

    let (_, after) = client.request("POST", "/v1/quote", &quote_req(probe));
    let direct_after = direct.quote(probe).expect("quote after");
    assert_eq!(
        num(&after, "price").to_bits(),
        direct_after.to_bits(),
        "post-update quotes must track the committed database"
    );
    server.shutdown();
}

#[test]
fn protocol_errors_map_to_the_documented_statuses() {
    let server = serve(PricingFunction::WeightedCoverage);
    let mut client = Client::connect(&server);

    // Unpriceable SQL: parse failure is 400 with a parse kind.
    let (status, doc) = client.request("POST", "/v1/quote", &quote_req("SELEKT nope"));
    assert_eq!(status, 400);
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("parse"));

    // Unknown table: plan failure, still 400.
    let (status, _) = client.request("POST", "/v1/quote", &quote_req("SELECT * FROM Missing"));
    assert_eq!(status, 400);

    // Non-JSON body.
    let (status, doc) = client.request("POST", "/v1/quote", "not json");
    assert_eq!(status, 400);
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("body"));

    // Missing field.
    let (status, _) = client.request("POST", "/v1/quote", "{}");
    assert_eq!(status, 400);

    // Unknown route vs known route with the wrong method.
    let (status, _) = client.request("GET", "/v2/nope", "");
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/v1/quote", "");
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn inflight_cap_of_zero_rejects_every_request_with_backpressure() {
    let cfg = ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    };
    let server = PricingServer::start(
        broker(PricingFunction::WeightedCoverage),
        cfg,
        Telemetry::disabled(),
    )
    .expect("server boot");
    let mut client = Client::connect(&server);
    let (status, doc) = client.request("GET", "/v1/healthz", "");
    assert_eq!(status, 503);
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("backpressure"));
    // The connection survives backpressure: the next request still gets
    // answered (and still rejected) on the same socket.
    let (status, _) = client.request("GET", "/v1/healthz", "");
    assert_eq!(status, 503);
    server.shutdown();
}

#[test]
fn connection_cap_rejects_excess_sessions_at_accept() {
    let cfg = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let server = PricingServer::start(
        broker(PricingFunction::WeightedCoverage),
        cfg,
        Telemetry::disabled(),
    )
    .expect("server boot");

    // Saturate the cap with two live sessions (a served request proves
    // each connection's thread is up and counted).
    let mut first = Client::connect(&server);
    let mut second = Client::connect(&server);
    assert_eq!(first.request("GET", "/v1/healthz", "").0, 200);
    assert_eq!(second.request("GET", "/v1/healthz", "").0, 200);

    // The third session is refused at accept time, before any request.
    let mut third = Client::connect(&server);
    let (status, doc) = third.read_response();
    assert_eq!(status, 503);
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("backpressure"));
    server.shutdown();
}

#[test]
fn concurrent_sessions_price_identically_to_a_sequential_broker() {
    let server = serve(PricingFunction::ShannonEntropy);
    let direct = broker(PricingFunction::ShannonEntropy);
    let sqls = [
        "SELECT * FROM User",
        "SELECT count(*) FROM User WHERE gender = 'f'",
        "SELECT age FROM User WHERE uid = 3",
        "SELECT uid FROM User WHERE age > 18",
    ];

    let wire_prices: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let server = &server;
                scope.spawn(move || {
                    let mut client = Client::connect(server);
                    sqls.iter()
                        .map(|sql| {
                            let (status, doc) =
                                client.request("POST", "/v1/quote", &quote_req(sql));
                            assert_eq!(status, 200);
                            num(&doc, "price").to_bits()
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session"))
            .collect()
    });

    let expected: Vec<u64> = sqls
        .iter()
        .map(|sql| direct.quote(sql).expect("direct").to_bits())
        .collect();
    for session in &wire_prices {
        assert_eq!(
            session, &expected,
            "a concurrent session saw drifted prices"
        );
    }
    server.shutdown();
}

#[test]
fn http_helpers_round_trip_a_request() {
    // Frame a request with the server's writer conventions, read it back
    // with the server's reader: the two halves agree on the protocol.
    let raw = "POST /v1/buy HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
    let req = read_request(&mut BufReader::new(raw.as_bytes()))
        .expect("parse")
        .expect("one request");
    assert_eq!(
        (req.method.as_str(), req.path.as_str()),
        ("POST", "/v1/buy")
    );

    let mut out = Vec::new();
    write_response(&mut out, 404, "{}", false).expect("write");
    let text = String::from_utf8(out).expect("utf8");
    assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
    assert!(text.contains("Connection: close\r\n"));
}
