//! Minimal HTTP/1.1 framing over blocking sockets.
//!
//! The service speaks just enough HTTP for a JSON API: request-line +
//! headers + `Content-Length`-delimited bodies on the way in, fixed
//! status lines + `Content-Length` on the way out. Chunked encoding,
//! `Expect: continue`, and multi-line headers are out of scope — a peer
//! that needs them gets a 400 and the connection closed. Keep-alive is
//! the default (HTTP/1.1 semantics): a connection carries a session's
//! whole request stream, which is what makes the load generator's
//! "thousands of concurrent sessions" claim mean something.
//!
//! Limits are enforced while reading, not after: a request line or
//! header block larger than [`MAX_HEAD_BYTES`] or a declared body larger
//! than [`MAX_BODY_BYTES`] aborts the read before the allocation, so a
//! misbehaving client cannot balloon server memory.

use std::io::{self, BufRead, Write};

/// Cap on the request line plus all headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on a declared request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (no query-string splitting; the API has none).
    pub path: String,
    /// Raw body bytes, decoded as UTF-8.
    pub body: String,
    /// False when the client sent `Connection: close`.
    pub keep_alive: bool,
}

/// Why a read failed at the protocol (not socket) level.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed framing: bad request line, oversized head/body,
    /// non-numeric `Content-Length`, or a non-UTF-8 body.
    Malformed(&'static str),
    /// The socket failed mid-request.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request off `reader`.
///
/// Returns `Ok(None)` on clean EOF before any bytes (the client closed a
/// keep-alive connection between requests), `Err` on torn or oversized
/// framing.
pub fn read_request(reader: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line_limited(reader, &mut head_bytes)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line lacks a target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("request line lacks a version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut content_length = 0usize;
    // HTTP/1.0 closes by default; HTTP/1.1 keeps alive by default.
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let line = read_line_limited(reader, &mut head_bytes)?
            .ok_or(HttpError::Malformed("connection closed inside headers"))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header lacks a colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed("non-numeric Content-Length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::Malformed("body exceeds the size cap"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not valid UTF-8"))?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Reads one CRLF (or bare-LF) terminated line, charging its bytes
/// against the shared head budget. `Ok(None)` only on EOF at a line
/// boundary with nothing read.
fn read_line_limited(
    reader: &mut impl BufRead,
    head_bytes: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Malformed("connection closed mid-line"));
        }
        let (chunk, found_newline) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        if *head_bytes + line.len() + chunk > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed("request head exceeds the size cap"));
        }
        line.extend_from_slice(&buf[..chunk]);
        reader.consume(chunk);
        if found_newline {
            break;
        }
    }
    *head_bytes += line.len();
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Malformed("header bytes are not valid UTF-8"))
}

/// Writes one JSON response and flushes it.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Canonical reason phrase for the handful of statuses the API emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/quote HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/quote");
        assert_eq!(req.body, "abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let req = parse("GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn oversized_body_declaration_is_rejected_before_reading_it() {
        let raw = format!(
            "POST /v1/quote HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(&raw),
            Err(HttpError::Malformed("body exceeds the size cap"))
        ));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse(&raw),
            Err(HttpError::Malformed("request head exceeds the size cap"))
        ));
    }

    #[test]
    fn torn_request_line_is_an_error() {
        assert!(matches!(
            parse("GET /onl"),
            Err(HttpError::Malformed("connection closed mid-line"))
        ));
    }

    #[test]
    fn response_is_length_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
