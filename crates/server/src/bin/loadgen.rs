//! Concurrent-session load generator and determinism check for the
//! pricing service.
//!
//! `cargo run -p qirana-server --bin loadgen --release -- [--sessions N]
//! [--requests N] [--support N] [--seed N] [--client-threads N]
//! [--json PATH]`
//!
//! Two phases against two identically-constructed servers:
//!
//! 1. **Concurrent**: N buyer sessions (default 1000), each a live
//!    keep-alive HTTP connection with its own buyer account, all open
//!    simultaneously and multiplexed over a handful of client threads.
//!    Every session issues the same deterministic mix of quotes and
//!    buys; per-request latency is measured client-side.
//! 2. **Sequential replay**: a fresh server from the same database,
//!    config, and cache warm-up serves the identical request log one
//!    session at a time, one request at a time.
//!
//! The load-bearing assertion is bitwise: every (session, request)
//! price from the concurrent phase must equal the sequential phase's
//! price down to the last mantissa bit. Quotes run concurrently on the
//! broker's read lock and buys serialize on the write lock, so any
//! interleaving sensitivity — a torn cache probe, a scratch database
//! leaking state, an account update racing a quote — shows up here as a
//! flipped bit. Prices travel as JSON numbers; the emitter is
//! shortest-round-trip, so the wire does not quantize.
//!
//! Writes a `qirana-bench/v1` artifact (default `BENCH_10.json`) with
//! throughput and p50/p99 latency. `--validate PATH` schema-checks an
//! existing artifact and exits.

// CLI/bench target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the
// library crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use qirana_bench::json::{self, Json};
use qirana_bench::{validate_bench_json, Args, Harness};
use qirana_core::{EngineOptions, PricingFunction, Qirana, QiranaConfig, SupportConfig, Telemetry};
use qirana_datagen::world;
use qirana_server::{PricingServer, ServerConfig};

/// The query pool sessions draw from (world dataset: Country,
/// CountryLanguage, City). Mixed shapes so cache hits, misses, and
/// history-aware repricing all occur under load.
const POOL: &[&str] = &[
    "SELECT * FROM Country WHERE ID < 100",
    "SELECT Name FROM Country WHERE Continent = 'Asia'",
    "SELECT Name FROM Country WHERE Continent = 'Europe'",
    "SELECT Name FROM Country WHERE Population > 10000000",
    "SELECT ID, GNP FROM Country",
    "SELECT Continent, count(*) FROM Country GROUP BY Continent",
    "SELECT AVG(Population) FROM Country",
    "SELECT Region FROM Country",
    "SELECT * FROM CountryLanguage",
    "SELECT ID, Name, Continent, Population FROM Country",
    "SELECT Name, Population FROM City WHERE Population > 200000",
    "SELECT CountryCode, count(*), sum(Population) FROM City GROUP BY CountryCode",
];

/// One session's j-th request: mostly quotes, every 4th a buy. The
/// (session, request) pair fully determines the query, so the
/// concurrent and sequential phases replay the same log by construction.
fn request_for(session: usize, request: usize) -> (&'static str, &'static str) {
    let sql = POOL[(session.wrapping_mul(31).wrapping_add(request * 7)) % POOL.len()];
    let verb = if request % 4 == 3 { "buy" } else { "quote" };
    (verb, sql)
}

fn build_server(support: usize, seed: u64, telemetry: Telemetry) -> PricingServer {
    let mut broker = Qirana::new(
        world::generate(7),
        QiranaConfig {
            total_price: 100.0,
            function: PricingFunction::WeightedCoverage,
            support: SupportConfig {
                size: support,
                seed,
                ..Default::default()
            },
            engine: EngineOptions::default().with_telemetry(telemetry.clone()),
            ..Default::default()
        },
    )
    .expect("broker construction");
    // Warm the pricing cache identically on every server instance: buys
    // populate the memo (quotes are peek-only and never insert), so a
    // fleet of quoting sessions alone would never share work. One
    // warm-up buyer purchasing the whole pool puts every plan's bitmap
    // in cache before either phase starts.
    for sql in POOL {
        broker.buy("warm", sql).expect("cache warm-up buy");
    }
    PricingServer::start(
        broker,
        ServerConfig {
            max_connections: 8192,
            max_inflight: 8192,
        },
        telemetry,
    )
    .expect("server boot")
}

/// One keep-alive session: a connection plus its buyer name.
struct Session {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    buyer: String,
}

impl Session {
    fn open(addr: std::net::SocketAddr, index: usize) -> Session {
        let stream = TcpStream::connect(addr).expect("session connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("socket clone"));
        Session {
            stream,
            reader,
            buyer: format!("s{index}"),
        }
    }

    /// Sends request `j` of this session and returns (price bits,
    /// latency in ns).
    fn issue(&mut self, request: usize, session: usize) -> (u64, u64) {
        let (verb, sql) = request_for(session, request);
        let (path, body) = match verb {
            "buy" => (
                "/v1/buy",
                json::render(&Json::Obj(vec![
                    ("buyer".to_string(), Json::Str(self.buyer.clone())),
                    ("sql".to_string(), Json::Str(sql.to_string())),
                ])),
            ),
            _ => (
                "/v1/quote",
                json::render(&Json::Obj(vec![(
                    "sql".to_string(),
                    Json::Str(sql.to_string()),
                )])),
            ),
        };
        // qirana-lint::allow(QL004): client-side latency is the bench observable
        let t0 = Instant::now();
        write!(
            self.stream,
            "POST {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let (status, doc) = read_response(&mut self.reader);
        let ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(
            status, 200,
            "session {session} request {request} ({verb} {sql}) failed: {doc:?}"
        );
        let price = doc
            .get("price")
            .and_then(Json::as_num)
            .expect("price field");
        (price.to_bits(), ns)
    }
}

fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Json) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("malformed status line: {line:?}"))
        .parse()
        .expect("numeric status");
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    let text = String::from_utf8(body).expect("utf8 body");
    (status, json::parse(&text).expect("json body"))
}

/// Runs all sessions concurrently: every session's connection is opened
/// before any request is sent, so the server genuinely holds `sessions`
/// live keep-alive connections at once. Returns price bits indexed by
/// `[session][request]` plus all client-side latencies in ns.
fn concurrent_phase(
    addr: std::net::SocketAddr,
    sessions: usize,
    requests: usize,
    client_threads: usize,
) -> (Vec<Vec<u64>>, Vec<u64>) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..client_threads)
            .map(|t| {
                scope.spawn(move || {
                    let mine: Vec<usize> =
                        (0..sessions).filter(|i| i % client_threads == t).collect();
                    let mut open: Vec<Session> =
                        mine.iter().map(|&i| Session::open(addr, i)).collect();
                    let mut prices: Vec<Vec<u64>> =
                        mine.iter().map(|_| Vec::with_capacity(requests)).collect();
                    let mut latencies = Vec::with_capacity(mine.len() * requests);
                    // Round-robin: request j across all of this thread's
                    // sessions before request j+1, so the server sees
                    // interleaved traffic, not one session at a time.
                    for j in 0..requests {
                        for (slot, &i) in mine.iter().enumerate() {
                            let (bits, ns) = open[slot].issue(j, i);
                            prices[slot].push(bits);
                            latencies.push(ns);
                        }
                    }
                    (mine, prices, latencies)
                })
            })
            .collect();
        let mut by_session = vec![Vec::new(); sessions];
        let mut all_latencies = Vec::with_capacity(sessions * requests);
        for handle in handles {
            let (mine, prices, latencies) = handle.join().expect("client thread");
            for (i, session_prices) in mine.into_iter().zip(prices) {
                by_session[i] = session_prices;
            }
            all_latencies.extend(latencies);
        }
        (by_session, all_latencies)
    })
}

/// Replays the identical request log one session at a time on a fresh
/// server.
fn sequential_phase(addr: std::net::SocketAddr, sessions: usize, requests: usize) -> Vec<Vec<u64>> {
    (0..sessions)
        .map(|i| {
            let mut session = Session::open(addr, i);
            (0..requests).map(|j| session.issue(j, i).0).collect()
        })
        .collect()
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * p / 100).min(sorted.len() - 1);
    sorted[idx]
}

fn main() {
    let args = Args::parse();
    let validate: String = args.get("validate", String::new());
    if !validate.is_empty() {
        let text = std::fs::read_to_string(&validate)
            .unwrap_or_else(|e| panic!("reading {validate}: {e}"));
        match validate_bench_json(&text) {
            Ok(()) => {
                println!("{validate}: schema-valid ({})", qirana_bench::SCHEMA);
                return;
            }
            Err(e) => {
                eprintln!("{validate}: INVALID — {e}");
                std::process::exit(1);
            }
        }
    }

    let sessions: usize = args.get("sessions", 1000);
    let requests: usize = args.get("requests", 4);
    let support: usize = args.get("support", 64);
    let seed: u64 = args.get("seed", 1);
    let client_threads: usize = args.get("client-threads", 8).max(1);

    let mut h = Harness::from_args("loadgen", &args, Some("BENCH_10.json"));
    h.param("sessions", sessions);
    h.param("requests", requests);
    h.param("support", support);
    h.param("seed", seed);
    h.param("client_threads", client_threads);

    println!("== Concurrent pricing service (S={sessions} sessions × R={requests} requests) ==");

    let concurrent_server = build_server(support, seed, h.telemetry());
    let addr = concurrent_server.addr();
    // qirana-lint::allow(QL004): wall-clock throughput is the bench metric
    let t0 = Instant::now();
    let (concurrent_prices, mut latencies) =
        concurrent_phase(addr, sessions, requests, client_threads);
    let wall = t0.elapsed().as_secs_f64();
    concurrent_server.shutdown();

    let total = sessions * requests;
    // qirana-lint::allow(QL002): request counts stay exact below 2^53
    let throughput = total as f64 / wall;
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 50);
    let p99 = percentile(&latencies, 99);
    println!(
        "concurrent: {total} requests in {wall:.3}s — {throughput:.0} req/s, \
         p50 {:.3}ms, p99 {:.3}ms",
        // qirana-lint::allow(QL002): ns latencies stay exact below 2^53
        p50 as f64 / 1e6,
        // qirana-lint::allow(QL002): ns latencies stay exact below 2^53
        p99 as f64 / 1e6,
    );
    h.record("throughput_rps", "concurrent", throughput);
    // qirana-lint::allow(QL002): ns latencies stay exact below 2^53
    h.record("latency_p50_ms", "concurrent", p50 as f64 / 1e6);
    // qirana-lint::allow(QL002): ns latencies stay exact below 2^53
    h.record("latency_p99_ms", "concurrent", p99 as f64 / 1e6);

    let sequential_server = build_server(support, seed, h.telemetry());
    let (sequential_prices, secs) = h.time("sequential_replay", "all-sessions", || {
        sequential_phase(sequential_server.addr(), sessions, requests)
    });
    sequential_server.shutdown();
    println!("sequential replay: {total} requests in {secs:.3}s");

    let mut mismatches = 0usize;
    for i in 0..sessions {
        for j in 0..requests {
            if concurrent_prices[i][j] != sequential_prices[i][j] {
                if mismatches == 0 {
                    let (verb, sql) = request_for(i, j);
                    eprintln!(
                        "MISMATCH session {i} request {j} ({verb} {sql}): \
                         concurrent {:?} != sequential {:?}",
                        f64::from_bits(concurrent_prices[i][j]),
                        f64::from_bits(sequential_prices[i][j]),
                    );
                }
                mismatches += 1;
            }
        }
    }
    // qirana-lint::allow(QL002): mismatch counts stay exact below 2^53
    let mismatches_metric = mismatches as f64;
    h.record(
        "price_mismatches",
        "concurrent-vs-sequential",
        mismatches_metric,
    );
    assert_eq!(
        mismatches, 0,
        "{mismatches}/{total} prices diverged between concurrent and sequential replay"
    );
    println!("determinism: all {total} prices bitwise-identical across phases");

    if let Some(path) = h.finish().expect("bench artifact") {
        println!("wrote {}", path.display());
    }
}
