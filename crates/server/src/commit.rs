//! The service's serialized commit path.
//!
//! Every state-changing request — a purchase or a seller-side update —
//! funnels through this module and nowhere else. The handlers take the
//! *write* lock on the shared broker, so commits are totally ordered
//! with respect to each other and to every in-flight quote: a quote
//! observes the market either entirely before or entirely after a
//! commit, never a torn middle. The broker's own append-then-apply
//! discipline (WAL first, memory second) runs unchanged under the lock;
//! this module adds ordering, not durability.
//!
//! Quotes deliberately do NOT come through here — they run on the read
//! lock against `&Qirana` (see the crate docs for the split).

use std::sync::{PoisonError, RwLock};

use qirana_core::{BrokerError, Purchase, Qirana};

/// Commits one history-aware purchase for `buyer`.
///
/// Serialized: holds the broker write lock for the duration of the buy,
/// which covers the WAL append, the fsync (per the ledger's policy), and
/// the in-memory account mutation as one atomic step from any reader's
/// point of view.
pub fn commit_buy(
    broker: &RwLock<Qirana>,
    buyer: &str,
    sql: &str,
) -> Result<Purchase, BrokerError> {
    let mut b = broker.write().unwrap_or_else(PoisonError::into_inner);
    b.buy(buyer, sql)
}

/// Commits one seller-side UPDATE, returning the number of changed cells.
///
/// Serialized like [`commit_buy`]; additionally invalidates the pricing
/// cache (generation bump inside the broker) so no later quote can serve
/// a price computed against the pre-update database.
pub fn commit_update(broker: &RwLock<Qirana>, sql: &str) -> Result<usize, BrokerError> {
    let mut b = broker.write().unwrap_or_else(PoisonError::into_inner);
    b.commit_update(sql)
}
