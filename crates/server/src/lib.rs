//! # qirana-server
//!
//! A multi-tenant HTTP/JSON pricing service in front of the QIRANA
//! broker.
//!
//! ## The read/commit split
//!
//! The broker's quote path is `&self` (peek-only pricing-cache probes,
//! scratch databases from an internal pool), so the service wraps one
//! [`Qirana`] in an [`RwLock`] and runs every quote under the *read*
//! lock: any number of buyer sessions price concurrently without
//! serializing on each other. State changes — purchases and seller-side
//! updates — go through [`commit`], which takes the *write* lock and
//! preserves the broker's append-then-apply WAL discipline as one atomic
//! step. A quote therefore observes the market either entirely before or
//! entirely after any commit, and prices are bitwise independent of how
//! concurrent sessions interleave.
//!
//! ## Backpressure
//!
//! Two caps guard the single broker: a connection cap (excess TCP
//! accepts get an immediate 503 and a close) and an in-flight request
//! cap (accepted connections whose request would oversubscribe the
//! broker get a 503 with `"kind":"backpressure"` and keep their
//! connection). Budget trips inside the engine
//! ([`EngineError::BudgetExceeded`]) surface as 503 too: the request was
//! well-formed, the service is just out of the resources the seller
//! provisioned.
//!
//! ## API
//!
//! | Route | Body | Returns |
//! |---|---|---|
//! | `POST /v1/quote` | `{"sql"}` | `{"price","degraded"}` |
//! | `POST /v1/bundle-quote` | `{"sqls":[…]}` | `{"price","degraded"}` |
//! | `POST /v1/buy` | `{"buyer","sql"}` | price, totals, and the answer |
//! | `POST /v1/admin/update` | `{"sql"}` | `{"updated"}` |
//! | `GET /v1/account/<buyer>` | — | `{"paid","coverage","purchases"}` |
//! | `GET /v1/history/<buyer>` | — | `{"queries":[…]}` |
//! | `GET /v1/healthz` | — | `{"ok","degraded"}` |
//! | `GET /v1/stats` | — | counters + cache stats |
//!
//! Errors are `{"error": <message>, "kind": <slug>}` with 400 for
//! malformed requests and unpriceable SQL, 404 for unknown routes and
//! buyers, 503 for backpressure/budget/ledger trouble, 500 for broken
//! invariants.

pub mod commit;
pub mod http;

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};
use std::thread::{self, JoinHandle};

use qirana_bench::json::{self, Json};
use qirana_core::{BrokerError, Purchase, Qirana, Stage, Telemetry};
use qirana_sqlengine::EngineError;

use http::Request;

/// Service limits. Both caps defend the one shared broker, not the OS.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Concurrent TCP connections (buyer sessions). Accepts beyond this
    /// are answered 503 and closed without spawning a thread.
    pub max_connections: usize,
    /// Concurrent requests actually executing against the broker.
    /// Requests beyond this are answered 503 (`"kind":"backpressure"`)
    /// but keep their connection: the session retries, it does not
    /// re-handshake.
    pub max_inflight: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 2048,
            max_inflight: 256,
        }
    }
}

/// Everything the accept loop and connection threads share.
struct Shared {
    broker: RwLock<Qirana>,
    cfg: ServerConfig,
    tel: Telemetry,
    connections: AtomicUsize,
    inflight: AtomicUsize,
    requests_total: AtomicU64,
    rejected_total: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    fn read_broker(&self) -> RwLockReadGuard<'_, Qirana> {
        self.broker.read().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A running pricing service bound to a loopback port.
pub struct PricingServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl PricingServer {
    /// Boots the service on `127.0.0.1:0` (kernel-assigned port) and
    /// returns once the listener is live.
    pub fn start(broker: Qirana, cfg: ServerConfig, tel: Telemetry) -> io::Result<PricingServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            broker: RwLock::new(broker),
            cfg,
            tel,
            connections: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            requests_total: AtomicU64::new(0),
            rejected_total: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let loop_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("qirana-accept".into())
            .spawn(move || accept_loop(&listener, &loop_shared))?;
        Ok(PricingServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// Connection threads drain as their clients hang up.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; poke it awake so it can
        // observe the flag. A failed connect means it is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PricingServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        if shared.connections.load(Ordering::Acquire) >= shared.cfg.max_connections {
            shared.rejected_total.fetch_add(1, Ordering::Relaxed);
            let body = error_body("connection limit reached; retry later", "backpressure");
            let _ = http::write_response(&mut stream, 503, &body, false);
            continue;
        }
        shared.connections.fetch_add(1, Ordering::AcqRel);
        let conn_shared = Arc::clone(shared);
        // Sessions are thread-per-connection with small stacks: request
        // handling recurses nowhere, so 128 KiB keeps a thousand idle
        // keep-alive sessions cheap.
        let spawned = thread::Builder::new()
            .name("qirana-conn".into())
            .stack_size(128 * 1024)
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared.connections.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            shared.connections.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Serves one keep-alive session until the client hangs up, sends
/// `Connection: close`, or breaks the protocol.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(http::HttpError::Malformed(why)) => {
                let _ = http::write_response(&mut stream, 400, &error_body(why, "http"), false);
                return;
            }
            Err(http::HttpError::Io(_)) => return,
        };
        let keep_alive = req.keep_alive;
        let (status, body) = respond(shared, &req);
        if http::write_response(&mut stream, status, &body, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Decrements the in-flight gauge on every exit path.
struct InflightGuard<'a>(&'a AtomicUsize);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Admission control + telemetry around one routed request.
fn respond(shared: &Shared, req: &Request) -> (u16, String) {
    shared.requests_total.fetch_add(1, Ordering::Relaxed);
    let inflight = shared.inflight.fetch_add(1, Ordering::AcqRel) + 1;
    let _guard = InflightGuard(&shared.inflight);
    if inflight > shared.cfg.max_inflight {
        shared.rejected_total.fetch_add(1, Ordering::Relaxed);
        return (
            503,
            error_body("server is at capacity; retry", "backpressure"),
        );
    }
    let route = format!("{} {}", req.method, req.path);
    let t0 = shared.tel.now_ns();
    let out = {
        let _span = shared.tel.span_with(Stage::ServerRequest, route);
        route_request(shared, req)
    };
    if let (Some(t0), Some(t1)) = (t0, shared.tel.now_ns()) {
        shared
            .tel
            .observe("server_request_ns", t1.saturating_sub(t0));
    }
    out
}

fn route_request(shared: &Shared, req: &Request) -> (u16, String) {
    let (method, path) = (req.method.as_str(), req.path.as_str());
    match (method, path) {
        ("POST", "/v1/quote") => post_quote(shared, &req.body),
        ("POST", "/v1/bundle-quote") => post_bundle_quote(shared, &req.body),
        ("POST", "/v1/buy") => post_buy(shared, &req.body),
        ("POST", "/v1/admin/update") => post_update(shared, &req.body),
        ("GET", "/v1/healthz") => get_healthz(shared),
        ("GET", "/v1/stats") => get_stats(shared),
        ("GET", _) if path.starts_with("/v1/account/") => {
            get_account(shared, &path["/v1/account/".len()..])
        }
        ("GET", _) if path.starts_with("/v1/history/") => {
            get_history(shared, &path["/v1/history/".len()..])
        }
        _ if known_path(path) => (405, error_body("method not allowed for route", "method")),
        _ => (404, error_body("no such route", "route")),
    }
}

/// True for routes that exist under *some* method (drives 405 vs 404).
fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/v1/quote"
            | "/v1/bundle-quote"
            | "/v1/buy"
            | "/v1/admin/update"
            | "/v1/healthz"
            | "/v1/stats"
    ) || path.starts_with("/v1/account/")
        || path.starts_with("/v1/history/")
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

fn post_quote(shared: &Shared, body: &str) -> (u16, String) {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(out) => return out,
    };
    let sql = match str_field(&doc, "sql") {
        Ok(sql) => sql,
        Err(out) => return out,
    };
    match shared.read_broker().quote_ex(sql) {
        Ok(q) => (
            200,
            render_obj(vec![
                ("price", Json::Num(q.price)),
                ("degraded", Json::Bool(q.degraded)),
            ]),
        ),
        Err(e) => error_response(&e),
    }
}

fn post_bundle_quote(shared: &Shared, body: &str) -> (u16, String) {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(out) => return out,
    };
    let Some(items) = doc.get("sqls").and_then(Json::as_arr) else {
        return (400, error_body("body needs an array field `sqls`", "body"));
    };
    let mut sqls = Vec::with_capacity(items.len());
    for item in items {
        match item.as_str() {
            Some(sql) => sqls.push(sql),
            None => return (400, error_body("`sqls` must contain only strings", "body")),
        }
    }
    match shared.read_broker().quote_bundle_ex(&sqls) {
        Ok(q) => (
            200,
            render_obj(vec![
                ("price", Json::Num(q.price)),
                ("degraded", Json::Bool(q.degraded)),
            ]),
        ),
        Err(e) => error_response(&e),
    }
}

fn post_buy(shared: &Shared, body: &str) -> (u16, String) {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(out) => return out,
    };
    let (buyer, sql) = match (str_field(&doc, "buyer"), str_field(&doc, "sql")) {
        (Ok(buyer), Ok(sql)) => (buyer, sql),
        (Err(out), _) | (_, Err(out)) => return out,
    };
    match commit::commit_buy(&shared.broker, buyer, sql) {
        Ok(p) => (200, purchase_body(&p)),
        Err(e) => error_response(&e),
    }
}

fn purchase_body(p: &Purchase) -> String {
    let columns = p
        .output
        .columns
        .iter()
        .map(|c| Json::Str(c.clone()))
        .collect();
    // Cell values are rendered through the engine's canonical `Display`
    // (the same text the agreement checks hash), as strings: the JSON
    // layer must not re-quantize an i64 key through f64.
    let rows = p
        .output
        .rows
        .iter()
        .map(|row| Json::Arr(row.iter().map(|v| Json::Str(v.to_string())).collect()))
        .collect::<Vec<_>>();
    render_obj(vec![
        ("price", Json::Num(p.price)),
        ("total_paid", Json::Num(p.total_paid)),
        ("degraded", Json::Bool(p.degraded)),
        ("row_count", count(p.output.rows.len() as u64)),
        ("columns", Json::Arr(columns)),
        ("rows", Json::Arr(rows)),
    ])
}

fn post_update(shared: &Shared, body: &str) -> (u16, String) {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(out) => return out,
    };
    let sql = match str_field(&doc, "sql") {
        Ok(sql) => sql,
        Err(out) => return out,
    };
    match commit::commit_update(&shared.broker, sql) {
        Ok(cells) => (200, render_obj(vec![("updated", count(cells as u64))])),
        Err(e) => error_response(&e),
    }
}

fn get_account(shared: &Shared, buyer: &str) -> (u16, String) {
    let broker = shared.read_broker();
    let Some(paid) = broker.buyer_paid(buyer) else {
        return (404, error_body("unknown buyer", "buyer"));
    };
    let coverage = broker.buyer_coverage(buyer).map_or(Json::Null, Json::Num);
    let purchases = broker.buyer_history(buyer).map_or(0, |h| h.len());
    (
        200,
        render_obj(vec![
            ("buyer", Json::Str(buyer.to_string())),
            ("paid", Json::Num(paid)),
            ("coverage", coverage),
            ("purchases", count(purchases as u64)),
        ]),
    )
}

fn get_history(shared: &Shared, buyer: &str) -> (u16, String) {
    let Some(history) = shared.read_broker().buyer_history(buyer) else {
        return (404, error_body("unknown buyer", "buyer"));
    };
    let queries = history.into_iter().map(Json::Str).collect();
    (
        200,
        render_obj(vec![
            ("buyer", Json::Str(buyer.to_string())),
            ("queries", Json::Arr(queries)),
        ]),
    )
}

fn get_healthz(shared: &Shared) -> (u16, String) {
    let degraded = shared.read_broker().is_degraded();
    (
        200,
        render_obj(vec![
            ("ok", Json::Bool(true)),
            ("degraded", Json::Bool(degraded)),
        ]),
    )
}

fn get_stats(shared: &Shared) -> (u16, String) {
    let (stats, entries, generation) = {
        let broker = shared.read_broker();
        (
            broker.cache_stats(),
            broker.cache_len(),
            broker.cache_generation(),
        )
    };
    let cache = Json::Obj(vec![
        ("hits".to_string(), count(stats.hits)),
        ("misses".to_string(), count(stats.misses)),
        ("evictions".to_string(), count(stats.evictions)),
        ("invalidations".to_string(), count(stats.invalidations)),
        ("entries".to_string(), count(entries as u64)),
        ("generation".to_string(), count(generation)),
    ]);
    (
        200,
        render_obj(vec![
            (
                "requests_total",
                count(shared.requests_total.load(Ordering::Relaxed)),
            ),
            (
                "rejected_total",
                count(shared.rejected_total.load(Ordering::Relaxed)),
            ),
            (
                "inflight",
                count(shared.inflight.load(Ordering::Acquire) as u64),
            ),
            (
                "connections",
                count(shared.connections.load(Ordering::Acquire) as u64),
            ),
            ("cache", cache),
        ]),
    )
}

// ---------------------------------------------------------------------------
// JSON plumbing
// ---------------------------------------------------------------------------

fn parse_body(body: &str) -> Result<Json, (u16, String)> {
    json::parse(body).map_err(|e| (400, error_body(&format!("invalid JSON body: {e}"), "body")))
}

fn str_field<'a>(doc: &'a Json, key: &str) -> Result<&'a str, (u16, String)> {
    doc.get(key).and_then(Json::as_str).ok_or_else(|| {
        (
            400,
            error_body(&format!("body needs a string field `{key}`"), "body"),
        )
    })
}

fn render_obj(fields: Vec<(&str, Json)>) -> String {
    json::render(&Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    ))
}

/// Counter → JSON number.
fn count(n: u64) -> Json {
    // qirana-lint::allow(QL002): counters stay exact below 2^53
    Json::Num(n as f64)
}

fn error_body(message: &str, kind: &str) -> String {
    render_obj(vec![
        ("error", Json::Str(message.to_string())),
        ("kind", Json::Str(kind.to_string())),
    ])
}

/// Maps a broker failure onto an HTTP status + error document.
///
/// 400 means "your request can never succeed as written" (unparseable,
/// unplannable, or unevaluable SQL); 503 means "the service is out of
/// resources or durability, retry later"; 500 means a broken internal
/// invariant.
fn error_response(e: &BrokerError) -> (u16, String) {
    let (status, kind) = match e {
        BrokerError::Engine(engine) => match engine {
            EngineError::Parse { .. } => (400, "parse"),
            EngineError::Plan(_) => (400, "plan"),
            EngineError::Eval(_) => (400, "eval"),
            EngineError::Schema(_) => (400, "schema"),
            EngineError::BudgetExceeded { .. } => (503, "budget"),
            EngineError::Internal(_) => (500, "internal"),
        },
        BrokerError::Ledger(_) => (503, "ledger"),
        BrokerError::Weights(_) => (500, "weights"),
        BrokerError::Support(_) => (500, "support"),
        BrokerError::Pricing(_) => (500, "pricing"),
        BrokerError::BitmapLength { .. } => (500, "bitmap"),
        BrokerError::Injected(_) => (500, "injected"),
    };
    (status, error_body(&e.to_string(), kind))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_and_parse_map_to_distinct_statuses() {
        let budget = BrokerError::Engine(EngineError::BudgetExceeded {
            resource: qirana_sqlengine::BudgetResource::Rows,
            limit: 10,
        });
        let parse = BrokerError::Engine(EngineError::Parse {
            offset: 0,
            message: "x".into(),
        });
        assert_eq!(error_response(&budget).0, 503);
        assert_eq!(error_response(&parse).0, 400);
        assert!(error_response(&budget).1.contains("\"kind\":\"budget\""));
    }

    #[test]
    fn known_paths_drive_405_not_404() {
        assert!(known_path("/v1/quote"));
        assert!(known_path("/v1/account/alice"));
        assert!(!known_path("/v2/quote"));
    }
}
