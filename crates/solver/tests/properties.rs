//! Property-based tests of the max-entropy solver: every feasible nested
//! system solves with nonnegative weights and tight constraints, and the
//! optimum dominates random feasible perturbations in entropy.

use proptest::prelude::*;
use qirana_solver::{solve, MaxEntProblem, SolveResult};

/// Builds a feasible system of nested indicator constraints: row 0 is the
/// total, further rows cover nested prefixes with consistent targets
/// (generated from an explicit feasible weight vector).
fn nested_problem(weights: Vec<f64>, cuts: Vec<usize>) -> MaxEntProblem {
    let n = weights.len();
    let mut a = vec![vec![1.0; n]];
    let mut b = vec![weights.iter().sum::<f64>()];
    for cut in cuts {
        let cut = 1 + cut % n;
        let mut row = vec![0.0; n];
        row[..cut].iter_mut().for_each(|x| *x = 1.0);
        b.push(weights[..cut].iter().sum());
        a.push(row);
    }
    MaxEntProblem { a, b, n }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn feasible_nested_systems_solve(
        weights in prop::collection::vec(0.05f64..5.0, 2..40),
        cuts in prop::collection::vec(0usize..40, 0..4),
    ) {
        let p = nested_problem(weights, cuts);
        match solve(&p) {
            SolveResult::Optimal { weights: w, residual, .. } => {
                prop_assert!(residual < 1e-6, "residual {residual}");
                prop_assert!(w.iter().all(|&x| x >= -1e-9), "negative weight");
                // Constraints hold.
                for (row, target) in p.a.iter().zip(&p.b) {
                    let got: f64 = row.iter().zip(&w).map(|(a, w)| a * w).sum();
                    prop_assert!(
                        (got - target).abs() < 1e-5 * (1.0 + target.abs()),
                        "constraint {got} != {target}"
                    );
                }
            }
            SolveResult::Infeasible { reason } => {
                prop_assert!(false, "feasible-by-construction system rejected: {reason}");
            }
            SolveResult::Aborted { cause, .. } => {
                prop_assert!(false, "no limits configured, yet aborted: {cause:?}");
            }
        }
    }

    #[test]
    fn optimum_has_max_entropy_among_perturbations(
        base in prop::collection::vec(0.2f64..2.0, 3..10),
        eps in 0.01f64..0.1,
    ) {
        // Single total constraint: optimum is uniform; any mass transfer
        // between two coordinates lowers entropy.
        let total: f64 = base.iter().sum();
        let n = base.len();
        let p = MaxEntProblem { a: vec![vec![1.0; n]], b: vec![total], n };
        let w = solve(&p).weights().expect("feasible").to_vec();
        let entropy = |w: &[f64]| -> f64 {
            w.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum()
        };
        let mut perturbed = w.clone();
        perturbed[0] += eps;
        perturbed[1] -= eps;
        if perturbed[1] > 0.0 {
            prop_assert!(entropy(&w) >= entropy(&perturbed) - 1e-9);
        }
    }

    #[test]
    fn subset_above_total_always_infeasible(
        n in 3usize..30,
        total in 1.0f64..100.0,
        excess in 1.01f64..3.0,
    ) {
        let mut sub = vec![0.0; n];
        sub[..n / 2 + 1].iter_mut().for_each(|x| *x = 1.0);
        let p = MaxEntProblem {
            a: vec![vec![1.0; n], sub],
            b: vec![total, total * excess],
            n,
        };
        prop_assert!(!solve(&p).is_optimal());
    }
}
