//! Small dense linear-algebra helpers for the dual Newton step.
//!
//! The dual of the entropy-maximization program has one variable per price
//! point (k ≤ a few dozen in practice), so an O(k³) dense solve is entirely
//! adequate — this is the piece SCS's sparse machinery is overkill for.

/// A dense, row-major square matrix.
#[derive(Debug, Clone)]
pub struct Matrix {
    pub n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] += v;
    }

    /// Adds `eps` to the diagonal (Tikhonov regularization).
    pub fn regularize(&mut self, eps: f64) {
        for i in 0..self.n {
            self.data[i * self.n + i] += eps;
        }
    }

    /// Solves `self · x = rhs` by Gaussian elimination with partial
    /// pivoting. Returns `None` if the matrix is numerically singular.
    pub fn solve(&self, rhs: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(rhs.len(), self.n);
        let n = self.n;
        let mut a = self.data.clone();
        let mut b = rhs.to_vec();
        for col in 0..n {
            // Pivot.
            let mut piv = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return None;
            }
            if piv != col {
                for j in 0..n {
                    a.swap(col * n + j, piv * n + j);
                }
                b.swap(col, piv);
            }
            // Eliminate.
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                b[r] -= factor * b[col];
            }
        }
        // Back-substitute.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= a[i * n + j] * x[j];
            }
            x[i] = s / a[i * n + i];
        }
        Some(x)
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut m = Matrix::zeros(3);
        for i in 0..3 {
            m.set(i, i, 1.0);
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_general() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 2.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 3.0);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero on the diagonal forces a row swap.
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 0.0);
        m.set(0, 1, 1.0);
        m.set(1, 0, 1.0);
        m.set(1, 1, 0.0);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn regularize_fixes_singularity() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 2.0);
        m.set(1, 1, 4.0);
        m.regularize(1e-6);
        assert!(m.solve(&[1.0, 2.0]).is_some());
    }

    #[test]
    fn norm_and_dot() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }
}
