//! # qirana-solver
//!
//! A from-scratch maximum-entropy convex solver, substituting for the
//! CVXPY + SCS stack the QIRANA paper uses to assign support-set weights
//! from seller price points (§3.3).
//!
//! The entropy-maximization program with linear equality constraints has a
//! smooth, low-dimensional dual (one variable per constraint), which a
//! damped Newton iteration minimizes to machine precision — see
//! [`maxent`] for the derivation. Infeasible price-point systems are
//! reported as [`maxent::SolveResult::Infeasible`] with a diagnosis, the
//! analogue of SCS's infeasibility certificate that QIRANA reacts to by
//! resampling or growing the support set.
//!
//! ```
//! use qirana_solver::{MaxEntProblem, solve};
//!
//! // Four support instances, total price 100, first two priced at 70.
//! let problem = MaxEntProblem {
//!     a: vec![vec![1.0, 1.0, 1.0, 1.0], vec![1.0, 1.0, 0.0, 0.0]],
//!     b: vec![100.0, 70.0],
//!     n: 4,
//! };
//! let weights = solve(&problem).weights().unwrap().to_vec();
//! assert!((weights[0] - 35.0).abs() < 1e-6);
//! assert!((weights[3] - 15.0).abs() < 1e-6);
//! ```

pub mod linalg;
pub mod maxent;

pub use maxent::{solve, solve_with, AbortCause, MaxEntProblem, SolveResult, SolverOptions};
