//! Maximum-entropy weight assignment.
//!
//! Solves the convex program of QIRANA §3.3:
//!
//! ```text
//! maximize   -Σᵢ wᵢ log wᵢ
//! subject to  A w = b,   w ≥ 0
//! ```
//!
//! where each row of `A` encodes one seller constraint (row 0 is usually the
//! all-ones "total price" row, further rows are the support-set membership
//! indicators of price points). The paper calls CVXPY + the SCS conic
//! solver; the same optimum is reached here directly through the smooth,
//! k-dimensional dual:
//!
//! The Lagrangian stationarity condition gives `wᵢ(λ) = exp(-1 - aᵢᵀλ)`
//! (`aᵢ` = column i of A), automatically positive, and the dual
//! `g(λ) = Σᵢ wᵢ(λ) + λᵀb` is convex with gradient `b - A w(λ)` and Hessian
//! `A diag(w) Aᵀ` — minimized by a damped Newton iteration with a
//! gradient-descent fallback. Infeasible instances make the dual unbounded
//! below; this is detected via diverging iterates with non-shrinking primal
//! residual, mirroring SCS's infeasibility certificates.

use crate::linalg::{dot, norm, Matrix};
use std::time::{Duration, Instant};

/// The entropy-maximization problem `max -Σ w log w  s.t.  A w = b, w ≥ 0`.
#[derive(Debug, Clone)]
pub struct MaxEntProblem {
    /// Constraint matrix, one row per constraint (`k × n`, row-of-rows).
    pub a: Vec<Vec<f64>>,
    /// Right-hand sides (`k`).
    pub b: Vec<f64>,
    /// Number of variables `n`.
    pub n: usize,
}

/// Solver knobs. [`SolverOptions::default`] is tuned for QIRANA's use
/// (k ≤ a few dozen price points, n up to ~10⁶ support-set entries).
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Stop when `‖Aw - b‖ / (1 + ‖b‖)` drops below this.
    pub tolerance: f64,
    /// Newton/gradient iteration cap.
    pub max_iterations: usize,
    /// Wall-clock deadline for the iteration loop; `None` (the default)
    /// means iterations are bounded only by `max_iterations`. Checked at
    /// the top of every iteration, so the solve returns within one
    /// iteration's work of the limit.
    pub time_limit: Option<Duration>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tolerance: 1e-9,
            max_iterations: 200,
            time_limit: None,
        }
    }
}

impl SolverOptions {
    /// Builder: sets the wall-clock deadline.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }
}

/// Why a solve was cut short without a feasibility verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// [`SolverOptions::time_limit`] elapsed before convergence.
    TimeLimit,
    /// Iterates became non-finite (NaN/∞ in the residual) — numerically
    /// diverged input, e.g. non-finite entries in `A` or `b`.
    NumericalDivergence,
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub enum SolveResult {
    /// Constraints satisfiable: the max-entropy weights.
    Optimal {
        weights: Vec<f64>,
        iterations: usize,
        /// Final relative primal residual.
        residual: f64,
    },
    /// No nonnegative `w` satisfies `A w = b` (or the solver could not
    /// certify one within its iteration budget).
    Infeasible {
        /// Human-readable diagnosis.
        reason: String,
    },
    /// The solve was cut short (deadline or numerical divergence) before
    /// either converging or certifying infeasibility. Unlike `Infeasible`,
    /// a retry — with more time, a resampled support set, or cleaner
    /// inputs — may still succeed.
    Aborted {
        cause: AbortCause,
        /// Iterations completed before the abort.
        iterations: usize,
        /// Last observed relative primal residual (∞ if none was computed).
        residual: f64,
    },
}

impl SolveResult {
    /// The weights, if optimal.
    pub fn weights(&self) -> Option<&[f64]> {
        match self {
            SolveResult::Optimal { weights, .. } => Some(weights),
            SolveResult::Infeasible { .. } | SolveResult::Aborted { .. } => None,
        }
    }

    /// True iff the solve succeeded.
    pub fn is_optimal(&self) -> bool {
        matches!(self, SolveResult::Optimal { .. })
    }

    /// True iff the solve was cut short without a feasibility verdict.
    pub fn is_aborted(&self) -> bool {
        matches!(self, SolveResult::Aborted { .. })
    }
}

/// Solves the problem with default options.
pub fn solve(problem: &MaxEntProblem) -> SolveResult {
    solve_with(problem, &SolverOptions::default())
}

/// Solves the problem with explicit options.
pub fn solve_with(problem: &MaxEntProblem, opts: &SolverOptions) -> SolveResult {
    let k = problem.a.len();
    let n = problem.n;
    assert_eq!(problem.b.len(), k, "b must have one entry per constraint");
    for (i, row) in problem.a.iter().enumerate() {
        assert_eq!(row.len(), n, "constraint row {i} has wrong arity");
    }
    if n == 0 {
        return if problem.b.iter().all(|&bi| bi.abs() < 1e-12) {
            SolveResult::Optimal {
                weights: vec![],
                iterations: 0,
                residual: 0.0,
            }
        } else {
            SolveResult::Infeasible {
                reason: "no variables but nonzero right-hand side".into(),
            }
        };
    }

    // Quick syntactic infeasibility checks for the nonnegative-A case (all
    // QIRANA constraint rows are 0/1 indicators): a negative target, or a
    // subset row demanding more than a superset row allows.
    let nonneg = problem.a.iter().flatten().all(|&v| v >= 0.0);
    if nonneg {
        for (j, &bj) in problem.b.iter().enumerate() {
            if bj < -1e-12 {
                return SolveResult::Infeasible {
                    reason: format!("constraint {j} demands a negative total {bj}"),
                };
            }
            if bj > 1e-12 && problem.a[j].iter().all(|&v| v == 0.0) {
                return SolveResult::Infeasible {
                    reason: format!("constraint {j} has empty support but target {bj}"),
                };
            }
        }
        for i in 0..k {
            for j in 0..k {
                if i == j {
                    continue;
                }
                // row_i pointwise <= row_j implies b_i must be <= b_j.
                let dominated = problem.a[i]
                    .iter()
                    .zip(&problem.a[j])
                    .all(|(&x, &y)| x <= y + 1e-12);
                if dominated && problem.b[i] > problem.b[j] + 1e-9 {
                    return SolveResult::Infeasible {
                        reason: format!(
                            "constraint {i} (target {}) covers a subset of constraint {j} \
                             (target {}) but demands more",
                            problem.b[i], problem.b[j]
                        ),
                    };
                }
            }
        }
    }

    let b_norm = 1.0 + norm(&problem.b);
    let mut lambda = vec![0.0; k];
    let mut w = vec![0.0; n];
    let mut residual = f64::INFINITY;
    // qirana-lint::allow(QL004): this is the solver's own time-limit
    let start = Instant::now(); // meter, checked against opts below

    for iter in 0..opts.max_iterations {
        // Deadline check up front: the loop body is the expensive part
        // (O(k²n)), so this bounds total runtime to limit + one iteration.
        if let Some(limit) = opts.time_limit {
            if start.elapsed() >= limit {
                return SolveResult::Aborted {
                    cause: AbortCause::TimeLimit,
                    iterations: iter,
                    residual,
                };
            }
        }
        // w(λ) and the primal residual r = A w - b.
        for (i, wi) in w.iter_mut().enumerate() {
            let mut e = -1.0;
            for (j, lj) in lambda.iter().enumerate() {
                e -= lj * problem.a[j][i];
            }
            // Clamp the exponent to dodge overflow while preserving
            // monotonicity; overflowing weights only occur far outside the
            // region any feasible instance visits.
            *wi = e.clamp(-700.0, 700.0).exp();
        }
        let mut r = vec![0.0; k];
        for (j, row) in problem.a.iter().enumerate() {
            r[j] = dot(row, &w) - problem.b[j];
        }
        residual = norm(&r) / b_norm;
        // Divergence guard: a non-finite residual means the inputs (or the
        // iterates) left the representable range — no further iteration can
        // recover, so abort instead of looping to the iteration cap.
        if !residual.is_finite() {
            return SolveResult::Aborted {
                cause: AbortCause::NumericalDivergence,
                iterations: iter,
                residual,
            };
        }
        if residual < opts.tolerance {
            return SolveResult::Optimal {
                weights: w,
                iterations: iter,
                residual,
            };
        }

        // Newton direction on the dual: (A diag(w) Aᵀ) d = r, λ ← λ + t d.
        // (∇g = b - A w, so the descent step on g is λ ← λ - t (b - Aw)ᴴ⁻¹
        //  = λ + t H⁻¹ r.)
        let mut h = Matrix::zeros(k);
        for p in 0..k {
            for q in p..k {
                let mut s = 0.0;
                for ((ap, aq), wi) in problem.a[p].iter().zip(&problem.a[q]).zip(&w) {
                    s += ap * wi * aq;
                }
                h.set(p, q, s);
                h.set(q, p, s);
            }
        }
        h.regularize(1e-12 * (1.0 + h.get(0, 0).abs()));
        let dir = match h.solve(&r) {
            Some(d) => d,
            None => r.clone(), // gradient fallback
        };

        // Backtracking line search on the dual objective
        // g(λ) = Σ w_i(λ) + λᵀ b.
        let g0 = w.iter().sum::<f64>() + dot(&lambda, &problem.b);
        let mut t = 1.0;
        let mut accepted = false;
        for _ in 0..60 {
            let cand: Vec<f64> = lambda.iter().zip(&dir).map(|(l, d)| l + t * d).collect();
            let mut g = dot(&cand, &problem.b);
            for i in 0..n {
                let mut e = -1.0;
                for (j, lj) in cand.iter().enumerate() {
                    e -= lj * problem.a[j][i];
                }
                g += e.clamp(-700.0, 700.0).exp();
            }
            if g < g0 - 1e-18 * g0.abs().max(1.0) {
                lambda = cand;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            // The dual cannot make progress. Either we're at the optimum of
            // an infeasible instance (dual drifting to -∞ blocked by the
            // exponent clamp) or at numerical precision of a feasible one.
            break;
        }

        // Unbounded dual ⇒ primal infeasible.
        if norm(&lambda) > 1e8 {
            return SolveResult::Infeasible {
                reason: format!(
                    "dual iterates diverged (‖λ‖ = {:.2e}) with residual {residual:.2e}; \
                     the price points are inconsistent with this support set",
                    norm(&lambda)
                ),
            };
        }
    }

    if residual < 1e-6 {
        SolveResult::Optimal {
            weights: w,
            iterations: opts.max_iterations,
            residual,
        }
    } else {
        SolveResult::Infeasible {
            reason: format!(
                "no feasible weights found (residual {residual:.2e} after \
                 {} iterations); resample or enlarge the support set",
                opts.max_iterations
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn single_total_constraint_gives_uniform() {
        // max entropy with Σw = 100 over 4 vars → all 25.
        let p = MaxEntProblem {
            a: vec![vec![1.0; 4]],
            b: vec![100.0],
            n: 4,
        };
        let r = solve(&p);
        let w = r.weights().expect("feasible");
        for &wi in w {
            assert_close(wi, 25.0, 1e-6);
        }
    }

    #[test]
    fn price_point_splits_mass() {
        // Σ all 4 = 100, Σ first 2 = 70 → first two 35 each, last two 15.
        let p = MaxEntProblem {
            a: vec![vec![1.0, 1.0, 1.0, 1.0], vec![1.0, 1.0, 0.0, 0.0]],
            b: vec![100.0, 70.0],
            n: 4,
        };
        let w = solve(&p).weights().unwrap().to_vec();
        assert_close(w[0], 35.0, 1e-6);
        assert_close(w[1], 35.0, 1e-6);
        assert_close(w[2], 15.0, 1e-6);
        assert_close(w[3], 15.0, 1e-6);
    }

    #[test]
    fn overlapping_price_points() {
        // Σ all 3 = 10, Σ {0,1} = 6, Σ {1,2} = 7. Exact: w1 = 3, w0 = 3, w2 = 4.
        let p = MaxEntProblem {
            a: vec![
                vec![1.0, 1.0, 1.0],
                vec![1.0, 1.0, 0.0],
                vec![0.0, 1.0, 1.0],
            ],
            b: vec![10.0, 6.0, 7.0],
            n: 3,
        };
        let w = solve(&p).weights().unwrap().to_vec();
        assert_close(w[0] + w[1], 6.0, 1e-6);
        assert_close(w[1] + w[2], 7.0, 1e-6);
        assert_close(w.iter().sum::<f64>(), 10.0, 1e-6);
    }

    #[test]
    fn infeasible_subset_exceeds_total() {
        // Subset priced above the whole dataset.
        let p = MaxEntProblem {
            a: vec![vec![1.0, 1.0, 1.0], vec![1.0, 0.0, 0.0]],
            b: vec![100.0, 150.0],
            n: 3,
        };
        assert!(!solve(&p).is_optimal());
    }

    #[test]
    fn infeasible_negative_target() {
        let p = MaxEntProblem {
            a: vec![vec![1.0, 1.0]],
            b: vec![-5.0],
            n: 2,
        };
        assert!(!solve(&p).is_optimal());
    }

    #[test]
    fn infeasible_empty_support() {
        let p = MaxEntProblem {
            a: vec![vec![1.0, 1.0], vec![0.0, 0.0]],
            b: vec![10.0, 3.0],
            n: 2,
        };
        assert!(!solve(&p).is_optimal());
    }

    #[test]
    fn conflicting_equalities_detected() {
        // Same indicator row, two different targets.
        let p = MaxEntProblem {
            a: vec![
                vec![1.0, 1.0, 1.0],
                vec![1.0, 1.0, 0.0],
                vec![1.0, 1.0, 0.0],
            ],
            b: vec![10.0, 4.0, 6.0],
            n: 3,
        };
        assert!(!solve(&p).is_optimal());
    }

    #[test]
    fn zero_priced_subset() {
        // A zero-priced subset forces those weights to ~0 and the rest to
        // carry the full total.
        let p = MaxEntProblem {
            a: vec![vec![1.0, 1.0, 1.0, 1.0], vec![1.0, 1.0, 0.0, 0.0]],
            b: vec![100.0, 0.0],
            n: 4,
        };
        let w = solve(&p).weights().unwrap().to_vec();
        assert!(w[0] < 1e-6 && w[1] < 1e-6, "zero-priced members: {w:?}");
        assert_close(w[2] + w[3], 100.0, 1e-5);
    }

    #[test]
    fn empty_problem() {
        let p = MaxEntProblem {
            a: vec![],
            b: vec![],
            n: 0,
        };
        assert!(solve(&p).is_optimal());
    }

    #[test]
    fn larger_random_instance_converges() {
        // 6 nested price points over 1000 variables.
        let n = 1000;
        let mut a = vec![vec![1.0; n]];
        let mut b = vec![100.0];
        for j in 1..=6 {
            let cut = n / (j + 1);
            let mut row = vec![0.0; n];
            for r in row.iter_mut().take(cut) {
                *r = 1.0;
            }
            a.push(row);
            b.push(100.0 * cut as f64 / n as f64 * 0.8);
        }
        let p = MaxEntProblem { a, b, n };
        match solve(&p) {
            SolveResult::Optimal {
                weights, residual, ..
            } => {
                assert!(residual < 1e-7);
                assert!(weights.iter().all(|&w| w >= 0.0));
                assert_close(weights.iter().sum::<f64>(), 100.0, 1e-4);
            }
            SolveResult::Infeasible { reason } => panic!("should be feasible: {reason}"),
            SolveResult::Aborted { cause, .. } => panic!("should not abort: {cause:?}"),
        }
    }

    #[test]
    fn contradictory_price_points_are_infeasible_not_garbage() {
        // Two disjoint subsets priced above their union's total: the solver
        // must report Infeasible, never Optimal with nonsense weights.
        let p = MaxEntProblem {
            a: vec![
                vec![1.0, 1.0, 1.0, 1.0],
                vec![1.0, 1.0, 0.0, 0.0],
                vec![0.0, 0.0, 1.0, 1.0],
            ],
            b: vec![10.0, 8.0, 9.0],
            n: 4,
        };
        match solve(&p) {
            SolveResult::Infeasible { reason } => {
                assert!(!reason.is_empty());
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn zero_time_limit_aborts_within_bound() {
        // A large feasible instance with an already-expired deadline must
        // return Aborted(TimeLimit) after at most one iteration's work.
        let n = 20_000;
        let p = MaxEntProblem {
            a: vec![vec![1.0; n]],
            b: vec![100.0],
            n,
        };
        let started = Instant::now();
        let r = solve_with(
            &p,
            &SolverOptions::default().with_time_limit(Duration::ZERO),
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "did not terminate promptly"
        );
        match r {
            SolveResult::Aborted {
                cause: AbortCause::TimeLimit,
                iterations,
                ..
            } => assert_eq!(iterations, 0),
            other => panic!("expected TimeLimit abort, got {other:?}"),
        }
    }

    #[test]
    fn tight_time_limit_terminates_promptly_on_hard_instance() {
        // 40 overlapping constraints over 50k variables would churn through
        // many Newton iterations; a 5 ms deadline must cut it short well
        // within the test timeout, and the result must never be Optimal
        // with an unconverged residual.
        let n = 50_000;
        let k = 40;
        let mut a = vec![vec![1.0; n]];
        let mut b = vec![1000.0];
        for j in 1..k {
            let mut row = vec![0.0; n];
            for (i, r) in row.iter_mut().enumerate() {
                if i % (j + 1) == 0 {
                    *r = 1.0;
                }
            }
            a.push(row);
            b.push(1000.0 / (j + 1) as f64 * 0.9);
        }
        let p = MaxEntProblem { a, b, n };
        let started = Instant::now();
        let r = solve_with(
            &p,
            &SolverOptions::default().with_time_limit(Duration::from_millis(5)),
        );
        assert!(started.elapsed() < Duration::from_secs(10), "runaway solve");
        if let SolveResult::Optimal { residual, .. } = &r {
            assert!(*residual < 1e-6, "Optimal claimed with residual {residual}");
        }
    }

    #[test]
    fn non_finite_input_aborts_as_divergence() {
        let p = MaxEntProblem {
            a: vec![vec![1.0, 1.0]],
            b: vec![f64::NAN],
            n: 2,
        };
        match solve(&p) {
            SolveResult::Aborted {
                cause: AbortCause::NumericalDivergence,
                ..
            } => {}
            other => panic!("expected divergence abort, got {other:?}"),
        }
    }

    #[test]
    fn weights_maximize_entropy_vs_alternatives() {
        // With Σ = 1 and no other constraints, uniform has strictly higher
        // entropy than any feasible perturbation — sanity-check the optimum.
        let p = MaxEntProblem {
            a: vec![vec![1.0; 3]],
            b: vec![1.0],
            n: 3,
        };
        let w = solve(&p).weights().unwrap().to_vec();
        let entropy =
            |w: &[f64]| -> f64 { w.iter().filter(|&&x| x > 0.0).map(|&x| -x * x.ln()).sum() };
        let ours = entropy(&w);
        let perturbed = entropy(&[0.5, 0.3, 0.2]);
        assert!(ours > perturbed);
    }
}
