//! Empirical query determinacy (§2.1).
//!
//! `Q1` *determines* `Q2` under the database (`D ⊢ Q1 ↠ Q2`) when every
//! possible world that agrees with `D` on `Q1` also agrees on `Q2` — i.e.
//! `Q2`'s answer is computable from `Q1`'s. Exact determinacy is undecidable
//! in general; this module tests it **over a support set**: `Q1` determines
//! `Q2` relative to `S ∪ {D}` iff the partition of `S` induced by `Q1`
//! refines the partition induced by `Q2`.
//!
//! This is precisely the granularity at which QIRANA's pricing functions
//! see the world, which gives the checker its use: for any
//! support-relative determinacy, strong information-arbitrage-freeness of
//! the coverage-family prices is *guaranteed* (a refinement can only
//! disagree on more instances), so `tests/arbitrage.rs` and the Table 1
//! harness lean on it.

use crate::engine::{bundle_disagreements, bundle_partition, EngineOptions};
use crate::normal_form::{prepare_query, Prepared};
use crate::support::SupportSet;
use qirana_sqlengine::{Database, EngineError};
use std::collections::HashMap;

/// Outcome of a relative-determinacy test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinacy {
    /// `Q1`'s partition refines `Q2`'s on every sampled instance.
    Determines,
    /// Some pair of instances agrees on `Q1` but disagrees on `Q2` —
    /// a certificate that `Q1` does *not* determine `Q2`.
    Refuted,
}

/// Tests `Q1 ↠ Q2` relative to the support set: does `Q1`'s induced
/// partition refine `Q2`'s?
///
/// `Determines` is relative to the sample (a witness of non-determinacy may
/// exist outside `S`); `Refuted` is definitive — the two differing worlds
/// are real members of `I`.
pub fn determines(
    db: &mut Database,
    support: &SupportSet,
    q1: &str,
    q2: &str,
) -> Result<Determinacy, EngineError> {
    let p1 = prepare_query(db, q1)?;
    let p2 = prepare_query(db, q2)?;
    determines_prepared(db, support, &p1, &p2)
}

/// [`determines`] over already-prepared queries.
pub fn determines_prepared(
    db: &mut Database,
    support: &SupportSet,
    q1: &Prepared,
    q2: &Prepared,
) -> Result<Determinacy, EngineError> {
    let opts = EngineOptions::default();
    let part1 = bundle_partition(db, &[q1], support, &opts)?;
    let part2 = bundle_partition(db, &[q2], support, &opts)?;

    // Include agreement-with-D: an instance agreeing with D on Q1 must
    // agree on Q2 too, which partitions alone don't capture (the D-block
    // matters). Disagreement bits give exactly that.
    let d1 = bundle_disagreements(db, &[q1], support, &opts, None)?;
    let d2 = bundle_disagreements(db, &[q2], support, &opts, None)?;

    // Q1-agreeing instances (the D-block) must also be Q2-agreeing.
    for i in 0..support.len() {
        if !d1[i] && d2[i] {
            return Ok(Determinacy::Refuted);
        }
    }
    // Every Q1 block must map into a single Q2 block.
    let mut block_map: HashMap<_, _> = HashMap::new();
    for i in 0..support.len() {
        if !d1[i] {
            continue; // D-block, handled above
        }
        match block_map.insert(part1[i], part2[i]) {
            Some(prev) if prev != part2[i] => return Ok(Determinacy::Refuted),
            _ => {}
        }
    }
    Ok(Determinacy::Determines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::{generate_support, SupportConfig};
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            (1..=10i64)
                .map(|i| {
                    vec![
                        i.into(),
                        if i % 2 == 0 { "f" } else { "m" }.into(),
                        (10 + i * 3).into(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        db
    }

    fn support(db: &Database) -> SupportSet {
        SupportSet::Neighborhood(generate_support(
            db,
            &SupportConfig {
                size: 400,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn projection_determines_subprojection() {
        let mut db = db();
        let s = support(&db);
        assert_eq!(
            determines(
                &mut db,
                &s,
                "select gender, age from User",
                "select age from User"
            )
            .unwrap(),
            Determinacy::Determines
        );
    }

    #[test]
    fn subprojection_does_not_determine_projection() {
        let mut db = db();
        let s = support(&db);
        assert_eq!(
            determines(
                &mut db,
                &s,
                "select age from User",
                "select gender, age from User"
            )
            .unwrap(),
            Determinacy::Refuted
        );
    }

    #[test]
    fn group_counts_determine_filtered_count() {
        let mut db = db();
        let s = support(&db);
        assert_eq!(
            determines(
                &mut db,
                &s,
                "select gender, count(*) from User group by gender",
                "select count(*) from User where gender = 'f'",
            )
            .unwrap(),
            Determinacy::Determines
        );
    }

    #[test]
    fn raw_column_determines_aggregates() {
        let mut db = db();
        let s = support(&db);
        for agg in ["avg(age)", "sum(age)", "min(age)", "max(age)"] {
            assert_eq!(
                determines(
                    &mut db,
                    &s,
                    "select uid, age from User",
                    &format!("select {agg} from User"),
                )
                .unwrap(),
                Determinacy::Determines,
                "{agg}"
            );
        }
    }

    #[test]
    fn aggregate_does_not_determine_column() {
        let mut db = db();
        let s = support(&db);
        assert_eq!(
            determines(
                &mut db,
                &s,
                "select avg(age) from User",
                "select uid, age from User"
            )
            .unwrap(),
            Determinacy::Refuted
        );
    }

    #[test]
    fn everything_determines_a_constant() {
        let mut db = db();
        let s = support(&db);
        assert_eq!(
            determines(
                &mut db,
                &s,
                "select age from User",
                "select count(*) from User"
            )
            .unwrap(),
            Determinacy::Determines,
            "cardinality is constant over I"
        );
    }

    #[test]
    fn determinacy_implies_coverage_price_order() {
        // The module-level claim: support-relative determinacy forces
        // p_wc(Q2) <= p_wc(Q1).
        use crate::pricing::weighted_coverage;
        let mut db = db();
        let s = support(&db);
        let pairs = [
            ("select gender, age from User", "select gender from User"),
            (
                "select * from User",
                "select count(*) from User where age > 20",
            ),
        ];
        let w = vec![1.0; s.len()];
        for (q1, q2) in pairs {
            let p1 = prepare_query(&db, q1).unwrap();
            let p2 = prepare_query(&db, q2).unwrap();
            assert_eq!(
                determines_prepared(&mut db, &s, &p1, &p2).unwrap(),
                Determinacy::Determines
            );
            let d1 =
                bundle_disagreements(&mut db, &[&p1], &s, &EngineOptions::default(), None).unwrap();
            let d2 =
                bundle_disagreements(&mut db, &[&p2], &s, &EngineOptions::default(), None).unwrap();
            assert!(weighted_coverage(&w, &d2) <= weighted_coverage(&w, &d1));
        }
    }
}
