//! Durable market ledger: an append-only write-ahead log of market
//! events, periodic snapshots of broker account state, and crash
//! recovery.
//!
//! Arbitrage-freeness is an invariant over a buyer's *entire purchase
//! history*, so the broker's balances, charged bitmaps, and entropy
//! anchors must survive a process crash. The ledger records every
//! committed market event **before** it is applied in memory
//! (append-then-apply): after a crash, [`recover_dir`] reloads the last
//! snapshot and replays the tail of the log, and the broker re-prices
//! each logged purchase to verify the recomputed price is bitwise
//! identical to the logged one — the determinism won by the exact
//! pricing pipeline doubles as a recovery invariant.
//!
//! ## On-disk format
//!
//! `ledger.log` is the magic `QIRWAL01` followed by framed records:
//!
//! ```text
//! | u32 LE payload len | u64 LE checksum | payload |
//! ```
//!
//! The checksum is a splitmix64 word-fold over the payload (the same
//! hashing style as `normal_form`'s plan fingerprints). A payload is
//! `u64 LE seq | u8 tag | body`; sequence numbers start at 1 and
//! increase by exactly 1, so a gap is corruption, not a tear. Floats are
//! stored as `f64::to_bits` — the logged price is authoritative and
//! bit-exact.
//!
//! `snapshot.bin` is `QIRSNP01` plus one checksummed frame holding a
//! [`SnapshotState`]. Snapshots and log compaction are written to a temp
//! file and atomically renamed, so the snapshot is never torn; any
//! damage to it is a hard [`LedgerError::Corrupt`].
//!
//! ## Recovery semantics
//!
//! * A **torn tail** — an incomplete header, a frame running past EOF,
//!   or a checksum mismatch on the physically last record — is the
//!   expected residue of a crash mid-append: recovery truncates the file
//!   at the tear and continues.
//! * A **mid-log corruption** — a bad checksum or undecodable payload
//!   with later records present, a sequence gap, bad magic — cannot be
//!   produced by a crash of this writer and hard-fails with a typed
//!   [`LedgerError::Corrupt`].
//!
//! Crash points are injected through [`crate::fault`]: the
//! `LEDGER_APPEND`/`LEDGER_SNAPSHOT` failpoints abort between records,
//! and the byte-granular crash budget (`fault::arm_ledger_crash`) cuts
//! an append mid-write at an exact byte offset, simulating the process
//! dying inside `write(2)`.

use crate::fault;
use crate::telemetry::{Stage, Telemetry};
use qirana_sqlengine::{CellWrite, Value};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening `ledger.log`.
pub const LOG_MAGIC: [u8; 8] = *b"QIRWAL01";
/// Magic bytes opening `snapshot.bin`.
pub const SNAP_MAGIC: [u8; 8] = *b"QIRSNP01";
/// Bytes of a record frame header: `u32` length + `u64` checksum.
pub const HEADER_LEN: usize = 12;
/// Upper bound on a single record payload; anything larger is rejected
/// at encode time and treated as corruption when read.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

const LOG_FILE: &str = "ledger.log";
const LOG_TMP_FILE: &str = "ledger.log.tmp";
const SNAP_FILE: &str = "snapshot.bin";
const SNAP_TMP_FILE: &str = "snapshot.bin.tmp";
const LOCK_FILE: &str = "ledger.lock";

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every append — every committed event survives a
    /// crash. The default.
    #[default]
    Always,
    /// `fdatasync` every `n` appends — bounded loss window, higher
    /// throughput. `EveryN(0)` behaves like `EveryN(1)`.
    EveryN(u32),
    /// Never sync explicitly; durability is left to the OS page cache.
    Never,
}

/// Where and how the ledger persists.
#[derive(Debug, Clone)]
pub struct LedgerConfig {
    /// Directory holding `ledger.log` and `snapshot.bin`.
    pub dir: PathBuf,
    /// Flush policy for appends.
    pub fsync: FsyncPolicy,
    /// Take a snapshot (and compact the log) after this many applied
    /// events; `0` disables snapshots entirely (pure WAL).
    pub snapshot_every: u64,
}

impl LedgerConfig {
    /// A config with the default fsync policy and snapshot cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LedgerConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 256,
        }
    }

    /// Builder: set the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder: set the snapshot cadence (`0` = never snapshot).
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Path of the write-ahead log.
    pub fn log_path(&self) -> PathBuf {
        self.dir.join(LOG_FILE)
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAP_FILE)
    }

    fn log_tmp_path(&self) -> PathBuf {
        self.dir.join(LOG_TMP_FILE)
    }

    fn snapshot_tmp_path(&self) -> PathBuf {
        self.dir.join(SNAP_TMP_FILE)
    }
}

/// Typed ledger failures.
#[derive(Debug)]
pub enum LedgerError {
    /// An OS-level I/O failure on `path`.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The log or snapshot is damaged in a way a crash of this writer
    /// cannot produce (mid-log checksum mismatch, sequence gap, bad
    /// magic, undecodable payload, torn snapshot).
    Corrupt { offset: u64, detail: String },
    /// A single record payload exceeded [`MAX_RECORD_LEN`].
    RecordTooLarge { len: u64 },
    /// The recovered snapshot does not fit the database it is being
    /// restored into (table/row shape mismatch).
    StateMismatch { detail: String },
    /// Replaying a logged event reproduced a different result than the
    /// log records — the determinism invariant is broken.
    ReplayDiverged { seq: u64, detail: String },
    /// A previous append failed mid-write; the in-memory ledger no
    /// longer knows what is on disk and refuses further appends. Reopen
    /// through recovery.
    Poisoned,
    /// The armed crash budget cut this append after `written` bytes — a
    /// simulated torn write.
    Crashed { written: u64 },
    /// A `fault` failpoint fired on the append/snapshot path.
    Injected(fault::InjectedFault),
    /// Another live writer holds the directory's exclusive lock. Two
    /// writers interleaving appends would corrupt the sequence stream,
    /// so the second opener is refused instead.
    Locked { path: PathBuf, holder: String },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Io { path, source } => {
                write!(f, "ledger I/O error on {}: {}", path.display(), source)
            }
            LedgerError::Corrupt { offset, detail } => {
                write!(f, "ledger corrupt at byte {offset}: {detail}")
            }
            LedgerError::RecordTooLarge { len } => {
                write!(f, "ledger record too large: {len} bytes")
            }
            LedgerError::StateMismatch { detail } => {
                write!(f, "snapshot does not match the database: {detail}")
            }
            LedgerError::ReplayDiverged { seq, detail } => {
                write!(f, "replay diverged at seq {seq}: {detail}")
            }
            LedgerError::Poisoned => {
                write!(
                    f,
                    "ledger poisoned by a failed append; recover before continuing"
                )
            }
            LedgerError::Crashed { written } => {
                write!(f, "simulated crash cut an append after {written} bytes")
            }
            LedgerError::Injected(e) => write!(f, "{e}"),
            LedgerError::Locked { path, holder } => {
                write!(
                    f,
                    "ledger directory is locked by another writer (holder {holder:?}): {}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for LedgerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LedgerError::Io { source, .. } => Some(source),
            LedgerError::Injected(e) => Some(e),
            _ => None,
        }
    }
}

fn io_at(path: PathBuf, source: std::io::Error) -> LedgerError {
    LedgerError::Io { path, source }
}

/// A committed market event, exactly as the broker applies it.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEvent {
    /// A buyer's purchase: the authoritative price and resulting balance
    /// (both bit-exact).
    PurchaseCommitted {
        buyer: String,
        sql: String,
        price: f64,
        total_paid: f64,
    },
    /// A seller-side SQL update that changed `changed` cells.
    UpdateCommitted { sql: String, changed: u64 },
    /// A seller-side raw cell-write batch.
    WritesCommitted { writes: Vec<CellWrite> },
    /// Marker: a snapshot covering every event with `seq <= seq` exists
    /// on disk; written just before log compaction.
    SnapshotTaken { seq: u64 },
}

// ---------------------------------------------------------------------
// Checksum — splitmix64 word-fold, the `normal_form` hashing style.
// ---------------------------------------------------------------------

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming splitmix64 checksum over a record payload: the payload is
/// folded in 8-byte little-endian words, and the tail carries its own
/// length in the top byte so `"a"` and `"a\0"` hash differently.
pub fn checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0x1ED6_E2C0_FFEE_5EED;
    let mut chunks = payload.chunks_exact(8);
    for chunk in &mut chunks {
        let mut w = [0u8; 8];
        w.copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(w));
    }
    let rem = chunks.remainder();
    let mut tail = (rem.len() as u64 + 1) << 56;
    for (i, &b) in rem.iter().enumerate() {
        tail |= u64::from(b) << (8 * i);
    }
    mix(h ^ tail)
}

// ---------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Bool(b) => {
            put_u8(buf, 1);
            put_u8(buf, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(buf, 2);
            put_i64(buf, *i);
        }
        Value::Float(x) => {
            put_u8(buf, 3);
            put_u64(buf, x.to_bits());
        }
        Value::Date(d) => {
            put_u8(buf, 4);
            put_i32(buf, *d);
        }
        Value::Str(s) => {
            put_u8(buf, 5);
            put_str(buf, s);
        }
    }
}

fn put_write(buf: &mut Vec<u8>, w: &CellWrite) {
    put_u64(buf, w.table as u64);
    put_u64(buf, w.row as u64);
    put_u64(buf, w.col as u64);
    put_value(buf, &w.value);
}

const TAG_PURCHASE: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_WRITES: u8 = 3;
const TAG_SNAPSHOT: u8 = 4;

fn encode_payload(seq: u64, ev: &LedgerEvent) -> Vec<u8> {
    let mut b = Vec::with_capacity(64);
    put_u64(&mut b, seq);
    match ev {
        LedgerEvent::PurchaseCommitted {
            buyer,
            sql,
            price,
            total_paid,
        } => {
            put_u8(&mut b, TAG_PURCHASE);
            put_str(&mut b, buyer);
            put_str(&mut b, sql);
            put_u64(&mut b, price.to_bits());
            put_u64(&mut b, total_paid.to_bits());
        }
        LedgerEvent::UpdateCommitted { sql, changed } => {
            put_u8(&mut b, TAG_UPDATE);
            put_str(&mut b, sql);
            put_u64(&mut b, *changed);
        }
        LedgerEvent::WritesCommitted { writes } => {
            put_u8(&mut b, TAG_WRITES);
            put_u64(&mut b, writes.len() as u64);
            for w in writes {
                put_write(&mut b, w);
            }
        }
        LedgerEvent::SnapshotTaken { seq } => {
            put_u8(&mut b, TAG_SNAPSHOT);
            put_u64(&mut b, *seq);
        }
    }
    b
}

/// Encodes one framed record (`len | checksum | payload`) exactly as it
/// appears in the log. Public so tests and harnesses can compute frame
/// boundaries for crafting crash points.
pub fn encode_record(seq: u64, ev: &LedgerEvent) -> Result<Vec<u8>, LedgerError> {
    let payload = encode_payload(seq, ev);
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_RECORD_LEN)
        .ok_or(LedgerError::RecordTooLarge {
            len: payload.len() as u64,
        })?;
    let mut rec = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut rec, len);
    put_u64(&mut rec, checksum(&payload));
    rec.extend_from_slice(&payload);
    Ok(rec)
}

// ---------------------------------------------------------------------
// Binary decoding
// ---------------------------------------------------------------------

struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.b.len() - self.pos < n {
            return Err(format!("payload ends early at byte {}", self.pos));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, String> {
        let mut w = [0u8; 8];
        w.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(w))
    }

    fn i64(&mut self) -> Result<i64, String> {
        let mut w = [0u8; 8];
        w.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(w))
    }

    fn i32(&mut self) -> Result<i32, String> {
        let mut w = [0u8; 4];
        w.copy_from_slice(self.take(4)?);
        Ok(i32::from_le_bytes(w))
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "length overflows usize".to_string())
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.usize()?;
        let s = self.take(n)?;
        std::str::from_utf8(s)
            .map(str::to_string)
            .map_err(|_| "invalid UTF-8 in string".to_string())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                b => Err(format!("bad bool byte {b}")),
            },
            2 => Ok(Value::Int(self.i64()?)),
            3 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            4 => Ok(Value::Date(self.i32()?)),
            5 => Ok(Value::Str(Arc::from(self.str()?.as_str()))),
            t => Err(format!("unknown value tag {t}")),
        }
    }

    fn write(&mut self) -> Result<CellWrite, String> {
        Ok(CellWrite {
            table: self.usize()?,
            row: self.usize()?,
            col: self.usize()?,
            value: self.value()?,
        })
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

/// Decodes one record payload back into `(seq, event)`.
pub fn decode_payload(payload: &[u8]) -> Result<(u64, LedgerEvent), String> {
    let mut c = Cur::new(payload);
    let seq = c.u64()?;
    let ev = match c.u8()? {
        TAG_PURCHASE => LedgerEvent::PurchaseCommitted {
            buyer: c.str()?,
            sql: c.str()?,
            price: f64::from_bits(c.u64()?),
            total_paid: f64::from_bits(c.u64()?),
        },
        TAG_UPDATE => LedgerEvent::UpdateCommitted {
            sql: c.str()?,
            changed: c.u64()?,
        },
        TAG_WRITES => {
            let n = c.usize()?;
            let mut writes = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                writes.push(c.write()?);
            }
            LedgerEvent::WritesCommitted { writes }
        }
        TAG_SNAPSHOT => LedgerEvent::SnapshotTaken { seq: c.u64()? },
        t => return Err(format!("unknown event tag {t}")),
    };
    if !c.done() {
        return Err("trailing bytes in record payload".to_string());
    }
    Ok((seq, ev))
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// One buyer's durable account state.
#[derive(Debug, Clone, PartialEq)]
pub struct BuyerSnapshot {
    pub name: String,
    /// Balance, bit-exact.
    pub paid: f64,
    /// Coverage-family charged bitmap (empty for entropy-family
    /// configurations).
    pub charged: Vec<bool>,
    /// Purchase history as SQL text; re-prepared on restore.
    pub history: Vec<String>,
}

/// Everything needed to rebuild broker state without replaying the
/// events the snapshot covers. Entropy factors are *not* stored: they
/// are a deterministic function of the database and weights and are
/// recomputed on restore.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// Last event sequence number the snapshot covers.
    pub seq: u64,
    /// Pricing-cache generation at that point.
    pub generation: u64,
    /// Row data per table, in schema order. Updates are cell-level, so
    /// row counts always match the genesis database.
    pub tables: Vec<Vec<Vec<Value>>>,
    /// Buyer accounts, sorted by name for deterministic bytes.
    pub buyers: Vec<BuyerSnapshot>,
}

fn encode_snapshot(s: &SnapshotState) -> Vec<u8> {
    let mut b = Vec::with_capacity(1024);
    put_u64(&mut b, s.seq);
    put_u64(&mut b, s.generation);
    put_u64(&mut b, s.tables.len() as u64);
    for rows in &s.tables {
        put_u64(&mut b, rows.len() as u64);
        for row in rows {
            put_u64(&mut b, row.len() as u64);
            for v in row {
                put_value(&mut b, v);
            }
        }
    }
    put_u64(&mut b, s.buyers.len() as u64);
    for buyer in &s.buyers {
        put_str(&mut b, &buyer.name);
        put_u64(&mut b, buyer.paid.to_bits());
        put_u64(&mut b, buyer.charged.len() as u64);
        for &c in &buyer.charged {
            put_u8(&mut b, u8::from(c));
        }
        put_u64(&mut b, buyer.history.len() as u64);
        for h in &buyer.history {
            put_str(&mut b, h);
        }
    }
    b
}

fn decode_snapshot(payload: &[u8]) -> Result<SnapshotState, String> {
    let mut c = Cur::new(payload);
    let seq = c.u64()?;
    let generation = c.u64()?;
    let nt = c.usize()?;
    let mut tables = Vec::with_capacity(nt.min(1 << 12));
    for _ in 0..nt {
        let nr = c.usize()?;
        let mut rows = Vec::with_capacity(nr.min(1 << 20));
        for _ in 0..nr {
            let nc = c.usize()?;
            let mut row = Vec::with_capacity(nc.min(1 << 12));
            for _ in 0..nc {
                row.push(c.value()?);
            }
            rows.push(row);
        }
        tables.push(rows);
    }
    let nb = c.usize()?;
    let mut buyers = Vec::with_capacity(nb.min(1 << 16));
    for _ in 0..nb {
        let name = c.str()?;
        let paid = f64::from_bits(c.u64()?);
        let ncov = c.usize()?;
        let mut charged = Vec::with_capacity(ncov.min(1 << 24));
        for _ in 0..ncov {
            charged.push(match c.u8()? {
                0 => false,
                1 => true,
                b => return Err(format!("bad charged byte {b}")),
            });
        }
        let nh = c.usize()?;
        let mut history = Vec::with_capacity(nh.min(1 << 16));
        for _ in 0..nh {
            history.push(c.str()?);
        }
        buyers.push(BuyerSnapshot {
            name,
            paid,
            charged,
            history,
        });
    }
    if !c.done() {
        return Err("trailing bytes in snapshot payload".to_string());
    }
    Ok(SnapshotState {
        seq,
        generation,
        tables,
        buyers,
    })
}

fn read_snapshot(path: &Path) -> Result<Option<SnapshotState>, LedgerError> {
    if !path.exists() {
        return Ok(None);
    }
    let bytes = fs::read(path).map_err(|e| io_at(path.to_path_buf(), e))?;
    let corrupt = |detail: &str| LedgerError::Corrupt {
        offset: 0,
        detail: format!("snapshot: {detail}"),
    };
    if bytes.len() < 8 + HEADER_LEN {
        return Err(corrupt(
            "file shorter than its header (snapshots are written atomically, so a short file is corruption, not a tear)",
        ));
    }
    if bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut w4 = [0u8; 4];
    w4.copy_from_slice(&bytes[8..12]);
    let len = u32::from_le_bytes(w4) as usize;
    let mut w8 = [0u8; 8];
    w8.copy_from_slice(&bytes[12..20]);
    let sum = u64::from_le_bytes(w8);
    if bytes.len() != 8 + HEADER_LEN + len {
        return Err(corrupt("length field does not match file size"));
    }
    let payload = &bytes[8 + HEADER_LEN..];
    if checksum(payload) != sum {
        return Err(corrupt("checksum mismatch"));
    }
    decode_snapshot(payload)
        .map(Some)
        .map_err(|detail| corrupt(&detail))
}

// ---------------------------------------------------------------------
// Log scanning
// ---------------------------------------------------------------------

/// One record located in a scanned log.
#[derive(Debug, Clone)]
pub struct ScannedRecord {
    pub seq: u64,
    /// Byte offset of the frame start (the `len` field).
    pub offset: u64,
    /// Byte offset just past the frame.
    pub end: u64,
    pub event: LedgerEvent,
}

/// Result of walking a log image.
#[derive(Debug)]
pub struct LogScan {
    pub records: Vec<ScannedRecord>,
    /// `Some(t)`: a torn tail begins at byte `t` and should be truncated.
    pub truncate_to: Option<u64>,
}

/// Walks a full log image (including magic), separating clean records
/// from a torn tail and hard-failing on mid-log corruption. Public so
/// the crash-matrix harness can map byte offsets to record boundaries.
pub fn scan_log(bytes: &[u8]) -> Result<LogScan, LedgerError> {
    if bytes.is_empty() {
        return Ok(LogScan {
            records: Vec::new(),
            truncate_to: None,
        });
    }
    if bytes.len() < LOG_MAGIC.len() {
        // A crash during creation tore the magic itself.
        return Ok(LogScan {
            records: Vec::new(),
            truncate_to: Some(0),
        });
    }
    if bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
        return Err(LedgerError::Corrupt {
            offset: 0,
            detail: "bad ledger magic".to_string(),
        });
    }
    let mut records: Vec<ScannedRecord> = Vec::new();
    let mut off = LOG_MAGIC.len();
    let mut truncate_to = None;
    while off < bytes.len() {
        if bytes.len() - off < HEADER_LEN {
            truncate_to = Some(off as u64);
            break;
        }
        let mut w4 = [0u8; 4];
        w4.copy_from_slice(&bytes[off..off + 4]);
        let len = u32::from_le_bytes(w4);
        let mut w8 = [0u8; 8];
        w8.copy_from_slice(&bytes[off + 4..off + HEADER_LEN]);
        let sum = u64::from_le_bytes(w8);
        if len > MAX_RECORD_LEN {
            return Err(LedgerError::Corrupt {
                offset: off as u64,
                detail: format!("record length {len} exceeds the {MAX_RECORD_LEN}-byte bound"),
            });
        }
        let end = off + HEADER_LEN + len as usize;
        if end > bytes.len() {
            // The frame runs past EOF: torn write of the payload (or of
            // the length field itself).
            truncate_to = Some(off as u64);
            break;
        }
        let payload = &bytes[off + HEADER_LEN..end];
        if checksum(payload) != sum {
            if end == bytes.len() {
                // Physically last record: torn write caught by checksum.
                truncate_to = Some(off as u64);
                break;
            }
            return Err(LedgerError::Corrupt {
                offset: off as u64,
                detail: "record checksum mismatch with later records present".to_string(),
            });
        }
        match decode_payload(payload) {
            Ok((seq, event)) => {
                if let Some(last) = records.last() {
                    if seq != last.seq + 1 {
                        return Err(LedgerError::Corrupt {
                            offset: off as u64,
                            detail: format!("sequence gap: {} follows {}", seq, last.seq),
                        });
                    }
                }
                records.push(ScannedRecord {
                    seq,
                    offset: off as u64,
                    end: end as u64,
                    event,
                });
            }
            // A checksummed-but-undecodable payload cannot be a tear:
            // the checksum covers the whole payload.
            Err(detail) => {
                return Err(LedgerError::Corrupt {
                    offset: off as u64,
                    detail,
                });
            }
        }
        off = end;
    }
    Ok(LogScan {
        records,
        truncate_to,
    })
}

// ---------------------------------------------------------------------
// Exclusive-writer lock
// ---------------------------------------------------------------------

/// Whether `pid` names a live process. Linux-first: `/proc/<pid>`
/// existence. On a platform without `/proc` the answer is conservatively
/// "alive" — a genuinely stale lock there needs manual removal, which is
/// strictly safer than two writers interleaving appends.
fn pid_alive(pid: u32) -> bool {
    if !Path::new("/proc").exists() {
        return true;
    }
    Path::new("/proc").join(pid.to_string()).exists()
}

/// RAII exclusive-writer lock on a ledger directory.
///
/// The WAL format assumes a single appender — two handles on the same
/// `ledger.log` would interleave records and shear the sequence stream —
/// but nothing used to enforce that across processes. The lock is a
/// `create_new` (`O_EXCL`) file holding the owner's PID: atomic on every
/// filesystem worth running a market on, and self-describing when it
/// leaks. A lock whose recorded PID no longer runs is *stale* (the owner
/// crashed without `Drop`) and is broken exactly once per acquire
/// attempt; a live or unreadable holder refuses the open with
/// [`LedgerError::Locked`].
#[derive(Debug)]
struct LedgerLock {
    path: PathBuf,
}

impl LedgerLock {
    fn acquire(dir: &Path) -> Result<Self, LedgerError> {
        let path = dir.join(LOCK_FILE);
        let mut reclaimed = false;
        loop {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    // Best-effort identity stamp: a failed write leaves an
                    // empty lock, which is still an exclusive lock — it
                    // just reads as an unknown (hence live) holder.
                    let _ = f.write_all(std::process::id().to_string().as_bytes());
                    let _ = f.sync_all();
                    return Ok(LedgerLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path)
                        .unwrap_or_default()
                        .trim()
                        .to_string();
                    let stale = !reclaimed
                        && holder
                            .parse::<u32>()
                            .is_ok_and(|pid| pid != std::process::id() && !pid_alive(pid));
                    if stale {
                        // The owner died without releasing; break the lock
                        // and race for it once. Losing the race means a
                        // live writer won it — Locked is then correct.
                        reclaimed = true;
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    return Err(LedgerError::Locked { path, holder });
                }
                Err(e) => return Err(io_at(path, e)),
            }
        }
    }
}

impl Drop for LedgerLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

// ---------------------------------------------------------------------
// The ledger proper
// ---------------------------------------------------------------------

/// An open append handle on a market's write-ahead log.
pub struct Ledger {
    cfg: LedgerConfig,
    log: File,
    next_seq: u64,
    records_since_snapshot: u64,
    appends_since_sync: u32,
    poisoned: bool,
    telemetry: Telemetry,
    /// Held for the handle's whole lifetime; releases on drop.
    _lock: LedgerLock,
}

impl fmt::Debug for Ledger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ledger")
            .field("dir", &self.cfg.dir)
            .field("next_seq", &self.next_seq)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Ledger {
    /// Starts a **fresh** market ledger in `cfg.dir`, truncating any
    /// previous log and deleting any previous snapshot. Use
    /// [`recover_dir`] to resume an existing market.
    pub fn create(cfg: LedgerConfig) -> Result<Self, LedgerError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_at(cfg.dir.clone(), e))?;
        // Lock before touching any file: losing the race must not
        // truncate a log another writer is mid-append on.
        let lock = LedgerLock::acquire(&cfg.dir)?;
        for stale in [
            cfg.snapshot_path(),
            cfg.snapshot_tmp_path(),
            cfg.log_tmp_path(),
        ] {
            if stale.exists() {
                fs::remove_file(&stale).map_err(|e| io_at(stale.clone(), e))?;
            }
        }
        let path = cfg.log_path();
        let mut log = File::create(&path).map_err(|e| io_at(path.clone(), e))?;
        // The magic is part of the append stream, so the crash budget
        // covers it too: a budget under 8 bytes dies during creation.
        if let Some(n) = fault::ledger_write_quota(LOG_MAGIC.len()) {
            if n < LOG_MAGIC.len() {
                let _ = log.write_all(&LOG_MAGIC[..n]);
                let _ = log.sync_data();
                return Err(LedgerError::Crashed { written: n as u64 });
            }
        }
        log.write_all(&LOG_MAGIC)
            .map_err(|e| io_at(path.clone(), e))?;
        log.sync_all().map_err(|e| io_at(path, e))?;
        Ok(Ledger {
            cfg,
            log,
            next_seq: 1,
            records_since_snapshot: 0,
            appends_since_sync: 0,
            poisoned: false,
            telemetry: Telemetry::disabled(),
            _lock: lock,
        })
    }

    /// Attaches a telemetry handle: append/fsync latency histograms and
    /// snapshot/compaction counters flow into its sink. The broker wires
    /// this from its engine options on [`create`](Ledger::create) and
    /// recovery; a detached ledger stays silent.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The ledger's configuration.
    pub fn config(&self) -> &LedgerConfig {
        &self.cfg
    }

    /// Sequence number the next appended event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence number of the last appended event (0 if none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Whether a failed append has poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Events applied since the last snapshot (or since creation).
    pub fn records_since_snapshot(&self) -> u64 {
        self.records_since_snapshot
    }

    /// Whether the configured snapshot cadence is due.
    pub fn should_snapshot(&self) -> bool {
        self.cfg.snapshot_every > 0 && self.records_since_snapshot >= self.cfg.snapshot_every
    }

    /// Appends one event, returning its sequence number. The record is
    /// on disk (per the fsync policy) when this returns — callers apply
    /// the event to in-memory state only afterwards (append-then-apply).
    pub fn append(&mut self, ev: &LedgerEvent) -> Result<u64, LedgerError> {
        if self.poisoned {
            return Err(LedgerError::Poisoned);
        }
        fault::check(fault::LEDGER_APPEND).map_err(LedgerError::Injected)?;
        let span = self.telemetry.span(Stage::LedgerAppend);
        let seq = self.next_seq;
        let rec = encode_record(seq, ev)?;
        span.count("bytes", rec.len() as u64);
        if let Some(n) = fault::ledger_write_quota(rec.len()) {
            if n < rec.len() {
                // Simulated crash mid-write: the first `n` bytes reach
                // the log, then the "process dies". The handle poisons
                // itself so the session cannot outlive its own crash.
                self.poisoned = true;
                if n > 0 {
                    let _ = self.log.write_all(&rec[..n]);
                }
                let _ = self.log.sync_data();
                return Err(LedgerError::Crashed { written: n as u64 });
            }
        }
        if let Err(e) = self.log.write_all(&rec) {
            // A partial real write leaves unknown bytes on disk.
            self.poisoned = true;
            return Err(io_at(self.cfg.log_path(), e));
        }
        self.after_write()?;
        self.next_seq += 1;
        if !matches!(ev, LedgerEvent::SnapshotTaken { .. }) {
            self.records_since_snapshot += 1;
        }
        self.telemetry.counter_add("ledger_appends_total", 1);
        Ok(seq)
    }

    fn after_write(&mut self) -> Result<(), LedgerError> {
        let sync = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n.max(1) {
                    self.appends_since_sync = 0;
                    true
                } else {
                    false
                }
            }
            FsyncPolicy::Never => false,
        };
        if sync {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces an `fdatasync` of the log now, regardless of policy.
    pub fn sync(&mut self) -> Result<(), LedgerError> {
        let _span = self.telemetry.span(Stage::LedgerFsync);
        let out = self
            .log
            .sync_data()
            .map_err(|e| io_at(self.cfg.log_path(), e));
        if out.is_ok() {
            self.telemetry.counter_add("ledger_fsyncs_total", 1);
        }
        out
    }

    /// Writes `snap` atomically, appends the `SnapshotTaken` marker, and
    /// compacts the log down to that marker. Every intermediate crash
    /// state is recoverable: the snapshot file only ever changes by
    /// atomic rename, and the pre-compaction log remains a superset of
    /// what the snapshot covers.
    pub fn snapshot_and_compact(&mut self, snap: &SnapshotState) -> Result<(), LedgerError> {
        if self.poisoned {
            return Err(LedgerError::Poisoned);
        }
        fault::check(fault::LEDGER_SNAPSHOT).map_err(LedgerError::Injected)?;
        let payload = encode_snapshot(snap);
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_RECORD_LEN)
            .ok_or(LedgerError::RecordTooLarge {
                len: payload.len() as u64,
            })?;
        let mut bytes = Vec::with_capacity(8 + HEADER_LEN + payload.len());
        bytes.extend_from_slice(&SNAP_MAGIC);
        put_u32(&mut bytes, len);
        put_u64(&mut bytes, checksum(&payload));
        bytes.extend_from_slice(&payload);
        write_atomic(
            &self.cfg.snapshot_tmp_path(),
            &self.cfg.snapshot_path(),
            &bytes,
        )?;

        // The marker goes through the normal append path so failpoints
        // and crash budgets see it.
        let marker = LedgerEvent::SnapshotTaken { seq: snap.seq };
        let marker_seq = self.append(&marker)?;

        // Compact: the new log is the magic plus the marker record,
        // swapped in by atomic rename. Compaction bytes are a rewrite,
        // not part of the append stream, so they do not consume the
        // crash budget.
        let mut log_bytes = Vec::new();
        log_bytes.extend_from_slice(&LOG_MAGIC);
        log_bytes.extend_from_slice(&encode_record(marker_seq, &marker)?);
        write_atomic(&self.cfg.log_tmp_path(), &self.cfg.log_path(), &log_bytes)?;
        // The old handle points at the unlinked pre-compaction inode.
        let path = self.cfg.log_path();
        self.log = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_at(path, e))?;
        self.records_since_snapshot = 0;
        self.appends_since_sync = 0;
        self.telemetry.counter_add("ledger_snapshots_total", 1);
        self.telemetry.counter_add("ledger_compactions_total", 1);
        Ok(())
    }
}

fn write_atomic(tmp: &Path, dst: &Path, bytes: &[u8]) -> Result<(), LedgerError> {
    let mut f = File::create(tmp).map_err(|e| io_at(tmp.to_path_buf(), e))?;
    f.write_all(bytes)
        .map_err(|e| io_at(tmp.to_path_buf(), e))?;
    f.sync_all().map_err(|e| io_at(tmp.to_path_buf(), e))?;
    fs::rename(tmp, dst).map_err(|e| io_at(dst.to_path_buf(), e))?;
    // Make the rename itself durable where the platform allows it.
    if let Some(parent) = dst.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

/// What [`recover_dir`] found on disk.
#[derive(Debug)]
pub struct Recovered {
    /// The last snapshot, if one exists.
    pub snapshot: Option<SnapshotState>,
    /// Events after the snapshot, in sequence order, to be replayed.
    pub events: Vec<(u64, LedgerEvent)>,
    /// `Some(offset)`: a torn tail was truncated at this byte offset.
    pub truncated_at: Option<u64>,
}

/// Opens an existing market directory: loads the snapshot, scans the
/// log, truncates any torn tail, and returns a clean append handle plus
/// everything the broker must replay. Hard-fails with
/// [`LedgerError::Corrupt`] on damage a crash cannot explain.
pub fn recover_dir(cfg: &LedgerConfig) -> Result<(Ledger, Recovered), LedgerError> {
    fs::create_dir_all(&cfg.dir).map_err(|e| io_at(cfg.dir.clone(), e))?;
    // Lock before any file surgery (tmp removal, tail truncation): the
    // directory may belong to a live writer.
    let lock = LedgerLock::acquire(&cfg.dir)?;
    // Temp files are residue of a crash mid-snapshot/compaction; the
    // rename never happened, so they are dead weight.
    for stale in [cfg.snapshot_tmp_path(), cfg.log_tmp_path()] {
        if stale.exists() {
            fs::remove_file(&stale).map_err(|e| io_at(stale.clone(), e))?;
        }
    }
    let snapshot = read_snapshot(&cfg.snapshot_path())?;
    let snap_seq = snapshot.as_ref().map_or(0, |s| s.seq);

    let log_path = cfg.log_path();
    let bytes = if log_path.exists() {
        fs::read(&log_path).map_err(|e| io_at(log_path.clone(), e))?
    } else {
        Vec::new()
    };
    let scan = scan_log(&bytes)?;

    if let Some(first) = scan.records.first() {
        let covered = first.seq == 1 || first.seq <= snap_seq + 1;
        if !covered {
            return Err(LedgerError::Corrupt {
                offset: first.offset,
                detail: format!(
                    "log starts at seq {} but the snapshot only covers up to seq {snap_seq}",
                    first.seq
                ),
            });
        }
    }

    let events: Vec<(u64, LedgerEvent)> = scan
        .records
        .iter()
        .filter(|r| r.seq > snap_seq)
        .map(|r| (r.seq, r.event.clone()))
        .collect();
    let last_seq = scan.records.last().map_or(0, |r| r.seq);
    let next_seq = last_seq.max(snap_seq) + 1;
    let records_since_snapshot = events
        .iter()
        .filter(|(_, e)| !matches!(e, LedgerEvent::SnapshotTaken { .. }))
        .count() as u64;

    // Physical fix-ups: restore the torn file to its clean prefix.
    let truncated_at = if bytes.len() < LOG_MAGIC.len() {
        let had_partial = !bytes.is_empty();
        let mut f = File::create(&log_path).map_err(|e| io_at(log_path.clone(), e))?;
        f.write_all(&LOG_MAGIC)
            .map_err(|e| io_at(log_path.clone(), e))?;
        f.sync_all().map_err(|e| io_at(log_path.clone(), e))?;
        if had_partial {
            Some(0)
        } else {
            None
        }
    } else if let Some(t) = scan.truncate_to {
        let f = OpenOptions::new()
            .write(true)
            .open(&log_path)
            .map_err(|e| io_at(log_path.clone(), e))?;
        f.set_len(t).map_err(|e| io_at(log_path.clone(), e))?;
        f.sync_all().map_err(|e| io_at(log_path.clone(), e))?;
        Some(t)
    } else {
        None
    };

    let log = OpenOptions::new()
        .append(true)
        .open(&log_path)
        .map_err(|e| io_at(log_path, e))?;
    Ok((
        Ledger {
            cfg: cfg.clone(),
            log,
            next_seq,
            records_since_snapshot,
            appends_since_sync: 0,
            poisoned: false,
            telemetry: Telemetry::disabled(),
            _lock: lock,
        },
        Recovered {
            snapshot,
            events,
            truncated_at,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d =
            std::env::temp_dir().join(format!("qirana-ledger-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn ev_purchase(buyer: &str, price: f64, total: f64) -> LedgerEvent {
        LedgerEvent::PurchaseCommitted {
            buyer: buyer.to_string(),
            sql: format!("SELECT count(*) FROM T -- {buyer}"),
            price,
            total_paid: total,
        }
    }

    #[test]
    fn checksum_is_stable_and_length_tagged() {
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
        assert_ne!(checksum(b"abc"), checksum(b"abd"));
        assert_ne!(checksum(b"a"), checksum(b"a\0"), "tail length is hashed");
        assert_ne!(checksum(b""), checksum(b"\0"));
        assert_ne!(checksum(b"12345678"), checksum(b"123456789"));
    }

    #[test]
    fn event_roundtrip_all_variants() {
        let events = [
            ev_purchase("alice", 12.5, 40.25),
            LedgerEvent::UpdateCommitted {
                sql: "UPDATE T SET a = 1 WHERE b = 2".to_string(),
                changed: 3,
            },
            LedgerEvent::WritesCommitted {
                writes: vec![
                    CellWrite {
                        table: 0,
                        row: 1,
                        col: 2,
                        value: Value::Null,
                    },
                    CellWrite {
                        table: 1,
                        row: 0,
                        col: 0,
                        value: Value::Bool(true),
                    },
                    CellWrite {
                        table: 2,
                        row: 9,
                        col: 1,
                        value: Value::Int(-7),
                    },
                    CellWrite {
                        table: 0,
                        row: 3,
                        col: 3,
                        value: Value::Float(-0.0),
                    },
                    CellWrite {
                        table: 0,
                        row: 4,
                        col: 2,
                        value: Value::Date(19000),
                    },
                    CellWrite {
                        table: 1,
                        row: 5,
                        col: 0,
                        value: Value::str("héllo"),
                    },
                ],
            },
            LedgerEvent::SnapshotTaken { seq: 41 },
        ];
        for (i, ev) in events.iter().enumerate() {
            let seq = i as u64 + 1;
            let rec = encode_record(seq, ev).unwrap();
            let payload = &rec[HEADER_LEN..];
            let (got_seq, got) = decode_payload(payload).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(&got, ev);
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes_and_bad_tags() {
        let mut rec = encode_record(1, &ev_purchase("a", 1.0, 1.0)).unwrap();
        rec.push(0);
        assert!(decode_payload(&rec[HEADER_LEN..]).is_err());
        let mut payload = encode_payload(2, &LedgerEvent::SnapshotTaken { seq: 1 });
        payload[8] = 99; // event tag
        assert!(decode_payload(&payload).is_err());
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = SnapshotState {
            seq: 17,
            generation: 4,
            tables: vec![
                vec![
                    vec![Value::Int(1), Value::str("x")],
                    vec![Value::Int(2), Value::Null],
                ],
                vec![],
            ],
            buyers: vec![
                BuyerSnapshot {
                    name: "alice".to_string(),
                    paid: 13.75,
                    charged: vec![true, false, true],
                    history: vec!["SELECT 1".to_string(), "SELECT 2".to_string()],
                },
                BuyerSnapshot {
                    name: "bob".to_string(),
                    paid: 0.0,
                    charged: vec![],
                    history: vec![],
                },
            ],
        };
        let payload = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&payload).unwrap(), snap);
    }

    #[test]
    fn append_then_recover_replays_in_order() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("replay")).with_snapshot_every(0);
        let mut led = Ledger::create(cfg.clone()).unwrap();
        assert_eq!(led.append(&ev_purchase("a", 1.0, 1.0)).unwrap(), 1);
        assert_eq!(
            led.append(&LedgerEvent::UpdateCommitted {
                sql: "UPDATE T SET x = 1".to_string(),
                changed: 2,
            })
            .unwrap(),
            2
        );
        assert_eq!(led.append(&ev_purchase("b", 2.0, 2.0)).unwrap(), 3);
        assert_eq!(led.last_seq(), 3);
        drop(led);

        let (led, rec) = recover_dir(&cfg).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.truncated_at.is_none());
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.events[0].0, 1);
        assert_eq!(rec.events[2].0, 3);
        assert_eq!(led.next_seq(), 4);
        assert_eq!(led.records_since_snapshot(), 3);
    }

    #[test]
    fn recover_missing_and_empty_dirs_are_fresh() {
        let cfg = LedgerConfig::new(tmpdir("fresh"));
        let (led, rec) = recover_dir(&cfg).unwrap();
        assert!(rec.snapshot.is_none());
        assert!(rec.events.is_empty());
        assert!(rec.truncated_at.is_none());
        assert_eq!(led.next_seq(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_log_reusable() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("tear")).with_snapshot_every(0);
        let mut led = Ledger::create(cfg.clone()).unwrap();
        led.append(&ev_purchase("a", 1.0, 1.0)).unwrap();
        led.append(&ev_purchase("b", 2.0, 2.0)).unwrap();
        led.append(&ev_purchase("c", 3.0, 3.0)).unwrap();
        drop(led);

        let full = fs::read(cfg.log_path()).unwrap();
        let scan = scan_log(&full).unwrap();
        // Keep through the end of record 2, then cut mid-way through
        // record 3's payload.
        let keep = scan.records[1].end;
        fs::write(cfg.log_path(), &full[..keep as usize + 5]).unwrap();

        let (mut led, rec) = recover_dir(&cfg).unwrap();
        assert_eq!(rec.truncated_at, Some(keep));
        assert_eq!(rec.events.len(), 2);
        assert_eq!(fs::read(cfg.log_path()).unwrap().len() as u64, keep);
        // The recovered handle appends cleanly after the tear.
        assert_eq!(led.append(&ev_purchase("d", 4.0, 4.0)).unwrap(), 3);
        drop(led);
        let (_, rec2) = recover_dir(&cfg).unwrap();
        assert_eq!(rec2.events.len(), 3);
        assert!(rec2.truncated_at.is_none());
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("corrupt")).with_snapshot_every(0);
        let mut led = Ledger::create(cfg.clone()).unwrap();
        led.append(&ev_purchase("a", 1.0, 1.0)).unwrap();
        led.append(&ev_purchase("b", 2.0, 2.0)).unwrap();
        led.append(&ev_purchase("c", 3.0, 3.0)).unwrap();
        drop(led);

        let mut bytes = fs::read(cfg.log_path()).unwrap();
        let scan = scan_log(&bytes).unwrap();
        let mid_payload = scan.records[0].offset as usize + HEADER_LEN + 9;
        bytes[mid_payload] ^= 0xFF;
        fs::write(cfg.log_path(), &bytes).unwrap();

        let err = recover_dir(&cfg).unwrap_err();
        assert!(
            matches!(err, LedgerError::Corrupt { .. }),
            "expected Corrupt, got {err:?}"
        );
    }

    #[test]
    fn sequence_gap_is_corruption() {
        let cfg = LedgerConfig::new(tmpdir("gap"));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LOG_MAGIC);
        bytes.extend_from_slice(&encode_record(1, &ev_purchase("a", 1.0, 1.0)).unwrap());
        bytes.extend_from_slice(&encode_record(3, &ev_purchase("b", 2.0, 2.0)).unwrap());
        fs::write(cfg.log_path(), &bytes).unwrap();
        let err = recover_dir(&cfg).unwrap_err();
        assert!(matches!(err, LedgerError::Corrupt { .. }));
    }

    #[test]
    fn crash_budget_tears_at_exact_byte_and_poisons() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("crash")).with_snapshot_every(0);
        let mut led = Ledger::create(cfg.clone()).unwrap();
        let first = led.append(&ev_purchase("a", 1.0, 1.0));
        assert!(first.is_ok());
        let log_len = fs::metadata(cfg.log_path()).unwrap().len();

        // Allow 5 more bytes, then die.
        fault::arm_ledger_crash(5);
        let err = led.append(&ev_purchase("b", 2.0, 2.0)).unwrap_err();
        assert!(matches!(err, LedgerError::Crashed { written: 5 }));
        assert!(led.is_poisoned());
        assert!(matches!(
            led.append(&ev_purchase("c", 3.0, 3.0)).unwrap_err(),
            LedgerError::Poisoned
        ));
        fault::reset();
        assert_eq!(fs::metadata(cfg.log_path()).unwrap().len(), log_len + 5);

        // A poisoned handle still holds the writer lock; release it
        // before recovering, as a restarted process implicitly would.
        drop(led);
        let (_, rec) = recover_dir(&cfg).unwrap();
        assert_eq!(rec.events.len(), 1, "torn second record dropped");
        assert_eq!(rec.truncated_at, Some(log_len));
    }

    #[test]
    fn append_failpoint_aborts_between_records() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("failpoint")).with_snapshot_every(0);
        let mut led = Ledger::create(cfg.clone()).unwrap();
        led.append(&ev_purchase("a", 1.0, 1.0)).unwrap();
        fault::arm(fault::LEDGER_APPEND, fault::Trigger::Once);
        let err = led.append(&ev_purchase("b", 2.0, 2.0)).unwrap_err();
        assert!(matches!(err, LedgerError::Injected(_)));
        // A failpoint abort is *before* any bytes: the handle stays clean.
        assert!(!led.is_poisoned());
        led.append(&ev_purchase("b", 2.0, 2.0)).unwrap();
        fault::reset();
    }

    #[test]
    fn snapshot_and_compact_shrinks_log_and_recovers() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("compact")).with_snapshot_every(0);
        let mut led = Ledger::create(cfg.clone()).unwrap();
        for i in 0..6 {
            led.append(&ev_purchase("a", i as f64, i as f64)).unwrap();
        }
        let pre = fs::metadata(cfg.log_path()).unwrap().len();
        let snap = SnapshotState {
            seq: led.last_seq(),
            generation: 2,
            tables: vec![vec![vec![Value::Int(5)]]],
            buyers: vec![BuyerSnapshot {
                name: "a".to_string(),
                paid: 15.0,
                charged: vec![],
                history: (0..6).map(|i| format!("q{i}")).collect(),
            }],
        };
        led.snapshot_and_compact(&snap).unwrap();
        let post = fs::metadata(cfg.log_path()).unwrap().len();
        assert!(
            post < pre,
            "compaction must shrink the log ({pre} -> {post})"
        );
        assert_eq!(led.records_since_snapshot(), 0);

        // Post-snapshot traffic lands after the marker.
        led.append(&ev_purchase("b", 9.0, 9.0)).unwrap();
        drop(led);

        let (led, rec) = recover_dir(&cfg).unwrap();
        let got = rec.snapshot.expect("snapshot present");
        assert_eq!(got, snap);
        // Marker (seq 7) and the post-snapshot purchase (seq 8) replay.
        assert_eq!(rec.events.len(), 2);
        assert!(matches!(
            rec.events[0].1,
            LedgerEvent::SnapshotTaken { seq: 6 }
        ));
        assert!(matches!(
            rec.events[1].1,
            LedgerEvent::PurchaseCommitted { .. }
        ));
        assert_eq!(led.next_seq(), 9);
    }

    #[test]
    fn create_truncates_a_previous_market() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let dir = tmpdir("truncate");
        let cfg = LedgerConfig::new(&dir);
        let mut led = Ledger::create(cfg.clone()).unwrap();
        led.append(&ev_purchase("a", 1.0, 1.0)).unwrap();
        led.snapshot_and_compact(&SnapshotState {
            seq: 1,
            generation: 1,
            tables: vec![],
            buyers: vec![],
        })
        .unwrap();
        drop(led);
        assert!(cfg.snapshot_path().exists());

        let led = Ledger::create(cfg.clone()).unwrap();
        assert_eq!(led.next_seq(), 1);
        assert!(!cfg.snapshot_path().exists(), "old snapshot deleted");
        drop(led);
        let (_, rec) = recover_dir(&cfg).unwrap();
        assert!(rec.events.is_empty());
        assert!(rec.snapshot.is_none());
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("snapcorrupt"));
        let mut led = Ledger::create(cfg.clone()).unwrap();
        led.append(&ev_purchase("a", 1.0, 1.0)).unwrap();
        led.snapshot_and_compact(&SnapshotState {
            seq: 1,
            generation: 1,
            tables: vec![],
            buyers: vec![],
        })
        .unwrap();
        drop(led);
        let mut bytes = fs::read(cfg.snapshot_path()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(cfg.snapshot_path(), &bytes).unwrap();
        assert!(matches!(
            recover_dir(&cfg).unwrap_err(),
            LedgerError::Corrupt { .. }
        ));
    }

    #[test]
    fn fsync_policies_all_recover() {
        let _guard = fault::serialize_tests();
        fault::reset();
        for (tag, policy) in [
            ("always", FsyncPolicy::Always),
            ("every3", FsyncPolicy::EveryN(3)),
            ("never", FsyncPolicy::Never),
        ] {
            let cfg = LedgerConfig::new(tmpdir(tag))
                .with_fsync(policy)
                .with_snapshot_every(0);
            let mut led = Ledger::create(cfg.clone()).unwrap();
            for i in 0..5 {
                led.append(&ev_purchase("a", i as f64, i as f64)).unwrap();
            }
            drop(led);
            let (_, rec) = recover_dir(&cfg).unwrap();
            assert_eq!(rec.events.len(), 5, "policy {policy:?}");
        }
    }

    #[test]
    fn stale_tmp_files_are_cleared_on_recovery() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("staletmp"));
        let mut led = Ledger::create(cfg.clone()).unwrap();
        led.append(&ev_purchase("a", 1.0, 1.0)).unwrap();
        drop(led);
        fs::write(cfg.dir.join(SNAP_TMP_FILE), b"half a snapshot").unwrap();
        fs::write(cfg.dir.join(LOG_TMP_FILE), b"half a log").unwrap();
        let (_, rec) = recover_dir(&cfg).unwrap();
        assert_eq!(rec.events.len(), 1);
        assert!(!cfg.dir.join(SNAP_TMP_FILE).exists());
        assert!(!cfg.dir.join(LOG_TMP_FILE).exists());
    }

    #[test]
    fn second_open_of_a_live_directory_is_locked() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("locked"));
        let led = Ledger::create(cfg.clone()).unwrap();
        // Same process counts as a live holder: two in-process handles
        // would interleave appends just as badly as two processes.
        assert!(
            matches!(Ledger::create(cfg.clone()), Err(LedgerError::Locked { .. })),
            "create over a live ledger must refuse"
        );
        assert!(
            matches!(recover_dir(&cfg), Err(LedgerError::Locked { .. })),
            "recover over a live ledger must refuse"
        );
        drop(led);
        // Drop released the lock; the directory opens again.
        let (_, rec) = recover_dir(&cfg).unwrap();
        assert_eq!(rec.events.len(), 0);
    }

    #[test]
    fn stale_lock_of_a_dead_process_is_reclaimed() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("stalelock"));
        let mut led = Ledger::create(cfg.clone()).unwrap();
        led.append(&ev_purchase("a", 1.0, 1.0)).unwrap();
        drop(led);
        // A killed process leaves its lockfile behind; pid 999999999 is
        // far above any real pid_max, so the holder is provably dead.
        fs::write(cfg.dir.join(LOCK_FILE), b"999999999").unwrap();
        let (_, rec) = recover_dir(&cfg).expect("stale lock must be reclaimed");
        assert_eq!(rec.events.len(), 1);
    }

    #[test]
    fn foreign_live_lock_is_refused() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("livelock"));
        fs::create_dir_all(&cfg.dir).unwrap();
        // Pid 1 is always alive.
        fs::write(cfg.dir.join(LOCK_FILE), b"1").unwrap();
        match Ledger::create(cfg.clone()) {
            Err(LedgerError::Locked { holder, .. }) => assert_eq!(holder, "1"),
            other => panic!("expected Locked, got {other:?}"),
        }
        // The refused open must not have removed the foreign lock.
        assert!(cfg.dir.join(LOCK_FILE).exists());
    }

    #[test]
    fn unparsable_lock_is_refused_not_reclaimed() {
        let _guard = fault::serialize_tests();
        fault::reset();
        let cfg = LedgerConfig::new(tmpdir("garbagelock"));
        fs::create_dir_all(&cfg.dir).unwrap();
        fs::write(cfg.dir.join(LOCK_FILE), b"not-a-pid").unwrap();
        assert!(
            matches!(recover_dir(&cfg), Err(LedgerError::Locked { .. })),
            "an unreadable holder is conservatively treated as alive"
        );
        assert!(cfg.dir.join(LOCK_FILE).exists());
    }
}
