//! Optimized disagreement detection (§4: Algorithms 4, 5, 6 + batching).
//!
//! For each support update the checks proceed from cheapest to most
//! expensive, and every verdict produced is **exact** (equal to what the
//! naive engine would decide) — anything inconclusive falls through to a
//! dynamic check:
//!
//! 1. **relation not referenced** → agrees;
//! 2. **irrelevant update** (touches only columns the query never reads)
//!    → agrees;
//! 3. for a *non-contributing* tuple: if no replacement tuple satisfies the
//!    relation-local condition `C[u⁺]` → agrees; otherwise probe
//!    `Q((D ∖ R) ∪ {u⁺})` for emptiness — batched across updates via the
//!    widened `R⁺` relation (§4.2);
//! 4. for a *contributing* tuple: static disagreement when the update hits
//!    an identity-projected column (row updates), when every replacement
//!    fails `C[u⁺]`, or — for aggregates with `COUNT(*)` — when group keys
//!    move; an exact **delta analysis** decides pure aggregate-argument
//!    changes without touching the database; the remainder compares
//!    `Q((D ∖ R) ∪ {u⁻})` against `Q((D ∖ R) ∪ {u⁺})` (batched), or for
//!    aggregates re-runs the query on the updated instance (the paper notes
//!    this check cannot be batched).
//!
//! Note the printed Algorithm 6 declares a disagreement whenever a swap
//! touches a projected attribute; that is *not* exact (swapping a projected
//! column between two contributing tuples can leave the output bag
//! unchanged — the paper's own `SELECT age FROM User` discussion in §3.2
//! relies on this). We use the dynamic comparison instead, which Lemma A.2
//! makes exact.
//!
//! **Exactness is also what makes the per-query verdicts memoizable.** The
//! bitmap this module produces for a query is a pure function of the query
//! plan and the (stored database, support set) pair — never of the buyer,
//! the active set (which only suppresses work, each verdict being decided
//! per update), or the batching/parallelism configuration. Those bitmaps
//! are exactly the artifacts [`crate::cache::PricingCache`] memoizes for
//! incremental history-aware pricing: a cached entry computed through this
//! optimizer can be replayed for any buyer and masked with any charged
//! bitmap, bit-for-bit as if recomputed.

use crate::engine::{bag_fp, EngineOptions};
use crate::normal_form::{AggShape, Prepared, RelShape, SpjShape};
use crate::parallel::run_indexed;
use crate::update::SupportUpdate;
use qirana_sqlengine::ast::AggFunc;
use qirana_sqlengine::exec::eval_row_expr;
use qirana_sqlengine::plan::AggSpec;
use qirana_sqlengine::update::apply_writes;
use qirana_sqlengine::{
    execute, Database, EngineError, ExecBudget, ExecContext, Fingerprint, PExpr, QueryOutput,
    ResolvedSelect, Row, Value,
};
use std::collections::{BTreeMap, HashMap, HashSet};

type Result<T> = std::result::Result<T, EngineError>;

/// Pending `(support index, u⁻ rows, u⁺ rows)` dynamic comparisons, one
/// bucket per relation.
type CmpQueue = Vec<Vec<(usize, Vec<Row>, Vec<Row>)>>;

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn key_of(row: &Row, pk_cols: &[usize]) -> Vec<Value> {
    pk_cols.iter().map(|&c| row[c].clone()).collect()
}

/// Executes the keyed query once and collects, per relation, the set of
/// primary keys of contributing tuples (`π_P(Q̂(D))`).
fn contributing_sets(
    db: &Database,
    keyed: &ResolvedSelect,
    ranges: &[std::ops::Range<usize>],
    budget: ExecBudget,
) -> Result<Vec<HashSet<Vec<Value>>>> {
    let out = execute(keyed, &ExecContext::new(db).with_budget(budget))?;
    let mut sets: Vec<HashSet<Vec<Value>>> = vec![HashSet::new(); ranges.len()];
    for row in &out.rows {
        for (set, range) in sets.iter_mut().zip(ranges) {
            set.insert(row[range.clone()].to_vec());
        }
    }
    Ok(sets)
}

/// True iff the tuple satisfies every relation-local WHERE conjunct
/// (three-valued: a NULL outcome also disqualifies the tuple).
fn local_sat(db: &Database, rel: &RelShape, row: &Row) -> Result<bool> {
    let ctx = ExecContext::new(db);
    for c in &rel.local_condition {
        if eval_row_expr(c, row, &ctx)?.as_bool3() != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn with_upid(rows: &[Row], idx: usize) -> impl Iterator<Item = Row> + '_ {
    rows.iter().map(move |r| {
        let mut w = r.clone();
        w.push(Value::Int(idx as i64));
        w
    })
}

/// Runs a relation's widened probe over the given override rows.
fn run_probe(
    db: &Database,
    rel: &RelShape,
    rows: &[Row],
    budget: ExecBudget,
) -> Result<QueryOutput> {
    let ctx = ExecContext::with_override(db, rel.table, rows).with_budget(budget);
    execute(&rel.probe, &ctx)
}

/// Groups probe output rows by their trailing `upid` column and bag-
/// fingerprints each group.
fn per_upid_fps(out: QueryOutput) -> Result<BTreeMap<i64, Fingerprint>> {
    let ncols = out.columns.len();
    // BTreeMap: the map is iterated below, and per-update fingerprints
    // must be produced in upid order for the pass to be deterministic.
    let mut groups: BTreeMap<i64, Vec<Row>> = BTreeMap::new();
    for row in out.rows {
        // The probe plan appends upid as an integer literal column.
        let upid = row[ncols - 1]
            .as_i64()
            .ok_or_else(|| EngineError::internal("probe upid column was not an integer"))?;
        groups.entry(upid).or_default().push(row);
    }
    Ok(groups
        .into_iter()
        .map(|(upid, rows)| {
            let fp = bag_fp(QueryOutput {
                columns: out.columns.clone(),
                rows,
                ordered: false,
            });
            (upid, fp)
        })
        .collect())
}

// ---------------------------------------------------------------------------
// SPJ queries: Algorithms 4 & 6 with batching
// ---------------------------------------------------------------------------

/// Disagreement bits for an SPJ-shaped query over neighborhood updates.
pub fn spj_disagreements(
    db: &mut Database,
    shape: &SpjShape,
    updates: &[SupportUpdate],
    active: &[bool],
    opts: &EngineOptions,
) -> Result<Vec<bool>> {
    let n = updates.len();
    let mut bits = vec![false; n];
    let contrib = contributing_sets(db, &shape.keyed, &shape.keyed_ranges, opts.budget)?;

    let nrels = shape.relations.len();
    let mut check_new: Vec<Vec<(usize, Vec<Row>)>> = vec![Vec::new(); nrels];
    let mut check_cmp: CmpQueue = vec![Vec::new(); nrels];

    for (i, up) in updates.iter().enumerate() {
        if !active[i] {
            continue;
        }
        let Some(rel) = shape.relations.iter().find(|r| r.table == up.table()) else {
            continue; // relation not in the query → agrees
        };
        if up
            .changed_columns()
            .iter()
            .all(|c| !rel.referenced_cols.contains(c))
        {
            continue; // irrelevant update → agrees
        }
        let (old_rows, new_rows) = up.old_new_rows(db);
        let contributes = old_rows
            .iter()
            .any(|r| contrib[rel.rel_idx].contains(&key_of(r, &rel.pk_cols)));
        let mut sat_new = Vec::new();
        for r in &new_rows {
            if local_sat(db, rel, r)? {
                sat_new.push(r.clone());
            }
        }

        if !contributes {
            if sat_new.is_empty() {
                continue; // u⁺ can never join → agrees
            }
            check_new[rel.rel_idx].push((i, sat_new));
        } else {
            if sat_new.is_empty() {
                // Contributing rows vanish, nothing replaces them.
                bits[i] = true;
                continue;
            }
            if let SupportUpdate::Row { .. } = up {
                // Exact: a changed identity-projected attribute of a
                // contributing tuple always perturbs the output bag (the
                // generator guarantees new ≠ old).
                let hit = up
                    .changed_columns()
                    .iter()
                    .any(|&c| shape.identity_projected_slots.contains(&(rel.offset + c)));
                if hit {
                    bits[i] = true;
                    continue;
                }
            }
            check_cmp[rel.rel_idx].push((i, old_rows, new_rows));
        }
    }

    // Resolve the dynamic checks.
    for rel in &shape.relations {
        let news = &check_new[rel.rel_idx];
        let cmps = &check_cmp[rel.rel_idx];

        if opts.batch {
            if !news.is_empty() {
                let rows: Vec<Row> = news
                    .iter()
                    .flat_map(|(i, rows)| with_upid(rows, *i))
                    .collect();
                let out = run_probe(db, rel, &rows, opts.budget)?;
                let ncols = out.columns.len();
                for row in &out.rows {
                    // The probe plan appends upid as an integer column.
                    let upid = row[ncols - 1].as_i64().ok_or_else(|| {
                        EngineError::internal("probe upid column was not an integer")
                    })? as usize;
                    bits[upid] = true;
                }
            }
            if !cmps.is_empty() {
                let old_rows: Vec<Row> = cmps
                    .iter()
                    .flat_map(|(i, old, _)| with_upid(old, *i))
                    .collect();
                let new_rows: Vec<Row> = cmps
                    .iter()
                    .flat_map(|(i, _, new)| with_upid(new, *i))
                    .collect();
                let old_fps = per_upid_fps(run_probe(db, rel, &old_rows, opts.budget)?)?;
                let new_fps = per_upid_fps(run_probe(db, rel, &new_rows, opts.budget)?)?;
                for (i, _, _) in cmps {
                    let key = *i as i64;
                    if old_fps.get(&key) != new_fps.get(&key) {
                        bits[*i] = true;
                    }
                }
            }
        } else {
            let total = news.len() + cmps.len();
            let workers = opts.parallelism.workers(total);
            if workers > 1 {
                // The unbatched probes are read-only (table overrides, no
                // writes), so workers share the base database by reference.
                let shared: &Database = db;
                let flags = run_indexed(
                    total,
                    workers,
                    || (),
                    |_, j| {
                        if j < news.len() {
                            let (i, rows) = &news[j];
                            let rows: Vec<Row> = with_upid(rows, *i).collect();
                            let out = run_probe(shared, rel, &rows, opts.budget)?;
                            Ok((*i, !out.rows.is_empty()))
                        } else {
                            let (i, old, new) = &cmps[j - news.len()];
                            let old_rows: Vec<Row> = with_upid(old, *i).collect();
                            let new_rows: Vec<Row> = with_upid(new, *i).collect();
                            let old_fp = bag_fp(run_probe(shared, rel, &old_rows, opts.budget)?);
                            let new_fp = bag_fp(run_probe(shared, rel, &new_rows, opts.budget)?);
                            Ok((*i, old_fp != new_fp))
                        }
                    },
                    &opts.telemetry,
                )?;
                for (i, disagrees) in flags {
                    if disagrees {
                        bits[i] = true;
                    }
                }
            } else {
                for (i, rows) in news {
                    let rows: Vec<Row> = with_upid(rows, *i).collect();
                    let out = run_probe(db, rel, &rows, opts.budget)?;
                    if !out.rows.is_empty() {
                        bits[*i] = true;
                    }
                }
                for (i, old, new) in cmps {
                    let old_rows: Vec<Row> = with_upid(old, *i).collect();
                    let new_rows: Vec<Row> = with_upid(new, *i).collect();
                    let old_fp = bag_fp(run_probe(db, rel, &old_rows, opts.budget)?);
                    let new_fp = bag_fp(run_probe(db, rel, &new_rows, opts.budget)?);
                    if old_fp != new_fp {
                        bits[*i] = true;
                    }
                }
            }
        }
    }
    Ok(bits)
}

// ---------------------------------------------------------------------------
// Aggregate queries: Algorithm 5 (+ swap handling, + exact delta analysis)
// ---------------------------------------------------------------------------

/// Verdict of a per-aggregate static analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delta {
    NoChange,
    Change,
    Unknown,
}

/// Disagreement bits for an aggregate-shaped query.
pub fn agg_disagreements(
    db: &mut Database,
    q: &Prepared,
    shape: &AggShape,
    updates: &[SupportUpdate],
    active: &[bool],
    opts: &EngineOptions,
) -> Result<Vec<bool>> {
    let n = updates.len();
    let mut bits = vec![false; n];
    let contrib = contributing_sets(db, &shape.keyed, &shape.keyed_ranges, opts.budget)?;

    // Group table: group key -> aggregate values (Q_γ(D) bookkeeping).
    let group_out = execute(
        &shape.group_table,
        &ExecContext::new(db).with_budget(opts.budget),
    )?;
    let mut group_cache: HashMap<Vec<Value>, Vec<Value>> =
        HashMap::with_capacity(group_out.rows.len());
    for row in group_out.rows {
        let key = row[..shape.num_group_keys].to_vec();
        let vals = row[shape.num_group_keys..].to_vec();
        group_cache.insert(key, vals);
    }

    let nrels = shape.relations.len();
    let mut check_new: Vec<Vec<(usize, Vec<Row>)>> = vec![Vec::new(); nrels];
    let mut check_full: Vec<usize> = Vec::new();

    let plan = &q.plan;
    for (i, up) in updates.iter().enumerate() {
        if !active[i] {
            continue;
        }
        let Some(rel) = shape.relations.iter().find(|r| r.table == up.table()) else {
            continue;
        };
        let changed = up.changed_columns();
        if changed.iter().all(|c| !rel.referenced_cols.contains(c)) {
            continue; // irrelevant
        }
        let (old_rows, new_rows) = up.old_new_rows(db);
        let contributes = old_rows
            .iter()
            .any(|r| contrib[rel.rel_idx].contains(&key_of(r, &rel.pk_cols)));
        let mut sat_new = Vec::new();
        for r in &new_rows {
            if local_sat(db, rel, r)? {
                sat_new.push(r.clone());
            }
        }

        if !contributes {
            if sat_new.is_empty() {
                continue;
            }
            check_new[rel.rel_idx].push((i, sat_new));
            continue;
        }

        // Contributing tuple. Single-relation queries admit a fully exact
        // delta analysis for both row and swap updates (join multiplicity
        // is always 1, group keys and aggregate arguments are pure tuple
        // functions, and the hidden bookkeeping counts decide NULL
        // transitions and group disappearance) — no fallback needed except
        // for MIN/MAX ties.
        if shape.relations.len() == 1 && shape.local_group_exprs[rel.rel_idx].is_some() {
            match single_relation_delta(db, plan, shape, rel, &old_rows, &new_rows, &group_cache)? {
                Delta::Change => bits[i] = true,
                Delta::NoChange => {}
                Delta::Unknown => check_full.push(i),
            }
            continue;
        }

        if sat_new.is_empty() {
            if shape.has_count_star {
                bits[i] = true; // a group count definitely shrinks
            } else {
                check_full.push(i);
            }
            continue;
        }
        let hits_group = changed
            .iter()
            .any(|&c| shape.group_slots.contains(&(rel.offset + c)));
        let hits_join = changed.iter().any(|&c| rel.join_cols.contains(&c));

        if !matches!(up, SupportUpdate::Row { .. }) {
            // Swap on contributing tuples of a join: the exchange can
            // cancel out in ways no cheap static test captures; fall back.
            check_full.push(i);
            continue;
        }

        // Decide whether the tuple's group key actually moves. Slot overlap
        // is not enough — `GROUP BY age % 2` is untouched by 25 → 27.
        let group_moved: Option<bool> = if !hits_group {
            Some(false)
        } else if let Some(gexprs) = &shape.local_group_exprs[rel.rel_idx] {
            let ctx = ExecContext::new(db);
            let mut moved = false;
            for g in gexprs {
                let ko = eval_row_expr(g, &old_rows[0], &ctx)?;
                let kn = eval_row_expr(g, &sat_new[0], &ctx)?;
                if !ko.sql_eq(&kn) {
                    moved = true;
                    break;
                }
            }
            Some(moved)
        } else {
            None // key depends on join partners: undecidable here
        };

        match group_moved {
            Some(false) if !hits_join => {
                // Multiplicity- and group-preserving row update: exact
                // delta analysis per aggregate.
                match delta_analysis(db, plan, rel, &old_rows[0], &sat_new[0])? {
                    Delta::Change => bits[i] = true,
                    Delta::NoChange => {}
                    Delta::Unknown => check_full.push(i),
                }
            }
            Some(true) if shape.has_count_star => {
                // The tuple's ≥1 copies leave their group (whose key is a
                // pure function of the tuple, different from the new key),
                // so that group's COUNT(*) shrinks or the group vanishes
                // while a distinct key absorbs the copies.
                bits[i] = true;
            }
            _ => check_full.push(i),
        }
    }

    // Non-contributing probes: exact aggregate-effect analysis on the rows
    // u⁺ would add.
    for rel in &shape.relations {
        let news = &check_new[rel.rel_idx];
        if news.is_empty() {
            continue;
        }
        if opts.batch {
            let rows: Vec<Row> = news
                .iter()
                .flat_map(|(i, rows)| with_upid(rows, *i))
                .collect();
            let out = run_probe(db, rel, &rows, opts.budget)?;
            apply_addition_analysis(shape, &group_cache, out, &mut bits)?;
        } else {
            let workers = opts.parallelism.workers(news.len());
            if workers > 1 {
                let shared: &Database = db;
                let outs = run_indexed(
                    news.len(),
                    workers,
                    || (),
                    |_, j| {
                        let (i, rows) = &news[j];
                        let rows: Vec<Row> = with_upid(rows, *i).collect();
                        run_probe(shared, rel, &rows, opts.budget)
                    },
                    &opts.telemetry,
                )?;
                for out in outs {
                    apply_addition_analysis(shape, &group_cache, out, &mut bits)?;
                }
            } else {
                for (i, rows) in news {
                    let rows: Vec<Row> = with_upid(rows, *i).collect();
                    let out = run_probe(db, rel, &rows, opts.budget)?;
                    apply_addition_analysis(shape, &group_cache, out, &mut bits)?;
                }
            }
        }
    }

    // Full fallback: apply the update, rerun the query, compare (the paper
    // notes this check cannot be batched).
    if !check_full.is_empty() {
        let base = bag_fp(execute(
            plan,
            &ExecContext::new(db).with_budget(opts.budget),
        )?);
        let workers = opts.parallelism.workers(check_full.len());
        if workers > 1 {
            // Apply/rerun/undo mutates the database, so each worker gets
            // its own replica — the paper's "cannot be batched" check is
            // still embarrassingly parallel across updates.
            let shared: &Database = db;
            let flags = run_indexed(
                check_full.len(),
                workers,
                || shared.clone(),
                |local: &mut Database, j| {
                    let i = check_full[j];
                    let undo = updates[i].apply(local);
                    let fp = execute(plan, &ExecContext::new(local).with_budget(opts.budget))
                        .map(bag_fp);
                    apply_writes(local, &undo);
                    Ok((i, fp? != base))
                },
                &opts.telemetry,
            )?;
            for (i, bit) in flags {
                bits[i] = bit;
            }
        } else {
            for i in check_full {
                let undo = updates[i].apply(db);
                let fp = execute(plan, &ExecContext::new(db).with_budget(opts.budget)).map(bag_fp);
                apply_writes(db, &undo);
                bits[i] = fp? != base;
            }
        }
    }
    Ok(bits)
}

/// Exact per-aggregate analysis of a multiplicity-preserving row update on
/// a contributing tuple: the update replaces each joined copy's aggregate
/// argument `f(u⁻)` with `f(u⁺)` within the same group(s).
fn delta_analysis(
    db: &Database,
    plan: &ResolvedSelect,
    rel: &RelShape,
    old: &Row,
    new: &Row,
) -> Result<Delta> {
    let mut verdict = Delta::NoChange;
    for spec in &plan.aggregates {
        let d = one_agg_delta(db, rel, spec, old, new)?;
        match d {
            Delta::Change => return Ok(Delta::Change),
            Delta::Unknown => verdict = Delta::Unknown,
            Delta::NoChange => {}
        }
    }
    Ok(verdict)
}

fn one_agg_delta(
    db: &Database,
    rel: &RelShape,
    spec: &AggSpec,
    old: &Row,
    new: &Row,
) -> Result<Delta> {
    let Some(arg) = &spec.arg else {
        return Ok(Delta::NoChange); // COUNT(*): multiplicity preserved
    };
    if spec.distinct {
        return Ok(Delta::Unknown); // excluded by shape, but stay safe
    }
    let mut slots = Vec::new();
    arg.collect_slots(&mut slots);
    let in_rel = |s: usize| s >= rel.offset && s < rel.offset + rel.arity;
    if slots.iter().all(|&s| !in_rel(s)) {
        // Argument read entirely from other relations; the same join
        // partners produce the same values.
        return Ok(Delta::NoChange);
    }
    if !slots.iter().all(|&s| in_rel(s)) {
        return Ok(Delta::Unknown); // mixed: value depends on partners
    }
    // Fully local argument: evaluate on both tuples.
    let mut local = arg.clone();
    local.map_slots(&mut |s| s - rel.offset);
    let ctx = ExecContext::new(db);
    let vo = eval_row_expr(&local, old, &ctx)?;
    let vn = eval_row_expr(&local, new, &ctx)?;
    let nullity_same = vo.is_null() == vn.is_null();
    Ok(match spec.func {
        AggFunc::Count => {
            if nullity_same {
                Delta::NoChange
            } else {
                Delta::Change
            }
        }
        AggFunc::Sum | AggFunc::Avg => {
            if vo.is_null() && vn.is_null() {
                Delta::NoChange
            } else if nullity_same {
                if vo.sql_eq(&vn) {
                    Delta::NoChange
                } else {
                    Delta::Change
                }
            } else {
                // Nullity flip: SUM/AVG shift in count or representation —
                // needs group context.
                Delta::Unknown
            }
        }
        AggFunc::Min | AggFunc::Max => {
            if vo.sql_eq(&vn) || (vo.is_null() && vn.is_null()) {
                Delta::NoChange
            } else {
                Delta::Unknown // needs the group's current extremum
            }
        }
    })
}

/// Exact per-aggregate delta for a row *or swap* update on a
/// single-relation aggregate query: the removed tuples are the locally
/// satisfying old rows, the added tuples the satisfying new rows, and every
/// group-key / argument expression is a pure function of the tuple (join
/// multiplicity is 1). The hidden bookkeeping counts in the group cache
/// decide NULL transitions and group disappearance, so the only remaining
/// `Unknown` is a MIN/MAX tie on a removed extremum.
///
/// Exactness here (as in [`one_agg_delta`]) is modulo `f64` rounding: the
/// naive engine re-folds each group's sum in row order, so a swap of two
/// float values can in principle perturb the last ulp of a sum this
/// analysis calls unchanged. Integer aggregates are exact.
fn single_relation_delta(
    db: &Database,
    plan: &ResolvedSelect,
    shape: &AggShape,
    rel: &RelShape,
    old_rows: &[Row],
    new_rows: &[Row],
    group_cache: &HashMap<Vec<Value>, Vec<Value>>,
) -> Result<Delta> {
    // `single_relation_delta` is only entered for relations whose local
    // group keys were precomputed by `analyze_spja`.
    let gexprs = shape.local_group_exprs[rel.rel_idx]
        .as_ref()
        .ok_or_else(|| {
            EngineError::internal("single_relation_delta entered without local group keys")
        })?;
    // Localize the visible aggregates' argument expressions.
    let in_rel = |s: usize| s >= rel.offset && s < rel.offset + rel.arity;
    let mut arg_local: Vec<Option<PExpr>> = Vec::with_capacity(plan.aggregates.len());
    for spec in &plan.aggregates {
        match &spec.arg {
            Some(a) => {
                let mut slots = Vec::new();
                a.collect_slots(&mut slots);
                if !slots.iter().all(|&s| in_rel(s)) {
                    return Ok(Delta::Unknown); // unreachable single-relation
                }
                let mut local = a.clone();
                local.map_slots(&mut |s| s - rel.offset);
                arg_local.push(Some(local));
            }
            None => arg_local.push(None),
        }
    }

    // Per-group removal/addition accumulation.
    struct GroupDelta {
        rows: i64,
        removed: Vec<Vec<Value>>,
        added: Vec<Vec<Value>>,
    }
    let ctx = ExecContext::new(db);
    // BTreeMap: iterated below to reach the verdict; `Value`'s total
    // order keeps the walk deterministic across runs.
    let mut groups: BTreeMap<Vec<Value>, GroupDelta> = BTreeMap::new();
    for (rows, add) in [(old_rows, false), (new_rows, true)] {
        for r in rows {
            if !local_sat(db, rel, r)? {
                continue;
            }
            let mut key = Vec::with_capacity(gexprs.len());
            for g in gexprs {
                key.push(eval_row_expr(g, r, &ctx)?);
            }
            let mut args = Vec::with_capacity(arg_local.len());
            for a in &arg_local {
                args.push(match a {
                    Some(e) => eval_row_expr(e, r, &ctx)?,
                    None => Value::Null,
                });
            }
            let e = groups.entry(key).or_insert(GroupDelta {
                rows: 0,
                removed: Vec::new(),
                added: Vec::new(),
            });
            if add {
                e.rows += 1;
                e.added.push(args);
            } else {
                e.rows -= 1;
                e.removed.push(args);
            }
        }
    }

    let mut verdict = Delta::NoChange;
    for (key, d) in &groups {
        if d.added.is_empty() && d.removed.is_empty() {
            continue;
        }
        let Some(cached) = group_cache.get(key) else {
            if !d.added.is_empty() {
                return Ok(Delta::Change); // a brand-new group appears
            }
            continue;
        };
        // Group disappearance: every row leaves.
        let total = cached[shape.hidden_count_col].as_i64().unwrap_or(0);
        if total + d.rows == 0 {
            return Ok(Delta::Change);
        }
        for (j, func) in shape.agg_funcs.iter().enumerate() {
            let one = match func {
                AggFunc::Count if plan.aggregates[j].arg.is_none() => {
                    if d.rows != 0 {
                        Delta::Change
                    } else {
                        Delta::NoChange
                    }
                }
                _ => {
                    let rm: Vec<&Value> = d.removed.iter().map(|a| &a[j]).collect();
                    let ad: Vec<&Value> = d.added.iter().map(|a| &a[j]).collect();
                    one_group_value_delta(shape, cached, j, *func, &rm, &ad)
                }
            };
            match one {
                Delta::Change => return Ok(Delta::Change),
                Delta::Unknown => verdict = Delta::Unknown,
                Delta::NoChange => {}
            }
        }
    }
    Ok(verdict)
}

/// Decides one aggregate's fate given the exact multiset of removed and
/// added argument values for a single group.
fn one_group_value_delta(
    shape: &AggShape,
    cached: &[Value],
    j: usize,
    func: AggFunc,
    removed: &[&Value],
    added: &[&Value],
) -> Delta {
    let nn_col = match shape.hidden_nonnull_cols[j] {
        Some(c) => c,
        None => {
            return if removed.len() != added.len() {
                Delta::Change
            } else {
                Delta::NoChange
            }
        }
    };
    let nn = cached[nn_col].as_i64().unwrap_or(0);
    let rm_nonnull: Vec<&&Value> = removed.iter().filter(|v| !v.is_null()).collect();
    let ad_nonnull: Vec<&&Value> = added.iter().filter(|v| !v.is_null()).collect();
    let dn = ad_nonnull.len() as i64 - rm_nonnull.len() as i64;
    let numeric_sum = |vals: &[&&Value]| -> Option<f64> {
        let mut s = 0.0;
        for v in vals {
            s += v.as_f64()?;
        }
        Some(s)
    };

    match func {
        AggFunc::Count => {
            if dn != 0 {
                Delta::Change
            } else {
                Delta::NoChange
            }
        }
        AggFunc::Sum => {
            if nn == 0 {
                if dn > 0 {
                    Delta::Change // NULL → a value
                } else {
                    Delta::NoChange
                }
            } else if nn + dn == 0 {
                Delta::Change // a value → NULL
            } else {
                match (numeric_sum(&ad_nonnull), numeric_sum(&rm_nonnull)) {
                    (Some(a), Some(r)) => {
                        if a != r {
                            Delta::Change
                        } else {
                            Delta::NoChange
                        }
                    }
                    _ => Delta::Unknown,
                }
            }
        }
        AggFunc::Avg => {
            if nn == 0 {
                if dn > 0 {
                    Delta::Change
                } else {
                    Delta::NoChange
                }
            } else if nn + dn == 0 {
                Delta::Change
            } else {
                let (Some(a), Some(r)) = (numeric_sum(&ad_nonnull), numeric_sum(&rm_nonnull))
                else {
                    return Delta::Unknown;
                };
                let Some(avg) = cached[j].as_f64() else {
                    return Delta::Unknown;
                };
                // (S + Δs) / (n + Δn) == S/n  ⇔  Δs == avg · Δn.
                // qirana-lint::allow(QL002): dn is a per-group row-count delta
                if (a - r) != avg * dn as f64 {
                    Delta::Change
                } else {
                    Delta::NoChange
                }
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let cur = &cached[j];
            if cur.is_null() {
                return if dn > 0 {
                    Delta::Change
                } else {
                    Delta::NoChange
                };
            }
            if nn + dn == 0 {
                return Delta::Change; // extremum → NULL
            }
            let better = |v: &Value| {
                if func == AggFunc::Min {
                    v.total_cmp(cur).is_lt()
                } else {
                    v.total_cmp(cur).is_gt()
                }
            };
            if ad_nonnull.iter().any(|v| better(v)) {
                return Delta::Change; // a strictly better value arrives
            }
            // All additions are no better than the current extremum; the
            // extremum changes only if every copy of it is removed, which
            // we can rule out when removals of it are covered by additions.
            let rm_ties = rm_nonnull.iter().filter(|v| v.sql_eq(cur)).count();
            let ad_ties = ad_nonnull.iter().filter(|v| v.sql_eq(cur)).count();
            if rm_ties <= ad_ties {
                Delta::NoChange
            } else {
                Delta::Unknown
            }
        }
    }
}

/// Exact analysis of pure additions: the unrolled probe rows a previously
/// non-contributing tuple would add. Any row in a new group, or any
/// aggregate provably perturbed in an existing group, flags a disagreement.
fn apply_addition_analysis(
    shape: &AggShape,
    group_cache: &HashMap<Vec<Value>, Vec<Value>>,
    out: QueryOutput,
    bits: &mut [bool],
) -> Result<()> {
    let g = shape.num_group_keys;
    let ncols = out.columns.len();
    // upid -> (group key -> arg rows). BTreeMaps: both levels are
    // iterated below and the inner walk can short-circuit per group, so
    // ordered iteration keeps the analysis deterministic.
    let mut per_update: BTreeMap<i64, BTreeMap<Vec<Value>, Vec<Vec<Value>>>> = BTreeMap::new();
    for row in out.rows {
        // The probe plan appends upid as an integer literal column.
        let upid = row[ncols - 1]
            .as_i64()
            .ok_or_else(|| EngineError::internal("probe upid column was not an integer"))?;
        let key = row[..g].to_vec();
        let args = row[g..ncols - 1].to_vec();
        per_update
            .entry(upid)
            .or_default()
            .entry(key)
            .or_default()
            .push(args);
    }
    for (upid, groups) in per_update {
        let mut change = false;
        'groups: for (key, rows) in &groups {
            let Some(cached) = group_cache.get(key) else {
                change = true; // brand-new group appears
                break;
            };
            for (j, maybe_col) in shape.agg_arg_cols.iter().enumerate() {
                let spec_func = shape.agg_funcs[j];
                let vals: Vec<&Value> = match maybe_col {
                    None => {
                        // COUNT(*): any added row increments the count.
                        change = true;
                        break 'groups;
                    }
                    Some(c) => rows.iter().map(|r| &r[*c]).collect(),
                };
                let nonnull: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
                let cached_val = &cached[j];
                let perturbed = match spec_func {
                    AggFunc::Count => vals.iter().any(|v| !v.is_null()),
                    AggFunc::Sum => {
                        if cached_val.is_null() {
                            vals.iter().any(|v| !v.is_null())
                        } else {
                            nonnull.iter().sum::<f64>() != 0.0
                                || vals.iter().any(|v| !v.is_null() && v.as_f64().is_none())
                        }
                    }
                    AggFunc::Avg => {
                        if cached_val.is_null() {
                            vals.iter().any(|v| !v.is_null())
                        } else {
                            let k = nonnull.len();
                            let avg = cached_val.as_f64().unwrap_or(0.0);
                            // qirana-lint::allow(QL002): k counts rows in one group
                            k > 0 && (nonnull.iter().sum::<f64>() - avg * k as f64).abs() > 0.0
                        }
                    }
                    AggFunc::Min => {
                        if cached_val.is_null() {
                            vals.iter().any(|v| !v.is_null())
                        } else {
                            vals.iter()
                                .any(|v| !v.is_null() && v.total_cmp(cached_val).is_lt())
                        }
                    }
                    AggFunc::Max => {
                        if cached_val.is_null() {
                            vals.iter().any(|v| !v.is_null())
                        } else {
                            vals.iter()
                                .any(|v| !v.is_null() && v.total_cmp(cached_val).is_gt())
                        }
                    }
                };
                if perturbed {
                    change = true;
                    break 'groups;
                }
            }
        }
        if change {
            bits[upid as usize] = true;
        }
    }
    Ok(())
}
