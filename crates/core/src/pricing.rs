//! The four arbitrage-free pricing functions (§2.3, Table 1).
//!
//! Each function maps the interaction between a query bundle `Q` and the
//! support set `S` to a price:
//!
//! * **weighted coverage** `pwc(Q,D) = Σ_{i: Q(Dᵢ) ≠ Q(D)} wᵢ` — monotone and
//!   subadditive, hence free of both information and bundle arbitrage;
//! * **uniform entropy gain** `pueg = P · log|C_Q(E) ∩ S| / log|S|` —
//!   information-arbitrage-free but exhibits bundle arbitrage;
//! * **Shannon entropy** over the partition of `S` induced by the query
//!   output — weakly information-arbitrage-free and bundle-arbitrage-free;
//! * **q-entropy** (Tsallis, q = 2) — same guarantees as Shannon.
//!
//! The coverage-family functions consume *disagreement bits* (cheap: the
//! optimizer of §4 can produce them without executing the query per
//! instance); the entropy-family functions consume the *partition* of the
//! support set by output fingerprint (they must observe `Q(Dᵢ)` itself,
//! Algorithm 2). All are scaled so the full-dataset bundle `Q_all` prices at
//! the seller's `P` (§2.3): `Q_all` distinguishes every support instance, so
//! the scale anchors are `Σwᵢ = P`, `log S`, and `1 − 1/S` respectively.

use qirana_sqlengine::Fingerprint;
use std::collections::HashMap;
use std::fmt;

/// Which pricing function the broker applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PricingFunction {
    /// Weighted coverage (the paper's recommended default).
    WeightedCoverage,
    /// Uniform entropy gain.
    UniformEntropyGain,
    /// Shannon entropy of the induced partition.
    ShannonEntropy,
    /// Tsallis entropy with q = 2.
    QEntropy,
}

impl PricingFunction {
    /// All four functions, for sweep harnesses.
    pub const ALL: [PricingFunction; 4] = [
        PricingFunction::WeightedCoverage,
        PricingFunction::UniformEntropyGain,
        PricingFunction::ShannonEntropy,
        PricingFunction::QEntropy,
    ];

    /// True iff the function needs the full output partition (entropy
    /// family) rather than just disagreement bits (coverage family).
    pub fn needs_partition(&self) -> bool {
        matches!(
            self,
            PricingFunction::ShannonEntropy | PricingFunction::QEntropy
        )
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            PricingFunction::WeightedCoverage => "coverage",
            PricingFunction::UniformEntropyGain => "uniform info gain",
            PricingFunction::ShannonEntropy => "shannon entropy",
            PricingFunction::QEntropy => "q-entropy",
        }
    }
}

/// Weighted coverage: sum of the weights of disagreeing instances (Eq. 1).
///
/// # Panics
/// Panics if `weights` and `disagree` lengths differ.
pub fn weighted_coverage(weights: &[f64], disagree: &[bool]) -> f64 {
    assert_eq!(weights.len(), disagree.len());
    let p: f64 = weights
        .iter()
        .zip(disagree)
        .filter(|(_, &d)| d)
        .map(|(w, _)| *w)
        .sum();
    // An empty float sum is -0.0 in Rust; prices display as +0.0.
    p + 0.0
}

/// Uniform entropy gain: `P · log|C ∩ S| / log|S|` (Eq. 2), with the
/// `|C ∩ S| = 0` limit priced at 0.
pub fn uniform_entropy_gain(total_price: f64, disagree: &[bool]) -> f64 {
    let s = disagree.len();
    let c = disagree.iter().filter(|&&d| d).count();
    if c == 0 || s <= 1 {
        return 0.0;
    }
    // qirana-lint::allow(QL002): c and s are support-set counts, < 2^53
    total_price * (c as f64).ln() / (s as f64).ln()
}

/// Normalizes weights into a probability distribution and sums them per
/// partition block.
///
/// Blocks are accumulated in first-appearance order, not `HashMap`
/// iteration order: float addition is not associative, and the per-call
/// randomized hash order made two prices of the *same* partition differ in
/// the last ulp — breaking the engine's bitwise price determinism.
fn block_probabilities(weights: &[f64], partition: &[Fingerprint]) -> Vec<f64> {
    assert_eq!(weights.len(), partition.len());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    let mut index: HashMap<Fingerprint, usize> = HashMap::new();
    let mut blocks: Vec<f64> = Vec::new();
    for (w, fp) in weights.iter().zip(partition) {
        let i = *index.entry(*fp).or_insert_with(|| {
            blocks.push(0.0);
            blocks.len() - 1
        });
        blocks[i] += w / total;
    }
    blocks
}

/// Shannon entropy price (Eq. 3), scaled so that the partition into
/// singletons (the full-dataset query) prices at `total_price`.
pub fn shannon_entropy(total_price: f64, weights: &[f64], partition: &[Fingerprint]) -> f64 {
    let s = partition.len();
    if s <= 1 {
        return 0.0;
    }
    let h: f64 = block_probabilities(weights, partition)
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum();
    // qirana-lint::allow(QL002): s is the support-set size, < 2^53
    total_price * h / (s as f64).ln() + 0.0
}

/// q-entropy (Tsallis, q = 2) price (Eq. 4), scaled so singletons price at
/// `total_price`.
pub fn q_entropy(total_price: f64, weights: &[f64], partition: &[Fingerprint]) -> f64 {
    let s = partition.len();
    if s <= 1 {
        return 0.0;
    }
    let t: f64 = block_probabilities(weights, partition)
        .iter()
        .map(|&p| p * (1.0 - p))
        .sum();
    // qirana-lint::allow(QL002): s is the support-set size, < 2^53
    total_price * t / (1.0 - 1.0 / s as f64) + 0.0
}

/// A pricing function was dispatched with the wrong kind of evidence
/// (disagreement bits for an entropy function, or a partition for a
/// coverage function) — a broker misconfiguration, not a data problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PricingError {
    /// The function that was dispatched.
    pub function: PricingFunction,
    /// True when the mismatch was coverage-style dispatch of an
    /// entropy-family function (it needs a partition); false for the
    /// reverse direction.
    pub needs_partition: bool,
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.needs_partition {
            write!(
                f,
                "{:?} needs a partition, not disagreement bits",
                self.function
            )
        } else {
            write!(
                f,
                "{:?} uses disagreement bits, not a partition",
                self.function
            )
        }
    }
}

impl std::error::Error for PricingError {}

/// Dispatches on the coverage-family functions; entropy-family functions
/// return [`PricingError`] (they need the output partition).
pub fn coverage_price(
    function: PricingFunction,
    total_price: f64,
    weights: &[f64],
    disagree: &[bool],
) -> Result<f64, PricingError> {
    match function {
        PricingFunction::WeightedCoverage => Ok(weighted_coverage(weights, disagree)),
        PricingFunction::UniformEntropyGain => Ok(uniform_entropy_gain(total_price, disagree)),
        other => Err(PricingError {
            function: other,
            needs_partition: true,
        }),
    }
}

/// Dispatches on the entropy-family functions; coverage-family functions
/// return [`PricingError`] (they consume disagreement bits).
pub fn partition_price(
    function: PricingFunction,
    total_price: f64,
    weights: &[f64],
    partition: &[Fingerprint],
) -> Result<f64, PricingError> {
    match function {
        PricingFunction::ShannonEntropy => Ok(shannon_entropy(total_price, weights, partition)),
        PricingFunction::QEntropy => Ok(q_entropy(total_price, weights, partition)),
        other => Err(PricingError {
            function: other,
            needs_partition: false,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u128) -> Fingerprint {
        Fingerprint(x)
    }

    #[test]
    fn coverage_sums_disagreeing_weights() {
        let w = [10.0, 20.0, 30.0, 40.0];
        let d = [true, false, true, false];
        assert_eq!(weighted_coverage(&w, &d), 40.0);
        assert_eq!(weighted_coverage(&w, &[false; 4]), 0.0);
        assert_eq!(weighted_coverage(&w, &[true; 4]), 100.0);
    }

    #[test]
    fn coverage_full_dataset_prices_at_total() {
        // Q_all disagrees with every neighbor; uniform weights sum to P.
        let n = 100;
        let w = vec![1.0; n];
        let d = vec![true; n];
        assert_eq!(weighted_coverage(&w, &d), n as f64);
    }

    #[test]
    fn ueg_limits() {
        assert_eq!(uniform_entropy_gain(100.0, &[false; 10]), 0.0);
        assert_eq!(
            uniform_entropy_gain(100.0, &{
                let mut v = vec![false; 10];
                v[0] = true;
                v
            }),
            0.0,
            "a single disagreement carries log 1 = 0 information"
        );
        let all = vec![true; 10];
        assert!((uniform_entropy_gain(100.0, &all) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn ueg_monotone_in_count() {
        let mk = |c: usize| {
            let mut v = vec![false; 50];
            v[..c].iter_mut().for_each(|b| *b = true);
            uniform_entropy_gain(100.0, &v)
        };
        assert!(mk(10) < mk(20));
        assert!(mk(20) < mk(50));
    }

    #[test]
    fn shannon_singleton_partition_is_full_price() {
        let n = 64;
        let w = vec![1.0; n];
        let partition: Vec<Fingerprint> = (0..n as u128).map(fp).collect();
        let p = shannon_entropy(100.0, &w, &partition);
        assert!((p - 100.0).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn shannon_uniform_block_is_zero() {
        // Every instance agrees → one block → zero entropy → zero price
        // (up to float rounding in the probability normalization).
        let w = vec![1.0; 10];
        let partition = vec![fp(7); 10];
        assert!(shannon_entropy(100.0, &w, &partition).abs() < 1e-9);
    }

    #[test]
    fn shannon_between_extremes() {
        let w = vec![1.0; 8];
        let mut partition = vec![fp(1); 8];
        partition[4..].iter_mut().for_each(|f| *f = fp(2));
        let p = shannon_entropy(100.0, &w, &partition);
        // Two equal blocks: H = ln 2, scale ln 8 → exactly 1/3 of price.
        assert!((p - 100.0 / 3.0).abs() < 1e-9, "got {p}");
    }

    #[test]
    fn q_entropy_extremes() {
        let n = 10;
        let w = vec![1.0; n];
        let singles: Vec<Fingerprint> = (0..n as u128).map(fp).collect();
        let p = q_entropy(100.0, &w, &singles);
        assert!((p - 100.0).abs() < 1e-9);
        assert!(q_entropy(100.0, &w, &vec![fp(0); n]).abs() < 1e-9);
    }

    #[test]
    fn weighted_blocks_respected() {
        // One heavy instance disagreeing dominates the entropy.
        let w = [97.0, 1.0, 1.0, 1.0];
        let mut partition = vec![fp(1); 4];
        partition[0] = fp(2);
        let heavy = shannon_entropy(100.0, &w, &partition);
        let light = shannon_entropy(100.0, &[1.0, 1.0, 1.0, 97.0], &partition);
        assert!(heavy > 0.0 && light > 0.0);
        // 0.97/0.03 split has lower entropy than 0.01/0.99? Both skewed;
        // compare against balanced split instead.
        let balanced = shannon_entropy(100.0, &[1.0; 4], &{
            let mut p = vec![fp(1); 4];
            p[0] = fp(2);
            p[1] = fp(2);
            p
        });
        assert!(balanced > heavy);
    }

    #[test]
    fn needs_partition_classification() {
        assert!(!PricingFunction::WeightedCoverage.needs_partition());
        assert!(!PricingFunction::UniformEntropyGain.needs_partition());
        assert!(PricingFunction::ShannonEntropy.needs_partition());
        assert!(PricingFunction::QEntropy.needs_partition());
    }

    #[test]
    fn coverage_dispatch_rejects_entropy() {
        let err =
            coverage_price(PricingFunction::ShannonEntropy, 100.0, &[1.0], &[true]).unwrap_err();
        assert!(err.needs_partition);
        assert!(err.to_string().contains("needs a partition"));
    }

    #[test]
    fn partition_dispatch_rejects_coverage() {
        let err = partition_price(PricingFunction::WeightedCoverage, 100.0, &[1.0], &[fp(1)])
            .unwrap_err();
        assert!(!err.needs_partition);
        assert!(err.to_string().contains("disagreement bits"));
    }

    #[test]
    fn correct_dispatch_still_prices() {
        let p = coverage_price(
            PricingFunction::WeightedCoverage,
            100.0,
            &[1.0, 2.0],
            &[true, true],
        )
        .unwrap();
        assert_eq!(p, 3.0);
        let p = partition_price(
            PricingFunction::ShannonEntropy,
            100.0,
            &[1.0, 1.0],
            &[fp(1), fp(2)],
        )
        .unwrap();
        assert!((p - 100.0).abs() < 1e-9);
    }

    #[test]
    fn subadditivity_of_coverage_on_bundles() {
        // disagree(Q1∥Q2) = disagree(Q1) OR disagree(Q2) — coverage of the
        // union is ≤ sum of coverages (no bundle arbitrage).
        let w = [5.0, 10.0, 15.0, 20.0];
        let d1 = [true, false, true, false];
        let d2 = [false, false, true, true];
        let both: Vec<bool> = d1.iter().zip(&d2).map(|(a, b)| a | b).collect();
        let p1 = weighted_coverage(&w, &d1);
        let p2 = weighted_coverage(&w, &d2);
        let pb = weighted_coverage(&w, &both);
        assert!(pb <= p1 + p2);
        assert!(
            pb >= p1.max(p2),
            "monotone: bundle reveals at least as much"
        );
    }
}
