//! # Deterministic observability: spans, metrics, exporters.
//!
//! The pricing pipeline is instrumented with **typed stage spans** (where
//! does a quote's time go: prepare → support generation → disagreement
//! evaluation → solve → broker commit → ledger fsync) and a **metrics
//! registry** (counters, gauges, log₂-bucketed latency histograms). Both
//! hang off a single [`TelemetrySink`] shared through the pipeline as a
//! cheap-clone [`Telemetry`] handle.
//!
//! Three design rules govern this module:
//!
//! 1. **No ambient clock** (QL004). Time comes from an injectable
//!    [`Clock`]; production uses [`MonotonicClock`] (the one sanctioned
//!    `Instant::now` site outside the execution-budget meter), tests use
//!    the deterministic [`TestClock`], so exporter output is golden-testable
//!    byte for byte.
//! 2. **Near-zero overhead when disabled.** A disabled [`Telemetry`] is
//!    `None` inside; every hook is one branch on that option and no
//!    allocation, lock, or clock read happens. Prices are bitwise-identical
//!    with telemetry on or off — enforced by differential proptests.
//! 3. **Deterministic export.** All registries are `BTreeMap`s (QL001), so
//!    Prometheus text, JSON snapshots, and collapsed stacks are stable
//!    across runs given the same events.
//!
//! ## Exporters
//!
//! * [`TelemetrySink::prometheus_text`] — Prometheus exposition format.
//! * [`TelemetrySink::metrics_json`] — JSON snapshot of the registry.
//! * [`TelemetrySink::spans_json`] — the span tree as a JSON array.
//! * [`TelemetrySink::collapsed_stacks`] — flamegraph-compatible collapsed
//!   stack lines (`Prepare;Disagreement 1234`), weights in nanoseconds of
//!   self time.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clocks
// ---------------------------------------------------------------------------

/// Injectable time source. The only way telemetry reads time.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Must be monotone
    /// non-decreasing.
    fn now_ns(&self) -> u64;
}

/// Production clock: nanoseconds since sink construction.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock {
            // qirana-lint::allow(QL004): MonotonicClock IS the sanctioned
            origin: Instant::now(), // wall-time source for telemetry spans
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic test clock: every `now_ns` call advances by a fixed step,
/// so span durations depend only on the *number* of clock reads — stable
/// input for golden exporter tests.
pub struct TestClock {
    now: AtomicU64,
    step: u64,
}

impl TestClock {
    /// A clock starting at 0 that advances `step_ns` per read.
    pub fn stepping(step_ns: u64) -> Self {
        TestClock {
            now: AtomicU64::new(0),
            step: step_ns,
        }
    }

    /// Manually advance the clock (useful with `stepping(0)`).
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// The typed stages of the pricing pipeline. Every span names one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// SQL parse + normal-form analysis.
    Prepare,
    /// Support-set generation (neighborhoods or uniform worlds).
    SupportGen,
    /// Disagreement evaluation (coverage family) or partition
    /// fingerprinting (entropy family); `detail` carries the family.
    Disagreement,
    /// Delta-state construction: base execution + per-operator
    /// intermediate state for the incremental evaluator.
    DeltaBuild,
    /// Per-neighbor delta probes over a built delta state; `detail`
    /// carries the family.
    DeltaProbe,
    /// Weight assignment / entropy-maximization solve.
    Solve,
    /// Pricing-cache probe.
    CacheLookup,
    /// Broker-side commit of a purchase/update to buyer accounts.
    BrokerCommit,
    /// Ledger event append (serialization + write).
    LedgerAppend,
    /// Ledger fsync.
    LedgerFsync,
    /// Full market recovery from a ledger directory.
    Recovery,
    /// Replay + bitwise re-verification of one logged event.
    Replay,
    /// One HTTP request handled by the pricing service, from parsed
    /// request line to flushed response; `detail` carries the route.
    ServerRequest,
}

impl Stage {
    /// Stable lower-snake name used in metric keys and exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Prepare => "prepare",
            Stage::SupportGen => "support_gen",
            Stage::Disagreement => "disagreement",
            Stage::DeltaBuild => "delta_build",
            Stage::DeltaProbe => "delta_probe",
            Stage::Solve => "solve",
            Stage::CacheLookup => "cache_lookup",
            Stage::BrokerCommit => "broker_commit",
            Stage::LedgerAppend => "ledger_append",
            Stage::LedgerFsync => "ledger_fsync",
            Stage::Recovery => "recovery",
            Stage::Replay => "replay",
            Stage::ServerRequest => "server_request",
        }
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of log₂ buckets: bucket 0 holds exactly the value 0; bucket
/// `i ≥ 1` holds values with bit length `i`, i.e. `[2^(i-1), 2^i - 1]`;
/// bucket 64 therefore ends at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Index of the log₂ bucket for `v`. `0 → 0`, `1 → 1`, `2..=3 → 2`,
/// `u64::MAX → 64`.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`le` label in Prometheus text).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-shape log₂ histogram of `u64` observations.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    /// Sum of observations; u128 so `u64::MAX` observations cannot wrap.
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Per-bucket counts (not cumulative).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Index of the highest non-empty bucket, if any observation exists.
    fn max_bucket(&self) -> Option<usize> {
        (0..HISTOGRAM_BUCKETS).rev().find(|&i| self.buckets[i] > 0)
    }
}

// ---------------------------------------------------------------------------
// Span records
// ---------------------------------------------------------------------------

/// One finished (or still-open) span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub stage: Stage,
    /// Free-form qualifier — pricing family, neighbor-chunk id, event kind.
    pub detail: String,
    /// Index of the parent span in the sink's span table.
    pub parent: Option<usize>,
    pub start_ns: u64,
    /// `None` while the span is open.
    pub end_ns: Option<u64>,
    /// Attached counts (rows scanned, neighbors evaluated, …).
    pub counts: BTreeMap<&'static str, u64>,
}

impl SpanRecord {
    fn duration_ns(&self) -> u64 {
        self.end_ns
            .unwrap_or(self.start_ns)
            .saturating_sub(self.start_ns)
    }

    /// `stage` or `stage:detail` — the frame name used in collapsed stacks.
    fn frame(&self) -> String {
        if self.detail.is_empty() {
            self.stage.name().to_string()
        } else {
            format!("{}:{}", self.stage.name(), self.detail)
        }
    }
}

#[derive(Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    /// Indices of currently-open spans, innermost last. Spans are opened and
    /// closed on the orchestrating thread only; worker threads report via
    /// counters, never spans.
    stack: Vec<usize>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

// ---------------------------------------------------------------------------
// Sink + handle
// ---------------------------------------------------------------------------

/// The shared collection point for spans and metrics.
pub struct TelemetrySink {
    clock: Box<dyn Clock>,
    trace: Mutex<TraceState>,
    registry: Mutex<Registry>,
}

/// Poison-tolerant lock: telemetry must never panic the pricing pipeline,
/// so a poisoned mutex (a panicking thread mid-record) degrades to using
/// whatever state was left behind.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl TelemetrySink {
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        TelemetrySink {
            clock,
            trace: Mutex::new(TraceState::default()),
            registry: Mutex::new(Registry::default()),
        }
    }

    // -- recording ---------------------------------------------------------

    fn open_span(&self, stage: Stage, detail: String) -> usize {
        let now = self.clock.now_ns();
        let mut t = lock(&self.trace);
        let parent = t.stack.last().copied();
        let idx = t.spans.len();
        t.spans.push(SpanRecord {
            stage,
            detail,
            parent,
            start_ns: now,
            end_ns: None,
            counts: BTreeMap::new(),
        });
        t.stack.push(idx);
        idx
    }

    fn close_span(&self, idx: usize) {
        let now = self.clock.now_ns();
        let mut t = lock(&self.trace);
        if let Some(pos) = t.stack.iter().rposition(|&i| i == idx) {
            t.stack.remove(pos);
        }
        let (dur, stage) = if let Some(span) = t.spans.get_mut(idx) {
            span.end_ns = Some(now);
            (span.duration_ns(), span.stage)
        } else {
            return;
        };
        drop(t);
        let mut r = lock(&self.registry);
        r.histograms
            .entry(format!("stage_{}_ns", stage.name()))
            .or_default()
            .observe(dur);
    }

    fn span_count(&self, idx: usize, key: &'static str, delta: u64) {
        let mut t = lock(&self.trace);
        if let Some(span) = t.spans.get_mut(idx) {
            *span.counts.entry(key).or_insert(0) += delta;
        }
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut r = lock(&self.registry);
        if let Some(c) = r.counters.get_mut(name) {
            *c += delta;
        } else {
            r.counters.insert(name.to_string(), delta);
        }
    }

    pub fn gauge_set(&self, name: &str, value: u64) {
        let mut r = lock(&self.registry);
        r.gauges.insert(name.to_string(), value);
    }

    pub fn observe(&self, name: &str, value: u64) {
        let mut r = lock(&self.registry);
        if let Some(h) = r.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            r.histograms.insert(name.to_string(), h);
        }
    }

    /// Reads the clock — for callers measuring an interval they will report
    /// via [`TelemetrySink::observe`] (e.g. ledger fsync latency).
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    // -- snapshot accessors (tests, differential assertions) ---------------

    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.registry)
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<u64> {
        lock(&self.registry).gauges.get(name).copied()
    }

    pub fn histogram_count(&self, name: &str) -> u64 {
        lock(&self.registry)
            .histograms
            .get(name)
            .map(Histogram::count)
            .unwrap_or(0)
    }

    /// All counters, sorted by name (deterministic).
    pub fn counters(&self) -> Vec<(String, u64)> {
        lock(&self.registry)
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Finished + open spans, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock(&self.trace).spans.clone()
    }

    // -- exporters ---------------------------------------------------------

    /// Prometheus exposition-format dump of the registry. All metric names
    /// are prefixed `qirana_`; histograms emit cumulative `_bucket{le=…}`
    /// lines up to the highest non-empty bucket plus `+Inf`.
    pub fn prometheus_text(&self) -> String {
        let r = lock(&self.registry);
        let mut out = String::new();
        for (name, v) in &r.counters {
            let _ = writeln!(out, "# TYPE qirana_{name} counter");
            let _ = writeln!(out, "qirana_{name} {v}");
        }
        for (name, v) in &r.gauges {
            let _ = writeln!(out, "# TYPE qirana_{name} gauge");
            let _ = writeln!(out, "qirana_{name} {v}");
        }
        for (name, h) in &r.histograms {
            let _ = writeln!(out, "# TYPE qirana_{name} histogram");
            let mut cumulative = 0u64;
            let top = h.max_bucket().unwrap_or(0);
            for i in 0..=top {
                cumulative += h.buckets()[i];
                let _ = writeln!(
                    out,
                    "qirana_{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "qirana_{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "qirana_{name}_sum {}", h.sum());
            let _ = writeln!(out, "qirana_{name}_count {}", h.count());
        }
        out
    }

    /// JSON snapshot of the registry:
    /// `{"counters":{…},"gauges":{…},"histograms":{name:{count,sum,buckets:[[le,count],…]}}}`.
    pub fn metrics_json(&self) -> String {
        let r = lock(&self.registry);
        let mut out = String::from("{\"counters\":{");
        push_map(&mut out, &r.counters);
        out.push_str("},\"gauges\":{");
        push_map(&mut out, &r.gauges);
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &r.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json_string(name),
                h.count(),
                h.sum()
            );
            let top = h.max_bucket().unwrap_or(0);
            for i in 0..=top {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{}]", bucket_upper_bound(i), h.buckets()[i]);
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// The span table as a JSON array (open order; `parent` is an index).
    pub fn spans_json(&self) -> String {
        let t = lock(&self.trace);
        let mut out = String::from("[");
        for (i, s) in t.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"detail\":{},\"parent\":{},\"start_ns\":{},\"end_ns\":{},\"counts\":{{",
                json_string(s.stage.name()),
                json_string(&s.detail),
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                s.start_ns,
                s.end_ns.map_or("null".to_string(), |e| e.to_string()),
            );
            let mut first = true;
            for (k, v) in &s.counts {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{}:{v}", json_string(k));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }

    /// Collapsed-stack (flamegraph) text: one line per distinct stack path,
    /// `frame;frame;frame weight`, weight = summed **self** time in ns
    /// (children's time excluded), lines sorted lexicographically.
    pub fn collapsed_stacks(&self) -> String {
        let t = lock(&self.trace);
        // Self time = duration − direct children's durations.
        let mut child_time = vec![0u64; t.spans.len()];
        for s in &t.spans {
            if let Some(p) = s.parent {
                child_time[p] = child_time[p].saturating_add(s.duration_ns());
            }
        }
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for (i, s) in t.spans.iter().enumerate() {
            let self_ns = s.duration_ns().saturating_sub(child_time[i]);
            if self_ns == 0 {
                continue;
            }
            let mut frames = vec![s.frame()];
            let mut cur = s.parent;
            while let Some(p) = cur {
                frames.push(t.spans[p].frame());
                cur = t.spans[p].parent;
            }
            frames.reverse();
            *agg.entry(frames.join(";")).or_insert(0) += self_ns;
        }
        let mut out = String::new();
        for (stack, ns) in agg {
            let _ = writeln!(out, "{stack} {ns}");
        }
        out
    }
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = lock(&self.trace);
        let r = lock(&self.registry);
        f.debug_struct("TelemetrySink")
            .field("spans", &t.spans.len())
            .field("counters", &r.counters.len())
            .field("gauges", &r.gauges.len())
            .field("histograms", &r.histograms.len())
            .finish()
    }
}

fn push_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}:{v}", json_string(k));
    }
}

/// Minimal JSON string escaping (metric names and details are ASCII-ish,
/// but stay correct for arbitrary input).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The cheap-clone handle threaded through `EngineOptions` and broker
/// config. `Telemetry::disabled()` (the default) is a `None` inside: every
/// hook is a single branch, no locks, no clock reads.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<TelemetrySink>>,
}

impl Telemetry {
    /// The null handle: all hooks are no-ops.
    pub fn disabled() -> Self {
        Telemetry { sink: None }
    }

    /// An enabled handle on a fresh sink with the production clock.
    pub fn enabled() -> Self {
        Telemetry {
            sink: Some(Arc::new(TelemetrySink::with_clock(Box::new(
                MonotonicClock::new(),
            )))),
        }
    }

    /// An enabled handle with an injected clock (deterministic tests).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Telemetry {
            sink: Some(Arc::new(TelemetrySink::with_clock(clock))),
        }
    }

    /// Wraps an existing sink (share one sink across brokers/engines).
    pub fn from_sink(sink: Arc<TelemetrySink>) -> Self {
        Telemetry { sink: Some(sink) }
    }

    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The underlying sink, if enabled (exporters live there).
    pub fn sink(&self) -> Option<&Arc<TelemetrySink>> {
        self.sink.as_ref()
    }

    /// Opens a stage span; the returned guard closes it on drop and feeds
    /// the stage's duration histogram. Returns an inert guard when disabled.
    pub fn span(&self, stage: Stage) -> SpanGuard {
        self.span_with(stage, String::new())
    }

    /// [`Telemetry::span`] with a qualifier (family name, chunk id, …).
    /// `detail` is only materialized by callers on the enabled path; pass
    /// `String::new()` when there is nothing to say.
    pub fn span_with(&self, stage: Stage, detail: String) -> SpanGuard {
        match &self.sink {
            None => SpanGuard { inner: None },
            Some(sink) => {
                let idx = sink.open_span(stage, detail);
                SpanGuard {
                    inner: Some((Arc::clone(sink), idx)),
                }
            }
        }
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(sink) = &self.sink {
            sink.counter_add(name, delta);
        }
    }

    pub fn gauge_set(&self, name: &str, value: u64) {
        if let Some(sink) = &self.sink {
            sink.gauge_set(name, value);
        }
    }

    pub fn observe(&self, name: &str, value: u64) {
        if let Some(sink) = &self.sink {
            sink.observe(name, value);
        }
    }

    /// Clock read for interval measurements; `None` when disabled so
    /// callers skip the math entirely.
    pub fn now_ns(&self) -> Option<u64> {
        self.sink.as_ref().map(|s| s.now_ns())
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

/// RAII span guard: closes its span (recording end time and the stage
/// duration histogram) on drop. Inert — a single `None` — when telemetry
/// is disabled.
pub struct SpanGuard {
    inner: Option<(Arc<TelemetrySink>, usize)>,
}

impl SpanGuard {
    /// Attaches/bumps a named count on the span (rows scanned, neighbors
    /// evaluated, …). No-op when inert.
    pub fn count(&self, key: &'static str, delta: u64) {
        if let Some((sink, idx)) = &self.inner {
            sink.span_count(*idx, key, delta);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((sink, idx)) = self.inner.take() {
            sink.close_span(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- histogram bucketing edge cases ------------------------------------

    #[test]
    fn bucket_zero_holds_exactly_zero() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_upper_bound(0), 0);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket i covers [2^(i-1), 2^i - 1].
        for i in 1..64usize {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
            assert_eq!(bucket_upper_bound(i), hi);
        }
    }

    #[test]
    fn bucket_max_holds_u64_max() {
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.buckets()[64], 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
    }

    #[test]
    fn histogram_sum_does_not_wrap() {
        let mut h = Histogram::default();
        for _ in 0..4 {
            h.observe(u64::MAX);
        }
        assert_eq!(h.sum(), 4 * u128::from(u64::MAX));
    }

    #[test]
    fn adjacent_boundary_values_split_buckets() {
        // 2^k - 1 and 2^k land in different buckets for every k.
        for k in 1..64usize {
            let below = (1u64 << k) - 1;
            let at = 1u64 << k;
            assert_eq!(bucket_index(below) + 1, bucket_index(at), "k = {k}");
        }
    }

    // -- clocks ------------------------------------------------------------

    #[test]
    fn test_clock_is_deterministic() {
        let c = TestClock::stepping(10);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 10);
        c.advance(100);
        assert_eq!(c.now_ns(), 120);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    // -- spans -------------------------------------------------------------

    #[test]
    fn spans_nest_and_record_durations() {
        let t = Telemetry::with_clock(Box::new(TestClock::stepping(100)));
        {
            let outer = t.span(Stage::Prepare);
            outer.count("rows", 7);
            {
                let inner = t.span_with(Stage::Disagreement, "coverage".into());
                inner.count("neighbors", 42);
            }
        }
        let sink = t.sink().map(Arc::clone);
        let sink = match sink {
            Some(s) => s,
            None => unreachable!("enabled telemetry has a sink"),
        };
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Prepare);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].stage, Stage::Disagreement);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].detail, "coverage");
        assert_eq!(spans[0].counts.get("rows"), Some(&7));
        assert_eq!(spans[1].counts.get("neighbors"), Some(&42));
        // TestClock(100): open@0, open@100, close@200, close@300.
        assert_eq!(spans[1].start_ns, 100);
        assert_eq!(spans[1].end_ns, Some(200));
        assert_eq!(spans[0].end_ns, Some(300));
        assert_eq!(sink.histogram_count("stage_prepare_ns"), 1);
        assert_eq!(sink.histogram_count("stage_disagreement_ns"), 1);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        {
            let g = t.span(Stage::Solve);
            g.count("rows", 5);
        }
        t.counter_add("x", 1);
        t.gauge_set("y", 2);
        t.observe("z", 3);
        assert!(t.now_ns().is_none());
        assert!(t.sink().is_none());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let t = Telemetry::with_clock(Box::new(TestClock::stepping(1)));
        t.counter_add("hits", 2);
        t.counter_add("hits", 3);
        t.gauge_set("depth", 9);
        t.gauge_set("depth", 4);
        let sink = match t.sink() {
            Some(s) => Arc::clone(s),
            None => unreachable!("enabled telemetry has a sink"),
        };
        assert_eq!(sink.counter("hits"), 5);
        assert_eq!(sink.gauge("depth"), Some(4));
    }

    #[test]
    fn collapsed_stacks_use_self_time() {
        let t = Telemetry::with_clock(Box::new(TestClock::stepping(100)));
        {
            let _outer = t.span(Stage::Prepare);
            let _inner = t.span_with(Stage::Disagreement, "coverage".into());
        }
        let sink = match t.sink() {
            Some(s) => Arc::clone(s),
            None => unreachable!("enabled telemetry has a sink"),
        };
        // outer: open@0 close@300 → 300 total; inner: open@100 close@200 →
        // 100. Outer self time = 200.
        let collapsed = sink.collapsed_stacks();
        assert_eq!(
            collapsed,
            "prepare 200\nprepare;disagreement:coverage 100\n"
        );
    }

    #[test]
    fn prometheus_text_is_deterministic_and_cumulative() {
        let t = Telemetry::with_clock(Box::new(TestClock::stepping(0)));
        t.counter_add("cache_hits", 3);
        t.gauge_set("support_size", 200);
        t.observe("append_ns", 0);
        t.observe("append_ns", 1);
        t.observe("append_ns", 3);
        let sink = match t.sink() {
            Some(s) => Arc::clone(s),
            None => unreachable!("enabled telemetry has a sink"),
        };
        let text = sink.prometheus_text();
        let expected = "\
# TYPE qirana_cache_hits counter
qirana_cache_hits 3
# TYPE qirana_support_size gauge
qirana_support_size 200
# TYPE qirana_append_ns histogram
qirana_append_ns_bucket{le=\"0\"} 1
qirana_append_ns_bucket{le=\"1\"} 2
qirana_append_ns_bucket{le=\"3\"} 3
qirana_append_ns_bucket{le=\"+Inf\"} 3
qirana_append_ns_sum 4
qirana_append_ns_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn metrics_json_shape() {
        let t = Telemetry::with_clock(Box::new(TestClock::stepping(0)));
        t.counter_add("c", 1);
        t.gauge_set("g", 2);
        t.observe("h", 4);
        let sink = match t.sink() {
            Some(s) => Arc::clone(s),
            None => unreachable!("enabled telemetry has a sink"),
        };
        assert_eq!(
            sink.metrics_json(),
            "{\"counters\":{\"c\":1},\"gauges\":{\"g\":2},\
             \"histograms\":{\"h\":{\"count\":1,\"sum\":4,\
             \"buckets\":[[0,0],[1,0],[3,0],[7,1]]}}}"
        );
    }

    #[test]
    fn spans_json_shape() {
        let t = Telemetry::with_clock(Box::new(TestClock::stepping(50)));
        {
            let g = t.span_with(Stage::Solve, "shannon".into());
            g.count("vars", 3);
        }
        let sink = match t.sink() {
            Some(s) => Arc::clone(s),
            None => unreachable!("enabled telemetry has a sink"),
        };
        assert_eq!(
            sink.spans_json(),
            "[{\"stage\":\"solve\",\"detail\":\"shannon\",\"parent\":null,\
             \"start_ns\":0,\"end_ns\":50,\"counts\":{\"vars\":3}}]"
        );
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
