//! Shared per-query pricing-artifact memo (incremental history-aware
//! pricing).
//!
//! History-aware pricing (§2.2 / §3.5) used to re-derive the *entire*
//! accumulated bundle's evidence on every purchase: every past query was
//! re-executed over every support neighbor, an O(H·S) engine sweep per
//! `buy` and O(H²·S) per session. But per-query information content is
//! fixed once computed — the disagreement bitmap and the per-instance
//! output fingerprints depend only on the query plan, the support set, and
//! the stored database, never on the buyer — so the broker memoizes them
//! here and a purchase only evaluates the one *new* query (O(S)).
//!
//! Two artifact families are cached, mirroring the engine's two pricing
//! primitives:
//!
//! * **disagreement bitmaps** (coverage family): the full, unmasked
//!   `Q(Dᵢ) ≠ Q(D)` bit per support instance. Per-buyer charging masks the
//!   shared bitmap with the account's charged bits *after* lookup, so one
//!   entry serves every buyer.
//! * **partition blocks** (entropy family): the query's own output
//!   fingerprint per support instance. A bundle's partition is recovered by
//!   folding the members' cached vectors per instance with the same
//!   order-sensitive combiner the uncached path uses — bitwise-identical
//!   prices by construction.
//!
//! **Keying and invalidation.** Entries are keyed by the query's structural
//! plan fingerprint ([`crate::normal_form::Prepared::plan_fp`]) *plus* a
//! database generation counter. The broker bumps the generation on every
//! committed update to the stored database ([`crate::Qirana::commit_update`]),
//! which atomically invalidates every memoized artifact: a stale entry can
//! never satisfy a lookup because its recorded generation no longer matches.
//! (The bump also purges eagerly, so stale artifacts do not occupy
//! capacity.)
//!
//! **Bounding.** The cache holds at most [`CacheConfig::capacity`]
//! artifacts; inserting beyond that evicts the least-recently-used entry.
//! Recency is a monotone touch tick, so eviction order is deterministic.
//! Hit/miss/eviction/invalidation counters are exposed via [`CacheStats`]
//! and surfaced on every [`crate::Purchase`].

use crate::delta::DeltaState;
use qirana_sqlengine::Fingerprint;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Pricing-cache knobs, threaded through [`crate::EngineOptions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch. Off, the broker prices exactly as the pre-cache
    /// engine did (the differential suite holds the two paths bitwise
    /// equal, so this is a performance switch, not a semantic one).
    pub enabled: bool,
    /// Maximum number of memoized artifacts (LRU-evicted beyond this).
    /// Each artifact is O(S): one bit — or one 128-bit fingerprint — per
    /// support instance. A capacity of 0 disables storage entirely.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            capacity: 1024,
        }
    }
}

impl CacheConfig {
    /// Caching off (the pre-cache engine behavior).
    pub fn disabled() -> Self {
        CacheConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Caching on with an explicit LRU capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig {
            enabled: true,
            capacity,
        }
    }
}

/// Cumulative cache counters (monotone over a broker's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// Entries dropped because the database generation advanced.
    pub invalidations: u64,
}

/// The two artifact families, part of the cache key: a query's bitmap and
/// its partition blocks are distinct entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    /// Coverage family: full disagreement bitmap.
    Bits,
    /// Entropy family: per-instance output fingerprints.
    Blocks,
    /// Incremental evaluator state ([`crate::delta`]): base execution plus
    /// per-operator intermediates, reused across both families.
    Delta,
}

/// A memoized artifact. `Arc`-shared: lookups hand out cheap clones, so a
/// hit never copies the O(S) payload and concurrent consumers (the
/// parallel executor's merge results, multiple buyers' charges) alias one
/// allocation.
#[derive(Debug, Clone)]
enum Artifact {
    Bits(Arc<Vec<bool>>),
    Blocks(Arc<Vec<Fingerprint>>),
    Delta(Arc<DeltaState>),
}

#[derive(Debug)]
struct Entry {
    artifact: Artifact,
    /// Database generation this artifact was computed under.
    generation: u64,
    /// Monotone touch tick (unique per touch) — the LRU recency order.
    last_used: u64,
}

/// The broker-owned pricing-artifact memo. See the module docs for the
/// keying, sharing, and invalidation contract.
#[derive(Debug)]
pub struct PricingCache {
    capacity: usize,
    generation: u64,
    tick: u64,
    // BTreeMap, not HashMap: the LRU eviction scan below iterates the map,
    // and iteration order must be deterministic (qirana-lint QL001).
    entries: BTreeMap<(u128, Kind), Entry>,
    stats: CacheStats,
}

impl PricingCache {
    /// An empty cache bounded to `capacity` artifacts.
    pub fn new(capacity: usize) -> Self {
        PricingCache {
            capacity,
            generation: 0,
            tick: 0,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The current database generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the database generation, invalidating (and purging) every
    /// memoized artifact. Called by the broker when an update is committed
    /// to the stored database.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Re-anchors the generation counter after crash recovery so cache
    /// keys minted before the crash can never collide with post-recovery
    /// entries. Purges everything, like [`Self::bump_generation`].
    pub fn restore_generation(&mut self, generation: u64) {
        self.generation = generation;
        self.stats.invalidations += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Artifacts currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no artifact is held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read-only lookup of a query's full disagreement bitmap: honors the
    /// generation check but moves **nothing** — no recency tick, no
    /// hit/miss counters, no purge of a stale entry. The broker's `&self`
    /// quote path peeks so that an abandoned or rejected quote leaves the
    /// shared eviction order bit-identical for every other buyer; only
    /// committed work ([`crate::Qirana::buy`]) touches recency.
    pub fn peek_bits(&self, plan_fp: Fingerprint) -> Option<Arc<Vec<bool>>> {
        match self.peek(plan_fp, Kind::Bits) {
            Some(Artifact::Bits(b)) => Some(b),
            _ => None,
        }
    }

    /// Read-only lookup of a query's partition fingerprints (see
    /// [`Self::peek_bits`] for the no-mutation contract).
    pub fn peek_blocks(&self, plan_fp: Fingerprint) -> Option<Arc<Vec<Fingerprint>>> {
        match self.peek(plan_fp, Kind::Blocks) {
            Some(Artifact::Blocks(b)) => Some(b),
            _ => None,
        }
    }

    fn peek(&self, plan_fp: Fingerprint, kind: Kind) -> Option<Artifact> {
        match self.entries.get(&(plan_fp.0, kind)) {
            Some(e) if e.generation == self.generation => Some(e.artifact.clone()),
            _ => None,
        }
    }

    /// The current touch tick (monotone; advances on every counted lookup
    /// and insert). Exposed so tests can pin that read-only paths leave
    /// recency untouched.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// A stable image of the eviction-relevant state: one
    /// `(plan fingerprint, kind discriminant, last-used tick)` triple per
    /// entry, in key order. Two caches with equal snapshots (and equal
    /// [`Self::tick`]) evict identically forever after, so the regression
    /// suite compares snapshots around operations that must not perturb
    /// recency.
    pub fn recency_snapshot(&self) -> Vec<(u128, u8, u64)> {
        self.entries
            .iter()
            .map(|(&(fp, kind), e)| (fp, kind as u8, e.last_used))
            .collect()
    }

    /// Looks up a query's full disagreement bitmap.
    pub fn get_bits(&mut self, plan_fp: Fingerprint) -> Option<Arc<Vec<bool>>> {
        match self.get(plan_fp, Kind::Bits) {
            Some(Artifact::Bits(b)) => Some(b),
            _ => None,
        }
    }

    /// Memoizes a query's full disagreement bitmap under the current
    /// generation.
    pub fn insert_bits(&mut self, plan_fp: Fingerprint, bits: Arc<Vec<bool>>) {
        self.insert(plan_fp, Kind::Bits, Artifact::Bits(bits));
    }

    /// Looks up a query's per-instance partition fingerprints.
    pub fn get_blocks(&mut self, plan_fp: Fingerprint) -> Option<Arc<Vec<Fingerprint>>> {
        match self.get(plan_fp, Kind::Blocks) {
            Some(Artifact::Blocks(b)) => Some(b),
            _ => None,
        }
    }

    /// Memoizes a query's per-instance partition fingerprints under the
    /// current generation.
    pub fn insert_blocks(&mut self, plan_fp: Fingerprint, blocks: Arc<Vec<Fingerprint>>) {
        self.insert(plan_fp, Kind::Blocks, Artifact::Blocks(blocks));
    }

    /// Looks up a query's memoized delta-evaluator state.
    ///
    /// Delta state is an *accelerator* artifact, not a pricing result:
    /// its presence or absence never changes a price, only how fast the
    /// per-neighbor evidence is produced. Lookups therefore bypass the
    /// hit/miss counters (which report pricing-artifact reuse to buyers on
    /// every [`crate::Purchase`]) while still honoring the generation
    /// check and refreshing LRU recency.
    pub fn get_delta(&mut self, plan_fp: Fingerprint) -> Option<Arc<DeltaState>> {
        match self.get_quiet(plan_fp, Kind::Delta) {
            Some(Artifact::Delta(d)) => Some(d),
            _ => None,
        }
    }

    /// Memoizes a query's delta-evaluator state under the current
    /// generation (counter-quiet, like [`Self::get_delta`]).
    pub fn insert_delta(&mut self, plan_fp: Fingerprint, state: Arc<DeltaState>) {
        self.insert(plan_fp, Kind::Delta, Artifact::Delta(state));
    }

    fn get(&mut self, plan_fp: Fingerprint, kind: Kind) -> Option<Artifact> {
        let key = (plan_fp.0, kind);
        match self.entries.get_mut(&key) {
            Some(e) if e.generation == self.generation => {
                self.tick += 1;
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(e.artifact.clone())
            }
            Some(_) => {
                // Stale generation (defense in depth: bump purges eagerly,
                // but a stale entry must never satisfy a lookup).
                self.entries.remove(&key);
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// [`Self::get`] without the hit/miss accounting: generation staleness
    /// still invalidates, and a live entry still refreshes its LRU tick.
    fn get_quiet(&mut self, plan_fp: Fingerprint, kind: Kind) -> Option<Artifact> {
        let key = (plan_fp.0, kind);
        match self.entries.get_mut(&key) {
            Some(e) if e.generation == self.generation => {
                self.tick += 1;
                e.last_used = self.tick;
                Some(e.artifact.clone())
            }
            Some(_) => {
                self.entries.remove(&key);
                self.stats.invalidations += 1;
                None
            }
            None => None,
        }
    }

    fn insert(&mut self, plan_fp: Fingerprint, kind: Kind, artifact: Artifact) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        self.entries.insert(
            (plan_fp.0, kind),
            Entry {
                artifact,
                generation: self.generation,
                last_used: self.tick,
            },
        );
        while self.entries.len() > self.capacity {
            // Ticks are unique, so the minimum is unambiguous and the
            // eviction order deterministic.
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
            else {
                break;
            };
            self.entries.remove(&victim);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u128) -> Fingerprint {
        Fingerprint(x)
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = PricingCache::new(8);
        assert!(c.get_bits(fp(1)).is_none());
        c.insert_bits(fp(1), Arc::new(vec![true, false]));
        let got = c.get_bits(fp(1)).unwrap();
        assert_eq!(*got, vec![true, false]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn kinds_do_not_collide() {
        let mut c = PricingCache::new(8);
        c.insert_bits(fp(1), Arc::new(vec![true]));
        assert!(c.get_blocks(fp(1)).is_none(), "bits must not answer blocks");
        c.insert_blocks(fp(1), Arc::new(vec![fp(9)]));
        assert_eq!(c.len(), 2);
        assert_eq!(*c.get_blocks(fp(1)).unwrap(), vec![fp(9)]);
        assert_eq!(*c.get_bits(fp(1)).unwrap(), vec![true]);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut c = PricingCache::new(2);
        c.insert_bits(fp(1), Arc::new(vec![true]));
        c.insert_bits(fp(2), Arc::new(vec![false]));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get_bits(fp(1)).is_some());
        c.insert_bits(fp(3), Arc::new(vec![true]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get_bits(fp(1)).is_some(), "recently touched survives");
        assert!(c.get_bits(fp(2)).is_none(), "LRU entry evicted");
        assert!(c.get_bits(fp(3)).is_some());
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let mut c = PricingCache::new(8);
        c.insert_bits(fp(1), Arc::new(vec![true]));
        c.insert_blocks(fp(2), Arc::new(vec![fp(5)]));
        c.bump_generation();
        assert_eq!(c.generation(), 1);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 2);
        assert!(c.get_bits(fp(1)).is_none());
        // Re-inserted artifacts live under the new generation.
        c.insert_bits(fp(1), Arc::new(vec![false]));
        assert_eq!(*c.get_bits(fp(1)).unwrap(), vec![false]);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = PricingCache::new(0);
        c.insert_bits(fp(1), Arc::new(vec![true]));
        assert!(c.is_empty());
        assert!(c.get_bits(fp(1)).is_none());
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn delta_entries_are_counter_quiet_but_generation_checked() {
        let mut c = PricingCache::new(4);
        assert!(c.get_delta(fp(1)).is_none());
        c.insert_delta(fp(1), Arc::new(DeltaState::Ineligible));
        assert!(c.get_delta(fp(1)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "delta lookups are quiet");
        c.bump_generation();
        assert!(c.get_delta(fp(1)).is_none(), "stale generation invalidates");
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn delta_entries_count_toward_capacity() {
        let mut c = PricingCache::new(2);
        c.insert_delta(fp(1), Arc::new(DeltaState::Ineligible));
        c.insert_bits(fp(2), Arc::new(vec![true]));
        c.insert_blocks(fp(3), Arc::new(vec![fp(9)]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get_delta(fp(1)).is_none(), "oldest entry was the victim");
    }

    #[test]
    fn peeks_move_nothing() {
        let mut c = PricingCache::new(4);
        c.insert_bits(fp(1), Arc::new(vec![true]));
        c.insert_blocks(fp(2), Arc::new(vec![fp(9)]));
        let stats = c.stats();
        let tick = c.tick();
        let recency = c.recency_snapshot();
        assert_eq!(*c.peek_bits(fp(1)).unwrap(), vec![true]);
        assert_eq!(*c.peek_blocks(fp(2)).unwrap(), vec![fp(9)]);
        assert!(c.peek_bits(fp(99)).is_none());
        assert_eq!(c.stats(), stats, "peeks never count");
        assert_eq!(c.tick(), tick, "peeks never tick");
        assert_eq!(c.recency_snapshot(), recency, "peeks never touch recency");
        // A stale-generation entry is invisible to peeks but NOT purged.
        c.bump_generation();
        c.insert_bits(fp(3), Arc::new(vec![false]));
        assert!(c.peek_bits(fp(1)).is_none());
        assert!(c.peek_blocks(fp(2)).is_none());
        assert!(c.peek_bits(fp(3)).is_some());
    }

    #[test]
    fn lookups_share_one_allocation() {
        let mut c = PricingCache::new(4);
        let bits = Arc::new(vec![true; 3]);
        c.insert_bits(fp(7), Arc::clone(&bits));
        let a = c.get_bits(fp(7)).unwrap();
        let b = c.get_bits(fp(7)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits alias the stored allocation");
        assert!(Arc::ptr_eq(&a, &bits));
    }
}
